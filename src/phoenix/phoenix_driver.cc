#include "phoenix/phoenix_driver.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <thread>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace phoenix::phx {

using common::Result;
using common::Row;
using common::Status;
using common::Stopwatch;
using common::Value;
using odbc::ConnectionPtr;
using odbc::ConnectionString;
using odbc::StatementPtr;

namespace {

/// Process-unique owner ids for server-side artifact names.
std::string NewOwnerId() {
  static std::atomic<uint64_t> counter{0};
  uint64_t seq = counter.fetch_add(1, std::memory_order_relaxed);
  uint64_t t = static_cast<uint64_t>(common::NowNanos());
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llx_%llu",
                static_cast<unsigned long long>(t & 0xffffffffffULL),
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Executes one statement on a throwaway handle of `conn`.
Status ExecOn(odbc::Connection* conn, const std::string& sql) {
  PHX_ASSIGN_OR_RETURN(StatementPtr stmt, conn->CreateStatement());
  return stmt->ExecDirect(sql);
}

/// Failures Phoenix masks with recovery: connection-level errors (the whole
/// server or session is gone → full re-establishment) and kShardUnavailable
/// (exactly one engine shard is down, the session survived → scoped
/// recovery waits for the shard and reinstalls only what it held).
bool Recoverable(const Status& st) {
  return st.IsConnectionLevel() ||
         st.code() == common::StatusCode::kShardUnavailable;
}

/// Extracts <i> from the coordinator's "shard <i> unavailable" diagnostic;
/// -1 when no index is parsable (recovery then reveals the error as-is).
int ShardFromMessage(const std::string& message) {
  size_t pos = message.find("shard ");
  if (pos == std::string::npos) return -1;
  pos += 6;
  if (pos >= message.size() || !std::isdigit(message[pos])) return -1;
  int shard = 0;
  while (pos < message.size() && std::isdigit(message[pos])) {
    shard = shard * 10 + (message[pos] - '0');
    if (shard > 63) return -1;  // masks are uint64; the server clamps to 64
    ++pos;
  }
  return shard;
}

}  // namespace

PhoenixConfig PhoenixConfig::WithOverrides(
    const ConnectionString& conn_str) const {
  PhoenixConfig out = *this;
  // Byte budgets clamp to >= 0 before the size_t cast: a negative (or
  // garbage, which strtoll parses as 0 or a negative prefix) value means
  // "disabled", not a wrapped-around near-infinite budget that would defeat
  // LRU eviction and the overflow-drain bound.
  const auto as_budget = [](int64_t v) {
    return static_cast<size_t>(v > 0 ? v : 0);
  };
  out.cache_bytes = as_budget(
      conn_str.GetInt("PHOENIX_CACHE", static_cast<int64_t>(cache_bytes)));
  // Env fallback lets a harness (scripts/ci.sh) run an unmodified test
  // suite with the result cache on; an explicit connection-string value
  // still wins.
  int64_t result_cache_default = static_cast<int64_t>(result_cache_bytes);
  if (const char* env = std::getenv("PHOENIX_RESULT_CACHE")) {
    result_cache_default = std::strtoll(env, nullptr, 10);
  }
  out.result_cache_bytes = as_budget(
      conn_str.GetInt("PHOENIX_RESULT_CACHE", result_cache_default));
  std::string repo = conn_str.Get("PHOENIX_REPOSITION");
  if (common::EqualsIgnoreCase(repo, "server")) {
    out.reposition = Reposition::kServer;
  } else if (common::EqualsIgnoreCase(repo, "client")) {
    out.reposition = Reposition::kClient;
  }
  out.reconnect_interval = std::chrono::milliseconds(conn_str.GetInt(
      "PHOENIX_RETRY_MS", reconnect_interval.count()));
  out.reconnect_backoff_cap = std::chrono::milliseconds(conn_str.GetInt(
      "PHOENIX_RETRY_CAP_MS", reconnect_backoff_cap.count()));
  out.reconnect_deadline = std::chrono::milliseconds(conn_str.GetInt(
      "PHOENIX_DEADLINE_MS", reconnect_deadline.count()));
  std::string status = conn_str.Get("PHOENIX_STATUS");
  if (common::EqualsIgnoreCase(status, "off")) {
    out.track_update_status = false;
  } else if (common::EqualsIgnoreCase(status, "on")) {
    out.track_update_status = true;
  }
  return out;
}

// ---------------------------------------------------------------------------
// PhoenixDriver
// ---------------------------------------------------------------------------

Result<ConnectionPtr> PhoenixDriver::Connect(
    const ConnectionString& conn_str) {
  PhoenixConfig config = defaults_.WithOverrides(conn_str);
  std::unique_ptr<PhoenixConnection> conn(
      new PhoenixConnection(inner_, conn_str, config));
  PHX_RETURN_IF_ERROR(conn->EstablishSession());
  return ConnectionPtr(std::move(conn));
}

// ---------------------------------------------------------------------------
// PhoenixConnection
// ---------------------------------------------------------------------------

PhoenixConnection::PhoenixConnection(odbc::DriverPtr inner_driver,
                                     ConnectionString conn_str,
                                     PhoenixConfig config)
    : inner_driver_(std::move(inner_driver)),
      conn_str_(std::move(conn_str)),
      config_(config),
      owner_id_(NewOwnerId()),
      probe_table_("phoenix_probe_" + owner_id_) {
  // Failover mode is armed by a FAILOVER= attribute; a plain SERVER= string
  // keeps the classic single-endpoint behavior (endpoints_ stays empty and
  // connection strings pass through the wrapped driver untouched).
  if (conn_str_.Has("FAILOVER")) {
    endpoints_ = conn_str_.Endpoints();
  }
  if (config_.result_cache_bytes > 0) {
    result_cache_ =
        std::make_shared<cache::ResultCache>(config_.result_cache_bytes);
  }
}

PhoenixConnection::~PhoenixConnection() { Disconnect().ok(); }

odbc::ConnectionString PhoenixConnection::EndpointConnStr(
    size_t index) const {
  ConnectionString out = conn_str_;
  if (index < endpoints_.size()) {
    out.Set("SERVER", endpoints_[index]);
    out.Set("PHOENIX_KNOWN_EPOCH", std::to_string(cluster_epoch_));
  }
  return out;
}

odbc::ConnectionString PhoenixConnection::ActiveConnStr() const {
  return EndpointConnStr(active_);
}

Status PhoenixConnection::SelectEndpoint(bool* switched) {
  *switched = false;
  if (endpoints_.empty()) return Status::OK();
  struct ProbeResult {
    size_t index;
    repl::ServerHealth health;
  };
  std::vector<ProbeResult> reachable;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    auto health = inner_driver_->Probe(EndpointConnStr(i));
    if (!health.ok()) continue;
    reachable.push_back({i, health.value()});
    cluster_epoch_ = std::max(cluster_epoch_, health.value().epoch);
  }
  if (reachable.empty()) {
    return Status::ConnectionFailed("no cluster endpoint reachable");
  }

  // A reachable primary at the highest epoch wins; ties keep the current
  // endpoint to avoid needless session churn. A primary behind the highest
  // observed epoch is a restarted ex-primary — it is fenced, never selected.
  const ProbeResult* best = nullptr;
  for (const ProbeResult& p : reachable) {
    if (p.health.role != repl::Role::kPrimary) continue;
    if (p.health.epoch < cluster_epoch_) continue;
    if (best == nullptr || p.index == active_) best = &p;
  }

  if (best == nullptr) {
    // No live primary: promote the most caught-up reachable standby. The
    // promotion request carries the highest epoch we have seen, so the new
    // primary's epoch provably exceeds the dead one's.
    const ProbeResult* candidate = nullptr;
    for (const ProbeResult& p : reachable) {
      if (p.health.role != repl::Role::kStandby) continue;
      if (candidate == nullptr ||
          p.health.applied_lsn > candidate->health.applied_lsn) {
        candidate = &p;
      }
    }
    if (candidate == nullptr) {
      return Status::ConnectionFailed(
          "no usable primary and no promotable standby");
    }
    auto promoted =
        inner_driver_->Promote(EndpointConnStr(candidate->index),
                               cluster_epoch_);
    if (!promoted.ok()) return promoted.status();
    cluster_epoch_ = std::max(cluster_epoch_, promoted.value());
    stats_.failovers.Bump();
    best = candidate;
  }

  if (best->index != active_) {
    *switched = true;
    active_ = best->index;
  }
  return Status::OK();
}

Status PhoenixConnection::EstablishSession() {
  ConnectionString active = ActiveConnStr();
  auto app = inner_driver_->Connect(active);
  if (!app.ok() && !endpoints_.empty() &&
      (app.status().IsConnectionLevel() ||
       app.status().code() == common::StatusCode::kStaleEpoch)) {
    // The configured SERVER may already be down (or fenced); arbitrate once
    // before giving up so a fresh application can land on the standby.
    bool switched = false;
    PHX_RETURN_IF_ERROR(SelectEndpoint(&switched));
    active = ActiveConnStr();
    app = inner_driver_->Connect(active);
  }
  if (!app.ok()) return app.status();
  app_conn_ = std::move(app).value();
  PHX_ASSIGN_OR_RETURN(private_conn_, inner_driver_->Connect(active));
  // The session-liveness proxy: a temp table that exists exactly as long as
  // the app's database session does (paper Section 2.3).
  PHX_RETURN_IF_ERROR(
      ExecOn(app_conn_.get(),
             "CREATE TEMP TABLE " + probe_table_ + " (k INTEGER)"));
  return EnsureStatusTable();
}

Status PhoenixConnection::EnsureStatusTable() {
  return ExecutePrivate(
      "CREATE TABLE IF NOT EXISTS phoenix_status ("
      "owner VARCHAR NOT NULL, stmt INTEGER NOT NULL, "
      "rows_affected INTEGER, PRIMARY KEY (owner, stmt))");
}

Status PhoenixConnection::ExecutePrivate(const std::string& sql) {
  if (private_conn_ == nullptr) {
    return Status::ConnectionFailed("private connection not established");
  }
  return ExecOn(private_conn_.get(), sql);
}

std::string PhoenixConnection::NextResultTableName(uint64_t seq) const {
  return "phoenix_rs_" + owner_id_ + "_" + std::to_string(seq);
}

Status PhoenixConnection::WriteStatusRowSql(uint64_t seq, int64_t rows,
                                            std::string* out) const {
  // The owner id composes into a string literal: it MUST go through
  // SqlQuoteLiteral. Today's generated ids are quote-free hex, but the
  // status-table protocol cannot depend on that — an embedded quote would
  // otherwise break out of the literal and splice into the batch this
  // INSERT rides in (which commits application data).
  *out = "INSERT INTO phoenix_status VALUES (" +
         common::SqlQuoteLiteral(owner_id_) + ", " + std::to_string(seq) +
         ", " + std::to_string(rows) + ")";
  return Status::OK();
}

Result<std::optional<int64_t>> PhoenixConnection::ReadStatusRow(uint64_t seq) {
  if (private_conn_ == nullptr) {
    return Status::ConnectionFailed("private connection not established");
  }
  PHX_ASSIGN_OR_RETURN(StatementPtr stmt, private_conn_->CreateStatement());
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(
      "SELECT rows_affected FROM phoenix_status WHERE owner = " +
      common::SqlQuoteLiteral(owner_id_) +
      " AND stmt = " + std::to_string(seq)));
  Row row;
  PHX_ASSIGN_OR_RETURN(bool found, stmt->Fetch(&row));
  if (!found) return std::optional<int64_t>();
  if (row.empty() || row[0].is_null()) return std::optional<int64_t>(0);
  return std::optional<int64_t>(row[0].AsInt());
}

Status PhoenixConnection::DeleteStatusRow(uint64_t seq) {
  return ExecutePrivate("DELETE FROM phoenix_status WHERE owner = " +
                        common::SqlQuoteLiteral(owner_id_) +
                        " AND stmt = " + std::to_string(seq));
}

void PhoenixConnection::DeferDrop(std::string table, uint64_t seq) {
  deferred_drops_.emplace_back(std::move(table), seq);
}

void PhoenixConnection::SweepDeferredDrops() {
  if (in_txn_) return;
  for (const auto& [table, seq] : deferred_drops_) {
    ExecutePrivate("DROP TABLE IF EXISTS " + table).ok();
    DeleteStatusRow(seq).ok();
  }
  deferred_drops_.clear();
}

Result<StatementPtr> PhoenixConnection::CreateStatement() {
  if (disconnected_) {
    return Status::InvalidArgument("connection is closed");
  }
  std::unique_ptr<PhoenixStatement> stmt(new PhoenixStatement(this));
  PHX_ASSIGN_OR_RETURN(stmt->inner_, app_conn_->CreateStatement());
  statements_.insert(stmt.get());
  return StatementPtr(std::move(stmt));
}

Status PhoenixConnection::Disconnect() {
  if (disconnected_) return Status::OK();
  disconnected_ = true;
  // Best-effort cleanup of any still-open result artifacts.
  for (PhoenixStatement* stmt : statements_) {
    stmt->DropResultArtifacts().ok();
    stmt->conn_ = nullptr;
  }
  statements_.clear();
  in_txn_ = false;
  SweepDeferredDrops();
  if (app_conn_ != nullptr) app_conn_->Disconnect().ok();
  if (private_conn_ != nullptr) private_conn_->Disconnect().ok();
  return Status::OK();
}

Status PhoenixConnection::Ping() {
  return WithRecovery([this] { return app_conn_->Ping(); });
}

bool PhoenixConnection::OldSessionSurvived() {
  if (app_conn_ == nullptr) return false;
  // There is no explicit test for session survival; the proxy is whether the
  // session's temp table still answers (paper Section 2.3).
  auto stmt = app_conn_->CreateStatement();
  if (!stmt.ok()) return false;
  Status st = stmt.value()->ExecDirect("SELECT COUNT(*) FROM " +
                                       probe_table_);
  return st.ok();
}

Status PhoenixConnection::Recover(const Status& original_error) {
  if (original_error.code() == common::StatusCode::kShardUnavailable) {
    // Partial failure: one engine shard died but this session (and every
    // other shard) is alive. Recover only the crashed partition.
    return RecoverShard(original_error,
                        ShardFromMessage(original_error.message()));
  }
  if (recovering_) {
    // A nested connection failure during recovery propagates up to the
    // recovery retry loop; recovery is idempotent so it simply reruns.
    return Status::ConnectionFailed("server lost again during recovery");
  }
  recovering_ = true;
  // Recovery is its own trace: it does not belong to the failed statement's
  // request tree, and the two phases show up as phx.recover.* step events.
  obs::TraceScope recovery_trace(obs::NewTraceId(), 0);
  OBS_SPAN("phx.recover");
  auto deadline =
      std::chrono::steady_clock::now() + config_.reconnect_deadline;

  // MTTR clock: from failure detection (entering recovery) to a usable
  // session again; both the transient and full-recovery exits record it.
  Stopwatch mttr_watch;
  auto record_mttr = [&] {
    if (obs::Enabled()) {
      obs::Registry::Global()
          .histogram("phx.recover.mttr_ns")
          ->Record(static_cast<uint64_t>(mttr_watch.ElapsedNanos()));
    }
  };

  // Decorrelated-jitter backoff between reconnect attempts, seeded per
  // connection so a fleet's retries spread out. Every sleep is clamped to
  // the remaining deadline budget: a fixed-interval sleep could overshoot
  // the deadline by nearly a whole interval, turning a 150 ms budget into a
  // multi-second stall before the original error finally surfaced.
  common::Backoff backoff(config_.reconnect_interval,
                          config_.reconnect_backoff_cap,
                          std::hash<std::string>{}(owner_id_));
  auto backoff_sleep = [&] {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    auto sleep = backoff.Next();
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - now) +
                     std::chrono::milliseconds(1);
    if (sleep > remaining) sleep = remaining;
    std::this_thread::sleep_for(sleep);
  };

  Status last = original_error;
  // Only meaningful while app_conn_ is still the session the statements are
  // bound to. The moment the probe fails once (or full re-establishment
  // replaces app_conn_), the old session is gone for good — probing the
  // half-built replacement would see its freshly created probe table and
  // falsely take the nothing-was-lost exit, skipping statement reinstall.
  bool old_session_dead = false;
  while (true) {
    if (std::chrono::steady_clock::now() >= deadline) {
      // Give up and reveal the original failure to the application.
      recovering_ = false;
      return original_error;
    }

    // ---- Phase 1: virtual-session recovery -----------------------------
    Stopwatch phase1;

    // Failover arbitration first: probe every endpoint, fence stale
    // primaries, and — when the primary is gone — promote the standby. On a
    // single-endpoint string this is a no-op and recovery pings the one
    // server by reconnecting, exactly as before.
    if (!endpoints_.empty()) {
      bool switched = false;
      Status sel = SelectEndpoint(&switched);
      if (!sel.ok()) {
        last = sel;
        backoff_sleep();
        continue;
      }
      if (switched) {
        // The session moved to another server; whatever state the old
        // session had cannot have survived there.
        old_session_dead = true;
      }
    }

    // Ping/reconnect: a fresh private connection doubles as the ping.
    auto fresh_private = inner_driver_->Connect(ActiveConnStr());
    if (!fresh_private.ok()) {
      backoff_sleep();
      continue;
    }

    // Server reachable. Did the database actually crash, or was this a
    // communication failure with the old session intact?
    if (!old_session_dead && OldSessionSurvived()) {
      private_conn_ = std::move(fresh_private).value();
      record_mttr();
      recovering_ = false;
      return Status::OK();  // nothing was lost; caller just retries
    }

    // Full re-establishment: new connections bound to the virtual session.
    old_session_dead = true;
    private_conn_ = std::move(fresh_private).value();
    in_txn_ = false;  // any active transaction died with the server
    txn_snapshot_known_ = false;
    txn_snapshot_ts_ = 0;
    txn_dirty_tables_.clear();
    // A crash drops the cross-statement result cache wholesale: the server
    // forgot its per-table version counters when volatile state died, so no
    // pre-crash entry can ever be revalidated. Retried statements simply
    // re-execute (the paper's recovery contract).
    if (result_cache_ != nullptr) result_cache_->Clear();
    auto fresh_app = inner_driver_->Connect(ActiveConnStr());
    if (!fresh_app.ok()) {
      last = fresh_app.status();
      backoff_sleep();
      continue;
    }
    app_conn_ = std::move(fresh_app).value();

    Status st = ExecOn(app_conn_.get(), "CREATE TEMP TABLE " + probe_table_ +
                                            " (k INTEGER)");
    if (!st.ok() && st.code() != common::StatusCode::kAlreadyExists) {
      if (!Recoverable(st)) {
        recovering_ = false;
        return st;
      }
      last = st;
      backoff_sleep();
      continue;
    }
    st = ReplaySessionContext();
    if (!st.ok()) {
      if (!Recoverable(st)) {
        recovering_ = false;
        return st;
      }
      last = st;
      backoff_sleep();
      continue;
    }
    st = EnsureStatusTable();
    if (!st.ok()) {
      last = st;
      backoff_sleep();
      continue;
    }

    double phase1_seconds = phase1.ElapsedSeconds();
    stats_.recover_virtual.Add(static_cast<uint64_t>(phase1.ElapsedNanos()));

    // ---- Phase 2: reinstall SQL state -----------------------------------
    Stopwatch phase2;
    bool retry_outer = false;
    for (PhoenixStatement* stmt : statements_) {
      st = stmt->Reinstall();
      if (st.ok()) continue;
      if (Recoverable(st)) {
        // Crashed again mid-recovery; recovery is idempotent — rerun it.
        last = st;
        retry_outer = true;
        break;
      }
      recovering_ = false;
      return st;
    }
    if (retry_outer) {
      backoff_sleep();
      continue;
    }

    last_recovery_.virtual_session_seconds = phase1_seconds;
    last_recovery_.sql_state_seconds = phase2.ElapsedSeconds();
    stats_.recover_sql.Add(static_cast<uint64_t>(phase2.ElapsedNanos()));
    stats_.recoveries.Bump();
    record_mttr();
    recovering_ = false;
    return Status::OK();
  }
}

Status PhoenixConnection::RecoverShard(const Status& original_error,
                                       int shard) {
  if (shard < 0 || shard >= 64) {
    // Unparsable diagnostic: don't guess at which partition to wait for.
    return original_error;
  }
  if (recovering_) {
    return Status::ConnectionFailed("server lost again during recovery");
  }
  recovering_ = true;
  obs::TraceScope recovery_trace(obs::NewTraceId(), 0);
  OBS_SPAN("phx.recover.shard");
  auto deadline =
      std::chrono::steady_clock::now() + config_.reconnect_deadline;
  Stopwatch mttr_watch;
  const uint64_t shard_bit = uint64_t{1} << shard;

  // Did the crash doom the open transaction? The coordinator aborts the
  // global transaction the moment any statement of it fails (all-shards-or-
  // nothing), and a transaction that had begun on the crashed shard is
  // poisoned outright. Only a transaction that provably never executed on
  // the shard — the failure then came from the private connection — is
  // still intact and stays open.
  bool txn_doomed = in_txn_ && (txn_shard_mask_ == 0 ||
                                (txn_shard_mask_ & shard_bit) != 0);
  if (txn_doomed) {
    in_txn_ = false;
    txn_snapshot_known_ = false;
    txn_snapshot_ts_ = 0;
    txn_dirty_tables_.clear();
    txn_shard_mask_ = 0;
  }
  // Entries cached from pre-crash reads of the shard can never be
  // revalidated (its volatile version counters died with it); in sharded
  // mode the server marks nothing cacheable anyway, so this is belt and
  // braces.
  if (result_cache_ != nullptr) result_cache_->Clear();

  common::Backoff backoff(config_.reconnect_interval,
                          config_.reconnect_backoff_cap,
                          std::hash<std::string>{}(owner_id_) ^
                              static_cast<uint64_t>(shard));
  auto backoff_sleep = [&] {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    auto sleep = backoff.Next();
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - now) +
                     std::chrono::milliseconds(1);
    if (sleep > remaining) sleep = remaining;
    std::this_thread::sleep_for(sleep);
  };

  const std::string ping_sql =
      "EXEC sys_shard_ping " + std::to_string(shard);
  while (true) {
    if (std::chrono::steady_clock::now() >= deadline) {
      recovering_ = false;
      return original_error;
    }

    // ---- Phase 1: wait for the partition to serve again -----------------
    Stopwatch phase1;
    Status ping = ExecutePrivate(ping_sql);
    if (!ping.ok()) {
      if (ping.IsConnectionLevel()) {
        // The whole server vanished while one shard was down: escalate.
        // Full recovery is idempotent and strictly subsumes this path.
        recovering_ = false;
        return Recover(ping);
      }
      if (ping.code() != common::StatusCode::kShardUnavailable) {
        recovering_ = false;
        return ping;
      }
      backoff_sleep();
      continue;
    }

    // The shard is back (its WAL replayed; durable state — phoenix_status
    // rows, phoenix_rs_* result tables — recovered with it). Re-create the
    // volatile state this session kept there.
    if (txn_doomed) {
      // The coordinator may still hold the poisoned-transaction marker for
      // this session; an explicit ROLLBACK clears it so the next statement
      // does not absorb a stale kShardUnavailable. Best effort — the
      // coordinator usually rolled back already.
      ExecOn(app_conn_.get(), "ROLLBACK").ok();
    }
    if (shard == 0) {
      // Temp tables are pinned to shard 0; the session-liveness probe died
      // with it.
      Status st = ExecOn(app_conn_.get(), "CREATE TEMP TABLE " +
                                              probe_table_ + " (k INTEGER)");
      if (!st.ok() && st.code() != common::StatusCode::kAlreadyExists) {
        if (Recoverable(st)) {
          backoff_sleep();
          continue;
        }
        recovering_ = false;
        return st;
      }
    }
    Status st = ReplaySessionContext(shard_bit);
    if (!st.ok()) {
      if (Recoverable(st)) {
        backoff_sleep();
        continue;
      }
      recovering_ = false;
      return st;
    }
    double phase1_seconds = phase1.ElapsedSeconds();
    stats_.recover_virtual.Add(static_cast<uint64_t>(phase1.ElapsedNanos()));

    // ---- Phase 2: reinstall only the statements the shard held ----------
    Stopwatch phase2;
    bool retry_outer = false;
    for (PhoenixStatement* stmt : statements_) {
      if (stmt->shard_mask_ != 0 && (stmt->shard_mask_ & shard_bit) == 0) {
        // This statement's cursors and result tables live entirely on
        // surviving shards; its state is untouched. THE point of scoped
        // recovery: sessions and statements that never touched the crashed
        // partition observe nothing.
        continue;
      }
      st = stmt->Reinstall();
      if (st.ok()) continue;
      if (Recoverable(st)) {
        retry_outer = true;
        break;
      }
      recovering_ = false;
      return st;
    }
    if (retry_outer) {
      backoff_sleep();
      continue;
    }

    last_recovery_.virtual_session_seconds = phase1_seconds;
    last_recovery_.sql_state_seconds = phase2.ElapsedSeconds();
    stats_.recover_sql.Add(static_cast<uint64_t>(phase2.ElapsedNanos()));
    stats_.recoveries.Bump();
    stats_.shard_recoveries.Bump();
    if (obs::Enabled()) {
      obs::Registry::Global()
          .histogram("phx.recover.mttr_ns")
          ->Record(static_cast<uint64_t>(mttr_watch.ElapsedNanos()));
    }
    recovering_ = false;
    return Status::OK();
  }
}

Status PhoenixConnection::ReplaySessionContext() {
  return ReplaySessionContext(~uint64_t{0});
}

Status PhoenixConnection::ReplaySessionContext(uint64_t shard_bits) {
  for (const SessionContextEntry& entry : session_context_sql_) {
    // Full recovery replays everything; scoped recovery only what executed
    // on the crashed shard (mask 0 = provenance unknown → replayed, relying
    // on kAlreadyExists tolerance for the shards that kept it).
    if (entry.shard_mask != 0 && (entry.shard_mask & shard_bits) == 0) {
      continue;
    }
    Status st = ExecOn(app_conn_.get(), entry.sql);
    if (!st.ok() && st.code() != common::StatusCode::kAlreadyExists) {
      return st;
    }
  }
  return Status::OK();
}

Status PhoenixConnection::WithRecovery(
    const std::function<Status()>& op) {
  Status st = Status::OK();
  // Retries are bounded by the outage budget, not an attempt count: each
  // iteration below runs only after a *successful* recovery, so as long as
  // the server keeps coming back within budget the statement stays masked.
  // (A genuinely unreachable server fails inside Recover's own deadline.)
  auto mask_deadline =
      std::chrono::steady_clock::now() + config_.reconnect_deadline;
  for (int attempt = 0;
       attempt < 3 || std::chrono::steady_clock::now() < mask_deadline;
       ++attempt) {
    st = op();
    if (st.ok() || !Recoverable(st)) return st;
    bool was_txn = in_txn_;
    Status recovered = Recover(st);
    if (!recovered.ok()) return recovered;
    if (was_txn && !in_txn_) {
      // Full recovery happened while a transaction was active: surface a
      // normal transaction abort (paper Section 2.3).
      return Status::Aborted(
          "transaction aborted by server failure; session recovered");
    }
  }
  return st;
}

// ---------------------------------------------------------------------------
// PhoenixStatement
// ---------------------------------------------------------------------------

PhoenixStatement::PhoenixStatement(PhoenixConnection* conn) : conn_(conn) {}

Status PhoenixStatement::SyncTxnStateOnError(Status st) {
  // The server aborts the whole transaction when a statement inside it
  // fails (lock-timeout deadlock victims, constraint violations, ...).
  // Mirror that client-side so the virtual session's transaction state
  // matches the real one; the application's ROLLBACK remains a no-op.
  //
  // A failure tagged by MarkPrivateFailure happened on the private
  // connection (result-table DDL, status-table access), so the server did
  // NOT abort the application's transaction — it is still open on the app
  // session. The virtual session must honor the abort contract anyway:
  // otherwise later autocommit statements silently ride the doomed
  // transaction, and their effects (including persisted result sets and
  // their status rows) evaporate at the next crash even though every
  // statement reported success. Abort the app transaction explicitly
  // before dropping the flag.
  bool private_failure = private_failure_;
  private_failure_ = false;
  if (!st.ok() && !st.IsConnectionLevel() && conn_ != nullptr &&
      conn_->in_txn_) {
    if (private_failure) {
      Status rb = inner_->ExecDirect("ROLLBACK");
      if (rb.IsConnectionLevel()) {
        // Crash during the abort: the transaction died with the session.
        conn_->Recover(rb).ok();
      }
    }
    conn_->in_txn_ = false;
    conn_->SweepDeferredDrops();
  }
  return st;
}

Status PhoenixStatement::MarkPrivateFailure(Status st) {
  if (!st.ok() && !st.IsConnectionLevel()) private_failure_ = true;
  return st;
}

PhoenixStatement::~PhoenixStatement() {
  if (conn_ != nullptr) {
    CloseCursor().ok();
    conn_->statements_.erase(this);
  }
}

Status PhoenixStatement::ExecDirect(const std::string& sql) {
  if (conn_ == nullptr || conn_->disconnected_) {
    return Record(Status::InvalidArgument("connection is closed"));
  }

  // One application statement = one trace. The id is carried through every
  // inner ODBC call into the wire header, so server-side engine spans nest
  // under this statement in the trace-event dump.
  obs::TraceScope trace(trace_id_ = obs::NewTraceId(), 0);
  OBS_SPAN("phx.statement");

  Stopwatch parse_watch;
  auto klass_result = ClassifyRequest(sql);
  if (!klass_result.ok()) return Record(klass_result.status());
  RequestClass klass = klass_result.value();
  conn_->stats_.parse.Add(static_cast<uint64_t>(parse_watch.ElapsedNanos()));

  // Discard any previous result set (and its server-side artifacts).
  PHX_RETURN_IF_ERROR(Record(CloseCursor()));
  sql_ = sql;
  rows_affected_ = -1;
  private_failure_ = false;
  rcache_hit_ = false;
  shard_mask_ = 0;

  switch (klass) {
    case RequestClass::kQuery: {
      // Cross-statement result cache first: a valid entry answers with
      // zero server round trips.
      if (TryResultCacheHit(sql)) return Record(Status::OK());
      Status st = conn_->config_.cache_bytes > 0 ||
                          conn_->config_.result_cache_bytes > 0
                      ? ExecuteCachedQuery(sql)
                      : ExecutePersistedQuery(sql);
      return Record(SyncTxnStateOnError(st));
    }

    case RequestClass::kModification:
      return Record(SyncTxnStateOnError(ExecuteModification(sql)));

    case RequestClass::kTxnBegin: {
      Status st = conn_->WithRecovery(
          [this] { return inner_->ExecDirect("BEGIN TRANSACTION"); });
      if (st.ok()) {
        conn_->in_txn_ = true;
        // Fresh transaction: its pinned snapshot is unknown until the first
        // query inside it answers, and it has written nothing yet.
        conn_->txn_snapshot_known_ = false;
        conn_->txn_snapshot_ts_ = 0;
        conn_->txn_dirty_tables_.clear();
        conn_->txn_shard_mask_ = 0;
      }
      return Record(st);
    }

    case RequestClass::kTxnCommit: {
      Status st = inner_->ExecDirect("COMMIT");
      if (st.ok()) {
        conn_->in_txn_ = false;
        conn_->SweepDeferredDrops();
        return Record(st);
      }
      if (!Recoverable(st)) {
        // A failed COMMIT (e.g. the WAL write died) still ends the
        // transaction: the server rolled it back before surfacing the
        // error. Leaving in_txn_ set would desync the virtual session —
        // the next BEGIN would collide with a transaction the client
        // wrongly believes is still open.
        conn_->in_txn_ = false;
        conn_->SweepDeferredDrops();
        return Record(st);
      }
      // Crash at commit: the transaction aborted. Recover the session and
      // surface the abort as a normal transaction failure.
      Status recovered = conn_->Recover(st);
      conn_->in_txn_ = false;
      conn_->SweepDeferredDrops();
      if (!recovered.ok()) return Record(st);
      return Record(Status::Aborted(
          "transaction aborted by server failure at commit"));
    }

    case RequestClass::kTxnRollback: {
      Status st = inner_->ExecDirect("ROLLBACK");
      if (st.ok()) {
        conn_->in_txn_ = false;
        conn_->SweepDeferredDrops();
        return Record(st);
      }
      if (!Recoverable(st)) {
        // Same as COMMIT: the server has already torn the transaction
        // down, so the client-side flag must drop regardless.
        conn_->in_txn_ = false;
        conn_->SweepDeferredDrops();
        return Record(st);
      }
      Status recovered = conn_->Recover(st);
      conn_->in_txn_ = false;
      // A crash rolls the transaction back anyway — rollback succeeded.
      if (recovered.ok()) return Record(Status::OK());
      return Record(st);
    }

    case RequestClass::kDdlSessionTemp:
      return Record(SyncTxnStateOnError(
          ExecutePassthrough(sql, /*record_session_context=*/true)));

    case RequestClass::kDdl:
    case RequestClass::kExecProcedure:
    case RequestClass::kUnknown:
      return Record(SyncTxnStateOnError(
          ExecutePassthrough(sql, /*record_session_context=*/false)));
  }
  return Record(Status::Internal("unhandled request class"));
}

// ---------------------------------------------------------------------------
// Statement bundles (pipelined execution with exactly-once crash retry)
// ---------------------------------------------------------------------------

Status PhoenixStatement::BundleBegin() {
  if (conn_ == nullptr || conn_->disconnected_) {
    return Record(Status::InvalidArgument("connection is closed"));
  }
  if (bundle_open_) {
    return Record(Status::InvalidArgument("statement bundle already open"));
  }
  // Capability probe: Phoenix pipelines only when the wrapped driver does.
  // With PHOENIX_PIPELINE=0 the inner driver answers kUnsupported here, and
  // bundle-aware callers fall back to per-statement ExecDirect — which is
  // what makes the knob reproduce the classic trip counts exactly.
  Status probe = inner_->BundleBegin();
  if (!probe.ok()) return Record(probe);
  inner_->BundleDiscard();
  bundle_open_ = true;
  bundle_.clear();
  return Record(Status::OK());
}

Status PhoenixStatement::BundleAdd(const std::string& sql) {
  if (!bundle_open_) {
    return Record(Status::InvalidArgument("no open statement bundle"));
  }
  bundle_.push_back(sql);
  return Status::OK();
}

void PhoenixStatement::BundleDiscard() {
  bundle_open_ = false;
  bundle_.clear();
}

Result<std::vector<odbc::BundleStatementResult>>
PhoenixStatement::RunInnerBundle(const std::vector<std::string>& stmts) {
  PHX_RETURN_IF_ERROR(inner_->BundleBegin());
  for (const std::string& s : stmts) {
    Status st = inner_->BundleAdd(s);
    if (!st.ok()) {
      inner_->BundleDiscard();
      return st;
    }
  }
  return inner_->BundleFlush();
}

Result<std::vector<odbc::BundleStatementResult>>
PhoenixStatement::SynthesizeCommittedBundle(
    const std::vector<std::string>& stmts,
    const std::vector<RequestClass>& klass, size_t last_commit, bool wrap) {
  std::vector<odbc::BundleStatementResult> out;
  out.reserve(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    odbc::BundleStatementResult r;
    if (wrap || i <= last_commit) {
      // Covered by the completion record: this statement's effects are
      // durable. Query rows went down with the lost response.
      if (klass[i] == RequestClass::kQuery) {
        r.is_query = true;
        r.done = true;
        r.result_lost = true;
      } else if (klass[i] == RequestClass::kModification) {
        r.rows_affected = -1;  // count not recorded; effect is committed
      }
    } else {
      // Past the guarded COMMIT the statement ran autocommit (if at all);
      // there is no testable completion state for it — same at-most-once
      // contract as PHOENIX_STATUS=off.
      r.status = Status::Aborted(
          "statement outcome unknown (bundle committed through its last "
          "COMMIT before a server failure)");
    }
    out.push_back(std::move(r));
  }
  // The guarded COMMIT ended whatever transaction the bundle was running.
  // Full recovery already dropped in_txn_; a transient outage (session
  // survived, response lost) needs the same close-out here.
  if (conn_->in_txn_) {
    conn_->in_txn_ = false;
    conn_->SweepDeferredDrops();
  }
  Record(Status::OK());
  return out;
}

Result<std::vector<odbc::BundleStatementResult>>
PhoenixStatement::BundleFlush() {
  constexpr size_t kNpos = static_cast<size_t>(-1);
  if (conn_ == nullptr || conn_->disconnected_) {
    Status st = Status::InvalidArgument("connection is closed");
    Record(st);
    return st;
  }
  if (!bundle_open_) {
    Status st = Status::InvalidArgument("no open statement bundle");
    Record(st);
    return st;
  }
  std::vector<std::string> stmts = std::move(bundle_);
  BundleDiscard();
  if (stmts.empty()) {
    Status st = Status::InvalidArgument("empty statement bundle");
    Record(st);
    return st;
  }

  obs::TraceScope trace(trace_id_ = obs::NewTraceId(), 0);
  OBS_SPAN("phx.bundle");

  // Classify everything up front; a malformed statement rejects the whole
  // bundle before anything is sent.
  std::vector<RequestClass> klass(stmts.size());
  for (size_t i = 0; i < stmts.size(); ++i) {
    auto k = ClassifyRequest(stmts[i]);
    if (!k.ok()) {
      Record(k.status());
      return k.status();
    }
    klass[i] = k.value();
  }

  PHX_RETURN_IF_ERROR(Record(CloseCursor()));
  rows_affected_ = -1;
  private_failure_ = false;
  rcache_hit_ = false;
  shard_mask_ = 0;

  const bool was_txn = conn_->in_txn_;
  const bool track = conn_->config_.track_update_status;

  bool has_mod = false;
  bool has_txn_control = false;
  bool has_opaque = false;  // DDL / procedures / unknown
  size_t last_commit = kNpos;
  for (size_t i = 0; i < stmts.size(); ++i) {
    switch (klass[i]) {
      case RequestClass::kModification:
        has_mod = true;
        break;
      case RequestClass::kQuery:
        break;
      case RequestClass::kTxnCommit:
        last_commit = i;
        has_txn_control = true;
        break;
      case RequestClass::kTxnBegin:
      case RequestClass::kTxnRollback:
        has_txn_control = true;
        break;
      default:
        has_opaque = true;
        break;
    }
  }

  // Exactly-once plan. kWrap: an autocommit bundle of plain statements with
  // at least one modification — Phoenix supplies BEGIN/COMMIT itself and
  // rides its completion record inside. guard_commit: the bundle carries its
  // own COMMIT — the record splices in immediately before the LAST one,
  // sharing its transaction. Either way, after a crash the record's
  // presence answers "did the bundle commit?" exactly once.
  const bool wrap =
      !was_txn && !has_txn_control && !has_opaque && has_mod && track;
  const bool guard_commit = !wrap && has_mod && track && last_commit != kNpos;
  // Inside an application transaction with no commit in sight, the record
  // still rides along (sharing the app transaction's fate) for parity with
  // ExecuteModification's in-transaction branch.
  const bool txn_tag =
      !wrap && !guard_commit && has_mod && track && was_txn;
  uint64_t guard_seq = 0;
  std::string status_insert;
  if (wrap || guard_commit || txn_tag) {
    guard_seq = conn_->next_stmt_seq_++;
    PHX_RETURN_IF_ERROR(
        Record(conn_->WriteStatusRowSql(guard_seq, -1, &status_insert)));
  }

  std::vector<std::string> wire;
  std::vector<size_t> app_of;  // wire index -> app index (kNpos = injected)
  wire.reserve(stmts.size() + 3);
  app_of.reserve(stmts.size() + 3);
  if (wrap) {
    wire.push_back("BEGIN TRANSACTION");
    app_of.push_back(kNpos);
  }
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (guard_commit && i == last_commit) {
      wire.push_back(status_insert);
      app_of.push_back(kNpos);
    }
    wire.push_back(stmts[i]);
    app_of.push_back(i);
  }
  if (wrap || txn_tag) {
    wire.push_back(status_insert);
    app_of.push_back(kNpos);
  }
  if (wrap) {
    wire.push_back("COMMIT");
    app_of.push_back(kNpos);
  }

  // Replay analysis: after a connection-level failure whose completion
  // record is absent (or absent entirely), re-sending the bundle is safe
  // only when no pre-crash attempt can have left a durable effect — every
  // modification must sit inside a transaction that either never commits in
  // this bundle or commits through the guarded COMMIT. Autocommit
  // modifications, opaque statements, and unguarded COMMITs void replay.
  bool replay_safe;
  if (wrap) {
    replay_safe = true;  // Phoenix's own BEGIN..record..COMMIT guards it all
  } else {
    replay_safe = !has_opaque;
    bool open = was_txn;
    for (size_t i = 0; i < stmts.size(); ++i) {
      switch (klass[i]) {
        case RequestClass::kTxnBegin:
          open = true;
          break;
        case RequestClass::kTxnRollback:
          open = false;
          break;
        case RequestClass::kTxnCommit:
          if (!(guard_commit && i == last_commit)) replay_safe = false;
          open = false;
          break;
        case RequestClass::kModification:
          if (!open) replay_safe = false;
          break;
        default:
          break;
      }
    }
  }

  Status st = Status::OK();
  auto mask_deadline =
      std::chrono::steady_clock::now() + conn_->config_.reconnect_deadline;
  for (int attempt = 0;
       attempt < 3 || std::chrono::steady_clock::now() < mask_deadline;
       ++attempt) {
    auto flushed = RunInnerBundle(wire);
    if (flushed.ok()) {
      std::vector<odbc::BundleStatementResult> inner_results =
          std::move(flushed).value();
      std::vector<odbc::BundleStatementResult> out;
      out.reserve(stmts.size());
      Status first_failure = Status::OK();
      for (size_t w = 0; w < inner_results.size(); ++w) {
        odbc::BundleStatementResult& r = inner_results[w];
        size_t i = w < app_of.size() ? app_of[w] : kNpos;
        if (i == kNpos) {
          // Injected entry (BEGIN / completion record / COMMIT). A failure
          // here fails the whole bundle in-band: the wrapping transaction
          // rolled back with it and nothing was applied.
          if (!r.status.ok()) {
            Record(r.status);
            return r.status;
          }
          continue;
        }
        if (r.status.ok()) {
          switch (klass[i]) {
            case RequestClass::kTxnBegin:
              conn_->in_txn_ = true;
              conn_->txn_snapshot_known_ = false;
              conn_->txn_snapshot_ts_ = 0;
              conn_->txn_dirty_tables_.clear();
              conn_->txn_shard_mask_ = 0;
              break;
            case RequestClass::kTxnCommit:
            case RequestClass::kTxnRollback:
              conn_->in_txn_ = false;
              conn_->SweepDeferredDrops();
              break;
            case RequestClass::kDdlSessionTemp:
              conn_->session_context_sql_.push_back(
                  {stmts[i], r.shard_mask});
              break;
            default:
              break;
          }
          if (r.rows_affected >= 0) rows_affected_ = r.rows_affected;
        } else {
          if (first_failure.ok()) first_failure = r.status;
          // Bundle extension of SyncTxnStateOnError: the server stops at
          // the first failing statement, and when a transaction was open at
          // that point it has already rolled it back. Mirror that here —
          // leaving in_txn_ set would desync the virtual session exactly
          // like the single-statement case.
          if (conn_->in_txn_) {
            conn_->in_txn_ = false;
            conn_->SweepDeferredDrops();
          }
        }
        out.push_back(std::move(r));
      }
      // The whole-bundle shard bitmap scopes this handle (and the open
      // transaction) for partition-aware recovery.
      shard_mask_ |= inner_->LastShardMask();
      if (conn_->in_txn_) {
        conn_->txn_shard_mask_ |= inner_->LastShardMask();
      }
      Record(first_failure);
      return out;
    }

    st = flushed.status();
    if (!Recoverable(st)) {
      // In-band whole-bundle failure: the server applied nothing and the
      // session (and any open transaction) is intact.
      Record(st);
      return st;
    }

    Status recovered = conn_->Recover(st);
    if (!recovered.ok()) {
      Record(st);
      return st;
    }

    if (guard_seq != 0 && (wrap || guard_commit)) {
      // The completion record is the testable state: present → the bundle's
      // transaction committed before the failure — report success, never
      // re-execute; absent → it provably did not commit.
      std::optional<int64_t> row;
      Status read_st = Status::OK();
      for (int read_attempt = 0; read_attempt < 3; ++read_attempt) {
        auto read = conn_->ReadStatusRow(guard_seq);
        if (read.ok()) {
          row = read.value();
          read_st = Status::OK();
          break;
        }
        read_st = read.status();
        if (!Recoverable(read_st)) {
          Record(read_st);
          return read_st;
        }
        Status again = conn_->Recover(read_st);
        if (!again.ok()) {
          Record(read_st);
          return read_st;
        }
      }
      if (!read_st.ok()) {
        Record(read_st);
        return read_st;
      }
      if (row.has_value()) {
        return SynthesizeCommittedBundle(stmts, klass, last_commit, wrap);
      }
    }

    if (was_txn) {
      // A transaction opened before this bundle died with the server (and
      // the guarded COMMIT, if any, provably did not apply). If the outage
      // was transient the server transaction may still be open with part of
      // the bundle applied — make the abort real before reporting it.
      if (conn_->in_txn_) {
        Status rb = inner_->ExecDirect("ROLLBACK");
        if (rb.IsConnectionLevel()) conn_->Recover(rb).ok();
        conn_->in_txn_ = false;
        conn_->SweepDeferredDrops();
      }
      st = Status::Aborted(
          "transaction aborted by server failure; session recovered");
      Record(st);
      return st;
    }
    if (!replay_safe) {
      st = Status::Aborted(
          "bundle interrupted by server failure; completion unknown");
      Record(st);
      return st;
    }
    // Nothing from the failed attempt can have survived. If the outage was
    // transient, the old session may still hold an open transaction from a
    // partially executed attempt — clear it before re-sending.
    if (has_txn_control) {
      Status rb = inner_->ExecDirect("ROLLBACK");
      if (rb.IsConnectionLevel()) conn_->Recover(rb).ok();
      conn_->in_txn_ = false;
    }
  }
  Record(st);
  return st;
}

void PhoenixStatement::NoteAppExecution() {
  if (conn_ == nullptr || inner_ == nullptr) return;
  // Shard bookkeeping first: which shards this statement's server-side
  // state lives on, and which the open transaction has executed on. Both
  // drive the masking of partition-aware recovery.
  shard_mask_ |= inner_->LastShardMask();
  if (conn_->in_txn_) conn_->txn_shard_mask_ |= inner_->LastShardMask();
  const cache::ResponseConsistency* c = inner_->consistency();
  if (c == nullptr || !conn_->in_txn_) return;
  if (!conn_->txn_snapshot_known_ && c->snapshot_ts != 0) {
    // First query inside the transaction reveals its pinned snapshot; from
    // here on result-cache hits must match it exactly.
    conn_->txn_snapshot_known_ = true;
    conn_->txn_snapshot_ts_ = c->snapshot_ts;
  }
  for (const std::string& table : c->write_tables) {
    conn_->txn_dirty_tables_.insert(table);
  }
}

bool PhoenixStatement::TryResultCacheHit(const std::string& sql) {
  cache::ResultCache* rc = conn_->result_cache_.get();
  if (rc == nullptr) return false;
  cache::InvalidationState* ledger = conn_->app_conn_->invalidation();
  if (ledger == nullptr) return false;
  cache::TxnView txn;
  txn.in_txn = conn_->in_txn_;
  txn.snapshot_known = conn_->txn_snapshot_known_;
  txn.snapshot_ts = conn_->txn_snapshot_ts_;
  txn.dirty_tables = conn_->in_txn_ ? &conn_->txn_dirty_tables_ : nullptr;
  std::shared_ptr<const cache::CachedResult> hit =
      rc->Lookup(cache::ResultCache::NormalizeKey(sql), *ledger, txn);
  if (hit == nullptr) return false;
  // Serve through the same client-cache delivery machinery a kCached fill
  // uses; the rows are copied out of the shared entry (other statements may
  // hit it concurrently).
  schema_ = hit->schema;
  cache_.assign(hit->rows.begin(), hit->rows.end());
  cache_complete_ = true;
  delivered_ = 0;
  mode_ = ResultMode::kCached;
  rcache_hit_ = true;
  return true;
}

void PhoenixStatement::MaybeInsertResultCache(const std::string& sql) {
  cache::ResultCache* rc = conn_->result_cache_.get();
  if (rc == nullptr) return;
  const cache::ResponseConsistency* c = inner_->consistency();
  // Only results the server vouched for: cacheable covers MVCC enabled, a
  // real pinned snapshot, and no temp-table reads.
  if (c == nullptr || !c->cacheable || c->snapshot_ts == 0) return;
  if (conn_->in_txn_) {
    for (const std::string& table : c->read_tables) {
      if (conn_->txn_dirty_tables_.count(table) > 0) {
        // The result reflects this transaction's own uncommitted writes; it
        // is private to the transaction and must not outlive a ROLLBACK.
        return;
      }
    }
  }
  cache::CachedResult entry;
  entry.schema = schema_;
  entry.rows.assign(cache_.begin(), cache_.end());
  entry.fill_ts = c->snapshot_ts;
  entry.read_tables = c->read_tables;
  rc->Insert(cache::ResultCache::NormalizeKey(sql), std::move(entry));
}

Status PhoenixStatement::ExecutePassthrough(const std::string& sql,
                                            bool record_session_context) {
  Status st =
      conn_->WithRecovery([this, &sql] { return inner_->ExecDirect(sql); });
  if (!st.ok()) return st;
  NoteAppExecution();
  rows_affected_ = inner_->RowCount();
  if (inner_->HasResultSet()) {
    // Procedure/unknown statements may open a result set; it is delivered
    // pass-through (not crash-protected).
    mode_ = ResultMode::kPassthrough;
    schema_ = inner_->ResultSchema();
    passthrough_lost_ = false;
  }
  if (record_session_context) {
    conn_->session_context_sql_.push_back({sql, inner_->LastShardMask()});
  }
  return st;
}

Status PhoenixStatement::ExecutePersistedQuery(const std::string& sql) {
  stmt_seq_ = conn_->next_stmt_seq_++;
  result_table_ = conn_->NextResultTableName(stmt_seq_);
  load_complete_ = false;
  delivered_ = 0;

  auto persist_steps = [this, &sql]() -> Status {
    // Step 1: metadata probe — compile-only, via the WHERE 0=1 trick
    // wrapped as a derived table so it composes with any SELECT.
    Stopwatch probe_watch;
    PHX_RETURN_IF_ERROR(inner_->ExecDirect("SELECT * FROM (" + sql +
                                           ") phoenix_probe WHERE 0=1"));
    NoteAppExecution();
    schema_ = inner_->ResultSchema();
    PHX_RETURN_IF_ERROR(inner_->CloseCursor());
    conn_->stats_.metadata_probe.Add(
        static_cast<uint64_t>(probe_watch.ElapsedNanos()));

    // Steps 2+3 are skipped if a previous attempt already completed the
    // load (status row present) — this is what makes recovery idempotent.
    auto status_read = conn_->ReadStatusRow(stmt_seq_);
    if (!status_read.ok()) return MarkPrivateFailure(status_read.status());
    std::optional<int64_t> status_row = std::move(status_read).value();
    if (!status_row.has_value()) {
      // Step 2: create the persistent result table. This auto-commits on
      // the private session; a failure there (WAL included) leaves the
      // application's transaction untouched, hence the private tag.
      Stopwatch create_watch;
      Status create_st = conn_->ExecutePrivate(
          "CREATE TABLE IF NOT EXISTS " + result_table_ + " " +
          schema_.ToDdlColumnList());
      if (!create_st.ok()) return MarkPrivateFailure(create_st);
      conn_->stats_.create_table.Add(
          static_cast<uint64_t>(create_watch.ElapsedNanos()));

      // Step 3: evaluate the query and load its result into the table,
      // entirely on the server (one round trip), atomically with the
      // status-table record that marks completion.
      Stopwatch load_watch;
      std::string status_insert;
      PHX_RETURN_IF_ERROR(
          conn_->WriteStatusRowSql(stmt_seq_, 0, &status_insert));
      std::string load_batch;
      if (conn_->in_txn_) {
        load_batch = "INSERT INTO " + result_table_ + " " + sql + "; " +
                     status_insert;
      } else {
        load_batch = "BEGIN TRANSACTION; INSERT INTO " + result_table_ +
                     " " + sql + "; " + status_insert + "; COMMIT";
      }
      Status load_st = inner_->ExecDirect(load_batch);
      PHX_RETURN_IF_ERROR(load_st);
      NoteAppExecution();
      conn_->stats_.load_result.Add(
          static_cast<uint64_t>(load_watch.ElapsedNanos()));
    }
    load_complete_ = true;

    // Step 4: reopen the now-persistent result for seamless delivery.
    Stopwatch reopen_watch;
    PHX_RETURN_IF_ERROR(
        inner_->ExecDirect("SELECT * FROM " + result_table_));
    // The delivery cursor's home shard (where phoenix_rs_* is pinned)
    // scopes this statement for partition-aware recovery.
    shard_mask_ |= inner_->LastShardMask();
    conn_->stats_.reopen.Add(
        static_cast<uint64_t>(reopen_watch.ElapsedNanos()));
    return Status::OK();
  };

  Status st = Status::OK();
  // Same masking budget as WithRecovery: retry past three attempts only
  // while the outage budget lasts (every retry follows a successful
  // recovery).
  auto mask_deadline =
      std::chrono::steady_clock::now() + conn_->config_.reconnect_deadline;
  for (int attempt = 0;
       attempt < 3 || std::chrono::steady_clock::now() < mask_deadline;
       ++attempt) {
    st = persist_steps();
    if (st.ok()) {
      mode_ = ResultMode::kPersisted;
      conn_->stats_.queries_persisted.Bump();
      return Status::OK();
    }
    if (!Recoverable(st)) return st;
    bool was_txn = conn_->in_txn_;
    Status recovered = conn_->Recover(st);
    if (!recovered.ok()) return st;
    if (was_txn && !conn_->in_txn_) {
      return Status::Aborted(
          "transaction aborted by server failure; session recovered");
    }
  }
  return st;
}

Status PhoenixStatement::ExecuteCachedQuery(const std::string& sql) {
  stmt_seq_ = conn_->next_stmt_seq_++;

  // Either cache can carry the drained result, so the larger budget rules
  // (a statement enabling only PHOENIX_RESULT_CACHE still gets this path).
  const size_t budget =
      std::max(conn_->config_.cache_bytes, conn_->config_.result_cache_bytes);

  auto cache_steps = [this, &sql, budget]() -> Status {
    // Submit the original statement unchanged; nothing is materialized on
    // the server (paper Section 4.1).
    PHX_RETURN_IF_ERROR(inner_->ExecDirect(sql));
    NoteAppExecution();
    schema_ = inner_->ResultSchema();

    // Pull the entire result across in block-cursor reads. Only when it is
    // completely cached does Phoenix start delivering rows — at that point
    // a crash can no longer affect this result set.
    Stopwatch fill_watch;
    cache_.clear();
    size_t bytes = 0;
    while (true) {
      PHX_ASSIGN_OR_RETURN(std::vector<Row> block, inner_->FetchBlock(1024));
      if (block.empty()) break;
      for (Row& row : block) {
        bytes += common::ApproxRowBytes(row);
        cache_.push_back(std::move(row));
      }
      if (bytes > budget) {
        return Status::ClientCacheOverflow(
            "result exceeds the client cache budget");
      }
    }
    conn_->stats_.cache_fill.Add(
        static_cast<uint64_t>(fill_watch.ElapsedNanos()));
    return Status::OK();
  };

  Status st = Status::OK();
  auto mask_deadline =
      std::chrono::steady_clock::now() + conn_->config_.reconnect_deadline;
  for (int attempt = 0;
       attempt < 3 || std::chrono::steady_clock::now() < mask_deadline;
       ++attempt) {
    st = cache_steps();
    if (st.ok()) {
      cache_complete_ = true;
      mode_ = ResultMode::kCached;
      delivered_ = 0;
      conn_->stats_.queries_cached.Bump();
      // A complete, server-vouched fill seeds the cross-statement cache so
      // repeats of this query skip the server entirely.
      MaybeInsertResultCache(sql);
      return Status::OK();
    }
    if (st.IsClientCacheOverflow()) {
      // The result does not fit the client cache: fall back to the
      // server-side persistence path.
      conn_->stats_.cache_overflows.Bump();
      inner_->CloseCursor().ok();
      cache_.clear();
      return ExecutePersistedQuery(sql);
    }
    if (!Recoverable(st)) return st;
    bool was_txn = conn_->in_txn_;
    Status recovered = conn_->Recover(st);
    if (!recovered.ok()) return st;
    if (was_txn && !conn_->in_txn_) {
      return Status::Aborted(
          "transaction aborted by server failure; session recovered");
    }
    // Re-execute the query and refill the cache from scratch.
  }
  return st;
}

Status PhoenixStatement::ExecuteModification(const std::string& sql) {
  stmt_seq_ = conn_->next_stmt_seq_++;

  if (!conn_->config_.track_update_status) {
    // Ablation D5: no transaction wrapping, no status write. A crash during
    // the statement is NOT retried (completion is untestable) — the
    // connection still recovers, but the statement surfaces as aborted.
    Status st = inner_->ExecDirect(sql);
    if (st.ok()) {
      NoteAppExecution();
      rows_affected_ = inner_->RowCount();
      return st;
    }
    if (!Recoverable(st)) return st;
    Status recovered = conn_->Recover(st);
    conn_->in_txn_ = false;
    if (!recovered.ok()) return st;
    return Status::Aborted(
        "statement interrupted by server failure (status tracking off; "
        "completion unknown)");
  }

  Status st = Status::OK();
  auto mask_deadline =
      std::chrono::steady_clock::now() + conn_->config_.reconnect_deadline;
  for (int attempt = 0;
       attempt < 3 || std::chrono::steady_clock::now() < mask_deadline;
       ++attempt) {
    if (conn_->in_txn_) {
      // Inside an application transaction the status write shares its fate.
      st = inner_->ExecDirect(sql);
      if (st.ok()) {
        NoteAppExecution();
        rows_affected_ = inner_->RowCount();
        Stopwatch status_watch;
        std::string status_insert;
        PHX_RETURN_IF_ERROR(
            conn_->WriteStatusRowSql(stmt_seq_, rows_affected_,
                                     &status_insert));
        st = inner_->ExecDirect(status_insert);
        conn_->stats_.status_write.Add(
            static_cast<uint64_t>(status_watch.ElapsedNanos()));
      }
      if (st.ok()) return st;
      if (!Recoverable(st)) return st;
      Status recovered = conn_->Recover(st);
      conn_->in_txn_ = false;
      if (!recovered.ok()) return st;
      return Status::Aborted(
          "transaction aborted by server failure; session recovered");
    }

    // Auto-commit: wrap the modification in a transaction together with the
    // status-table record so completion is testable after a crash.
    st = inner_->ExecDirect("BEGIN TRANSACTION; " + sql);
    if (st.ok()) {
      rows_affected_ = inner_->RowCount();
      Stopwatch status_watch;
      std::string status_insert;
      PHX_RETURN_IF_ERROR(conn_->WriteStatusRowSql(stmt_seq_, rows_affected_,
                                                   &status_insert));
      st = inner_->ExecDirect(status_insert + "; COMMIT");
      conn_->stats_.status_write.Add(
          static_cast<uint64_t>(status_watch.ElapsedNanos()));
      if (st.ok()) return st;
    }
    if (!Recoverable(st)) return st;

    Status recovered = conn_->Recover(st);
    if (!recovered.ok()) return st;
    // Did the pre-crash attempt actually complete? The status table is the
    // testable state. The read itself can hit another outage; recovery is
    // idempotent, so rerun it and read again rather than surface the error.
    std::optional<int64_t> row;
    Status read_st = Status::OK();
    for (int read_attempt = 0; read_attempt < 3; ++read_attempt) {
      auto read = conn_->ReadStatusRow(stmt_seq_);
      if (read.ok()) {
        row = read.value();
        read_st = Status::OK();
        break;
      }
      read_st = read.status();
      if (!Recoverable(read_st)) return read_st;
      Status again = conn_->Recover(read_st);
      if (!again.ok()) return read_st;
    }
    if (!read_st.ok()) return read_st;
    if (row.has_value()) {
      rows_affected_ = *row;
      return Status::OK();
    }
    // Not completed — safe to re-execute.
  }
  return st;
}

Result<bool> PhoenixStatement::Fetch(Row* out) {
  // Fetches rejoin the trace of the statement that opened this result set.
  obs::TraceScope trace(trace_id_, 0);
  Stopwatch fetch_watch;
  switch (mode_) {
    case ResultMode::kNone:
      return Status::InvalidArgument("no open result set");

    case ResultMode::kCached: {
      if (cache_.empty()) return false;
      *out = std::move(cache_.front());
      cache_.pop_front();
      ++delivered_;
      conn_->stats_.fetch.Add(
          static_cast<uint64_t>(fetch_watch.ElapsedNanos()));
      return true;
    }

    case ResultMode::kPassthrough: {
      if (passthrough_lost_) {
        return Status::Aborted(
            "result set lost in server failure (pass-through delivery)");
      }
      return inner_->Fetch(out);
    }

    case ResultMode::kPersisted: {
      auto mask_deadline = std::chrono::steady_clock::now() +
                           conn_->config_.reconnect_deadline;
      for (int attempt = 0;
           attempt < 3 || std::chrono::steady_clock::now() < mask_deadline;
           ++attempt) {
        auto fetched = inner_->Fetch(out);
        if (fetched.ok()) {
          if (fetched.value()) {
            ++delivered_;
            conn_->stats_.fetch.Add(
                static_cast<uint64_t>(fetch_watch.ElapsedNanos()));
          }
          return fetched;
        }
        Status st = fetched.status();
        if (!Recoverable(st)) return st;
        bool was_txn = conn_->in_txn_;
        Status recovered = conn_->Recover(st);
        if (!recovered.ok()) {
          return st;
        }
        if (was_txn && !conn_->in_txn_) {
          return Status::Aborted(
              "transaction aborted by server failure; session recovered");
        }
        // Recovery reinstalled and repositioned this statement; retry.
      }
      return Status::ConnectionFailed("fetch failed after recovery");
    }
  }
  return Status::Internal("unhandled result mode");
}

Result<std::vector<Row>> PhoenixStatement::FetchBlock(size_t max_rows) {
  switch (mode_) {
    case ResultMode::kNone:
      return Status::InvalidArgument("no open result set");

    case ResultMode::kCached: {
      obs::TraceScope trace(trace_id_, 0);
      Stopwatch fetch_watch;
      std::vector<Row> out;
      out.reserve(std::min(max_rows, cache_.size()));
      while (!cache_.empty() && out.size() < max_rows) {
        out.push_back(std::move(cache_.front()));
        cache_.pop_front();
        ++delivered_;
      }
      conn_->stats_.fetch.Add(
          static_cast<uint64_t>(fetch_watch.ElapsedNanos()));
      return out;
    }

    case ResultMode::kPassthrough: {
      // Delegate the whole block to the inner driver — one block read (with
      // its piggyback/read-ahead machinery) instead of max_rows single-row
      // calls through this wrapper.
      obs::TraceScope trace(trace_id_, 0);
      if (passthrough_lost_) {
        return Status::Aborted(
            "result set lost in server failure (pass-through delivery)");
      }
      return inner_->FetchBlock(max_rows);
    }

    case ResultMode::kPersisted: {
      // Stays row-at-a-time: every row may trigger recovery + reposition,
      // which must count delivered rows exactly.
      std::vector<Row> out;
      out.reserve(std::min<size_t>(max_rows, 1024));
      Row row;
      while (out.size() < max_rows) {
        PHX_ASSIGN_OR_RETURN(bool more, Fetch(&row));
        if (!more) break;
        out.push_back(std::move(row));
        row.clear();
      }
      return out;
    }
  }
  return Status::Internal("unhandled result mode");
}

Status PhoenixStatement::CloseCursor() {
  if (mode_ == ResultMode::kNone) return Status::OK();
  if (inner_ != nullptr) inner_->CloseCursor().ok();
  if (mode_ == ResultMode::kPersisted) {
    DropResultArtifacts().ok();
  }
  cache_.clear();
  cache_complete_ = false;
  passthrough_lost_ = false;
  delivered_ = 0;
  mode_ = ResultMode::kNone;
  return Status::OK();
}

Status PhoenixStatement::DropResultArtifacts() {
  if (conn_ == nullptr || result_table_.empty()) return Status::OK();
  if (!conn_->config_.drop_result_tables_on_close) return Status::OK();
  if (conn_->in_txn_) {
    // The application's transaction may hold locks on the result table
    // (the load ran inside it); a DROP from the private connection would
    // block until lock timeout. Defer to transaction end.
    conn_->DeferDrop(result_table_, stmt_seq_);
    result_table_.clear();
    return Status::OK();
  }
  Status st = conn_->ExecutePrivate("DROP TABLE IF EXISTS " + result_table_);
  conn_->DeleteStatusRow(stmt_seq_).ok();
  result_table_.clear();
  return st;
}

Status PhoenixStatement::Reposition() {
  if (delivered_ == 0) return Status::OK();
  if (conn_->config_.reposition == PhoenixConfig::Reposition::kServer) {
    auto skipped = inner_->SkipRows(delivered_);
    if (skipped.ok()) {
      if (skipped.value() != delivered_) {
        return Status::Internal("server-side reposition skipped " +
                                std::to_string(skipped.value()) + " of " +
                                std::to_string(delivered_) + " rows");
      }
      return Status::OK();
    }
    if (skipped.status().code() != common::StatusCode::kUnsupported) {
      return skipped.status();
    }
    // Fall through to client-side repositioning.
  }
  // Client-side: sequence through the result, discarding (paper Figure 3).
  Row discard;
  for (uint64_t i = 0; i < delivered_; ++i) {
    PHX_ASSIGN_OR_RETURN(bool more, inner_->Fetch(&discard));
    if (!more) {
      return Status::Internal("result set shorter than delivered count");
    }
  }
  return Status::OK();
}

Status PhoenixStatement::Reinstall() {
  // Fresh inner handle bound to the new (post-crash) connection.
  PHX_ASSIGN_OR_RETURN(inner_, conn_->app_conn_->CreateStatement());
  inner_->attrs() = attrs_;

  switch (mode_) {
    case ResultMode::kNone:
    case ResultMode::kCached:
      // Nothing server-side to reinstall. (A cache still being filled is
      // redone by ExecuteCachedQuery's own retry loop.)
      return Status::OK();

    case ResultMode::kPassthrough:
      passthrough_lost_ = true;
      return Status::OK();

    case ResultMode::kPersisted: {
      // Was the materialization durable? (It must be: delivery only starts
      // after the load transaction commits — but verify, per the paper:
      // "verifies that all application state materialized in tables on the
      // server was recovered by database recovery".)
      PHX_ASSIGN_OR_RETURN(std::optional<int64_t> status_row,
                           conn_->ReadStatusRow(stmt_seq_));
      if (!status_row.has_value()) {
        return Status::Internal("persistent result " + result_table_ +
                                " vanished across the crash");
      }
      // Reopen and reposition to the last tuple delivered pre-crash.
      PHX_RETURN_IF_ERROR(
          inner_->ExecDirect("SELECT * FROM " + result_table_));
      return Reposition();
    }
  }
  return Status::Internal("unhandled result mode in Reinstall");
}

}  // namespace phoenix::phx
