#ifndef PHOENIX_PHOENIX_CLASSIFIER_H_
#define PHOENIX_PHOENIX_CLASSIFIER_H_

#include <string>

#include "common/status.h"

namespace phoenix::phx {

/// What Phoenix decides to do with an intercepted request, determined by a
/// one-pass scan of the SQL text (paper Section 2.1: "performs a one-pass
/// parse to determine request type").
enum class RequestClass : uint8_t {
  kQuery,          // SELECT ... — result set to be made recoverable
  kModification,   // INSERT/UPDATE/DELETE — wrap with status-table write
  kDdl,            // CREATE/DROP TABLE|PROCEDURE — pass through
  kDdlSessionTemp, // CREATE TEMP TABLE — pass through AND replay at recovery
  kTxnBegin,
  kTxnCommit,
  kTxnRollback,
  kExecProcedure,  // EXEC name ... — pass through (tracked like updates)
  kUnknown,
};

const char* RequestClassName(RequestClass c);

/// Classifies a SQL request. Cheap: tokenizes and inspects the first few
/// tokens only; full parsing happens at the server.
common::Result<RequestClass> ClassifyRequest(const std::string& sql);

}  // namespace phoenix::phx

#endif  // PHOENIX_PHOENIX_CLASSIFIER_H_
