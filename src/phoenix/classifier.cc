#include "phoenix/classifier.h"

#include "sql/lexer.h"

namespace phoenix::phx {

using common::Result;
using common::Status;

const char* RequestClassName(RequestClass c) {
  switch (c) {
    case RequestClass::kQuery: return "Query";
    case RequestClass::kModification: return "Modification";
    case RequestClass::kDdl: return "Ddl";
    case RequestClass::kDdlSessionTemp: return "DdlSessionTemp";
    case RequestClass::kTxnBegin: return "TxnBegin";
    case RequestClass::kTxnCommit: return "TxnCommit";
    case RequestClass::kTxnRollback: return "TxnRollback";
    case RequestClass::kExecProcedure: return "ExecProcedure";
    case RequestClass::kUnknown: return "Unknown";
  }
  return "?";
}

Result<RequestClass> ClassifyRequest(const std::string& sql) {
  PHX_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Tokenize(sql));
  if (tokens.empty() || tokens[0].type == sql::TokenType::kEnd) {
    return Status::InvalidArgument("empty request");
  }
  const sql::Token& first = tokens[0];
  if (first.type != sql::TokenType::kKeyword) {
    return RequestClass::kUnknown;
  }
  if (first.text == "SELECT") return RequestClass::kQuery;
  if (first.text == "INSERT" || first.text == "UPDATE" ||
      first.text == "DELETE") {
    return RequestClass::kModification;
  }
  if (first.text == "CREATE" || first.text == "DROP") {
    // CREATE TEMP/TEMPORARY TABLE is session context that recovery must
    // replay.
    if (first.text == "CREATE" && tokens.size() > 1 &&
        (tokens[1].IsKeyword("TEMP") || tokens[1].IsKeyword("TEMPORARY"))) {
      return RequestClass::kDdlSessionTemp;
    }
    return RequestClass::kDdl;
  }
  if (first.text == "BEGIN") return RequestClass::kTxnBegin;
  if (first.text == "COMMIT") return RequestClass::kTxnCommit;
  if (first.text == "ROLLBACK") return RequestClass::kTxnRollback;
  if (first.text == "EXEC") return RequestClass::kExecProcedure;
  return RequestClass::kUnknown;
}

}  // namespace phoenix::phx
