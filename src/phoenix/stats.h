#ifndef PHOENIX_PHOENIX_STATS_H_
#define PHOENIX_PHOENIX_STATS_H_

#include <atomic>
#include <cstdint>

#include "obs/trace.h"

namespace phoenix::phx {

/// Accumulated nanoseconds + event counts for each Phoenix processing step.
/// These are the measurement points of paper Section 3.5 (parse, metadata
/// probe, create table, load, reopen, per-tuple fetch) plus the two recovery
/// phases of Section 3.4.
///
/// Each timer is bound to a named obs registry histogram: Add() dual-writes
/// the local totals (the bench tables' averages) and the histogram (the
/// percentile columns of the obs JSON dump), and emits a per-step trace
/// event when a trace is active on the calling thread.
struct StepTimer {
  explicit StepTimer(const char* name) : name_(name) {}

  std::atomic<uint64_t> nanos{0};
  std::atomic<uint64_t> count{0};

  void Add(uint64_t ns) {
    nanos.fetch_add(ns, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    if (obs::Enabled()) {
      Bound()->Record(ns);
      obs::EmitStepEvent(name_, ns);
    }
  }
  double TotalSeconds() const {
    return static_cast<double>(nanos.load(std::memory_order_relaxed)) * 1e-9;
  }
  double AverageSeconds() const {
    uint64_t n = count.load(std::memory_order_relaxed);
    return n == 0 ? 0.0 : TotalSeconds() / static_cast<double>(n);
  }
  void Reset() {
    nanos.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    obs::Histogram* h = histogram_.load(std::memory_order_relaxed);
    if (h != nullptr) h->Reset();
  }
  const char* name() const { return name_; }

 private:
  obs::Histogram* Bound() {
    obs::Histogram* h = histogram_.load(std::memory_order_acquire);
    if (h == nullptr) {
      // Registry dedupes by name, so a concurrent bind resolves to the same
      // pointer; the pointer is never invalidated (metrics are immortal).
      h = obs::Registry::Global().histogram(name_);
      histogram_.store(h, std::memory_order_release);
    }
    return h;
  }

  const char* name_;
  std::atomic<obs::Histogram*> histogram_{nullptr};
};

/// An event counter that reports through both surfaces at once: a local
/// atomic (the per-connection stats() accessors tests and benches read) and
/// a named obs registry counter (the exporter every other metric goes
/// through). Replaces the old pattern of a raw atomic plus a manual
/// registry bump at each increment site, which had to be kept in sync by
/// hand.
struct EventCounter {
  explicit EventCounter(const char* name) : name_(name) {}

  void Bump(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
    if (obs::Enabled()) Bound()->Add(n);
  }
  uint64_t load(
      std::memory_order order = std::memory_order_relaxed) const {
    return value_.load(order);
  }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    obs::Counter* c = counter_.load(std::memory_order_relaxed);
    if (c != nullptr) c->Reset();
  }
  const char* name() const { return name_; }

 private:
  obs::Counter* Bound() {
    obs::Counter* c = counter_.load(std::memory_order_acquire);
    if (c == nullptr) {
      c = obs::Registry::Global().counter(name_);
      counter_.store(c, std::memory_order_release);
    }
    return c;
  }

  const char* name_;
  std::atomic<uint64_t> value_{0};
  std::atomic<obs::Counter*> counter_{nullptr};
};

struct PhoenixStats {
  StepTimer parse{"phx.parse"};            // interception + one-pass classify
  StepTimer metadata_probe{"phx.metadata_probe"};  // WHERE 0=1 round trip
  StepTimer create_table{"phx.create_table"};      // CREATE TABLE for result
  StepTimer load_result{"phx.load_result"};  // stored-proc INSERT INTO T
  StepTimer reopen{"phx.reopen"};            // SELECT * FROM T
  StepTimer fetch{"phx.fetch"};              // per-tuple delivery to the app
  StepTimer status_write{"phx.status_write"};  // txn + status-table record
  StepTimer cache_fill{"phx.cache_fill"};    // client result cache block read
  StepTimer recover_virtual{"phx.recover.virtual"};  // phase 1: virtual sess.
  StepTimer recover_sql{"phx.recover.sql"};  // phase 2: SQL state reinstall

  EventCounter recoveries{"phx.recoveries"};  // completed recoveries
  EventCounter shard_recoveries{"phx.shard.recoveries"};  // scoped (one-shard)
                                                          // recoveries, a
                                                          // subset of the above
  EventCounter failovers{"phx.failovers"};    // recoveries that promoted or
                                              // switched to another endpoint
  EventCounter queries_persisted{"phx.queries_persisted"};
  EventCounter queries_cached{"phx.queries_cached"};
  EventCounter cache_overflows{"phx.cache_overflows"};  // fell back

  void Reset() {
    parse.Reset();
    metadata_probe.Reset();
    create_table.Reset();
    load_result.Reset();
    reopen.Reset();
    fetch.Reset();
    status_write.Reset();
    cache_fill.Reset();
    recover_virtual.Reset();
    recover_sql.Reset();
    recoveries.Reset();
    shard_recoveries.Reset();
    failovers.Reset();
    queries_persisted.Reset();
    queries_cached.Reset();
    cache_overflows.Reset();
  }
};

/// Wall-clock split of the most recent recovery (paper Figures 3 and 4 plot
/// these two series separately).
struct RecoveryTimings {
  double virtual_session_seconds = 0.0;
  double sql_state_seconds = 0.0;
};

}  // namespace phoenix::phx

#endif  // PHOENIX_PHOENIX_STATS_H_
