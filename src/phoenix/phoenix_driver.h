#ifndef PHOENIX_PHOENIX_PHOENIX_DRIVER_H_
#define PHOENIX_PHOENIX_PHOENIX_DRIVER_H_

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "odbc/api.h"
#include "phoenix/classifier.h"
#include "phoenix/stats.h"

namespace phoenix::phx {

/// Runtime knobs, settable per connection through connection-string
/// attributes:
///   PHOENIX_CACHE=<bytes>        client result cache size (0 = disabled)
///   PHOENIX_RESULT_CACHE=<bytes> cross-statement result cache (0 = disabled;
///                                also readable from the environment so a
///                                harness can enable it suite-wide)
///   PHOENIX_REPOSITION=client|server
///   PHOENIX_RETRY_MS=<ms>        base reconnect interval (backoff floor)
///   PHOENIX_RETRY_CAP_MS=<ms>    reconnect backoff ceiling
///   PHOENIX_DEADLINE_MS=<ms>     give-up deadline (then the original error
///                                is revealed to the application)
struct PhoenixConfig {
  /// Client result cache capacity in bytes; 0 disables the OLTP
  /// optimization of paper Section 4.
  size_t cache_bytes = 0;

  /// Cross-statement result cache capacity in bytes; 0 disables it. Unlike
  /// cache_bytes (whose cache lives and dies with one statement), entries
  /// here survive across statements and transactions and are revalidated
  /// against the server's commit-timestamp invalidation digest before every
  /// hit (DESIGN.md §16). Enabling it also enables the client-cache
  /// delivery path: results drain client-side bounded by
  /// max(cache_bytes, result_cache_bytes) before falling back to the
  /// persisted path.
  size_t result_cache_bytes = 0;

  /// How recovery repositions a reopened result set to the last delivered
  /// tuple: fetching and discarding on the client (paper Figure 3) or
  /// advancing on the server without transferring rows (paper Figure 4).
  enum class Reposition : uint8_t { kClient, kServer };
  Reposition reposition = Reposition::kClient;

  /// Reconnect pacing: sleeps start at reconnect_interval and grow with
  /// decorrelated jitter (common::Backoff) up to reconnect_backoff_cap, so a
  /// fleet of recovering clients does not hammer a restarting server in
  /// lockstep. Every sleep is clamped to the remaining reconnect_deadline.
  std::chrono::milliseconds reconnect_interval{25};
  std::chrono::milliseconds reconnect_backoff_cap{1'000};
  std::chrono::milliseconds reconnect_deadline{10'000};

  /// Drop phoenix_rs_* tables (and their status rows) when the application
  /// closes the cursor; keeps the Phoenix database from growing unboundedly.
  bool drop_result_tables_on_close = true;

  /// DESIGN.md ablation D5: wrap modifications with the status-table write
  /// (the paper's testable completion state). Disabling it removes the only
  /// per-update overhead but recovery can no longer tell whether an
  /// interrupted update committed, so it conservatively does NOT re-execute
  /// (at-most-once instead of exactly-once). Connection string:
  /// PHOENIX_STATUS=off.
  bool track_update_status = true;

  /// Applies PHOENIX_* connection-string overrides on top of *this.
  PhoenixConfig WithOverrides(const odbc::ConnectionString& conn_str) const;
};

class PhoenixConnection;

/// The Phoenix-enhanced driver (paper Figure 1): wraps a vendor driver and
/// surrogates every ODBC entry point. Register it with the DriverManager
/// under its own DRIVER= name; applications switch between native and
/// Phoenix data access by changing one connection-string attribute — no
/// application, driver, or database change.
class PhoenixDriver : public odbc::Driver {
 public:
  PhoenixDriver(std::string name, odbc::DriverPtr inner,
                PhoenixConfig defaults = PhoenixConfig())
      : name_(std::move(name)),
        inner_(std::move(inner)),
        defaults_(defaults) {}

  std::string name() const override { return name_; }
  common::Result<odbc::ConnectionPtr> Connect(
      const odbc::ConnectionString& conn_str) override;

  /// Probe/Promote delegate to the wrapped vendor driver: Phoenix adds no
  /// protocol of its own, it only orchestrates failover during recovery.
  common::Result<repl::ServerHealth> Probe(
      const odbc::ConnectionString& conn_str) override {
    return inner_->Probe(conn_str);
  }
  common::Result<uint64_t> Promote(const odbc::ConnectionString& conn_str,
                                   uint64_t known_epoch) override {
    return inner_->Promote(conn_str, known_epoch);
  }

 private:
  std::string name_;
  odbc::DriverPtr inner_;
  PhoenixConfig defaults_;
};

class PhoenixStatement;

/// The virtual database session (paper Section 2.2). The application holds
/// this handle; underneath it maps to a real connection that can be replaced
/// wholesale after a crash. A second, private connection carries Phoenix
/// housekeeping (status table, pings, result-table cleanup) so the
/// application never observes it.
class PhoenixConnection : public odbc::Connection {
 public:
  ~PhoenixConnection() override;

  common::Result<odbc::StatementPtr> CreateStatement() override;
  common::Status Disconnect() override;
  common::Status Ping() override;
  const odbc::ConnectionString& connection_string() const override {
    return conn_str_;
  }

  // --- Phoenix-specific introspection ------------------------------------

  PhoenixStats& stats() { return stats_; }
  const PhoenixConfig& config() const { return config_; }
  /// The cross-statement result cache; nullptr unless PHOENIX_RESULT_CACHE
  /// is set.
  cache::ResultCache* result_cache() { return result_cache_.get(); }
  const RecoveryTimings& last_recovery() const { return last_recovery_; }
  uint64_t recovery_count() const {
    return stats_.recoveries.load(std::memory_order_relaxed);
  }
  bool in_transaction() const { return in_txn_; }
  /// Unique id naming this virtual session's server-side artifacts
  /// (phoenix_rs_<owner>_<n> tables, phoenix_status rows).
  const std::string& owner_id() const { return owner_id_; }
  /// The endpoint currently serving this virtual session ("" when the
  /// connection string names no SERVER/FAILOVER endpoints).
  std::string active_endpoint() const {
    return active_ < endpoints_.size() ? endpoints_[active_] : "";
  }
  /// Highest cluster epoch this session has observed (0 before the first
  /// successful probe on a multi-endpoint string).
  uint64_t cluster_epoch() const { return cluster_epoch_; }

 private:
  friend class PhoenixDriver;
  friend class PhoenixStatement;

  PhoenixConnection(odbc::DriverPtr inner_driver,
                    odbc::ConnectionString conn_str, PhoenixConfig config);

  /// Connects both inner connections, creates the session-liveness probe
  /// temp table and the status table.
  common::Status EstablishSession();

  /// Full automatic recovery (paper Section 2.3). Returns OK if the virtual
  /// session was restored (or the outage proved transient); otherwise the
  /// caller reveals `original_error` to the application. Idempotent: safe
  /// to run again if a second crash interrupts it. A kShardUnavailable
  /// error dispatches to the scoped RecoverShard path instead.
  common::Status Recover(const common::Status& original_error);

  /// Partition-aware recovery (DESIGN.md §20): exactly one engine shard
  /// crashed, the wire session and every other shard survived. Waits for
  /// the shard to serve again (EXEC sys_shard_ping) and reinstalls ONLY the
  /// state that lived on it — session context and statements whose shard
  /// mask intersects bit `shard` (mask 0 = unknown, treated conservatively).
  /// Statements that never touched the shard keep their live cursors.
  /// Escalates to full Recover if the whole server goes away while waiting.
  common::Status RecoverShard(const common::Status& original_error,
                              int shard);

  /// Runs `op`; if it fails at the connection level, recovers and retries
  /// (bounded). Used for idempotent pass-through operations.
  common::Status WithRecovery(const std::function<common::Status()>& op);

  /// True if the pre-crash database session is still alive (the outage was
  /// a communication glitch): tested via the probe temp table, which only
  /// exists while the session does.
  bool OldSessionSurvived();

  common::Status EnsureStatusTable();
  common::Status ReplaySessionContext();
  /// Replays only entries whose shard mask intersects `shard_bits` (mask 0 =
  /// unknown provenance, always replayed).
  common::Status ReplaySessionContext(uint64_t shard_bits);

  /// The connection string pointed at the active endpoint, with the highest
  /// observed cluster epoch stamped in (PHOENIX_KNOWN_EPOCH) so a stale
  /// ex-primary fences itself on first contact. Pass-through copy when the
  /// string names no endpoints.
  odbc::ConnectionString ActiveConnStr() const;
  odbc::ConnectionString EndpointConnStr(size_t index) const;

  /// Failover arbitration: probes every endpoint and points active_ at the
  /// best one — a reachable primary at (or past) the highest epoch seen, or
  /// failing that a reachable standby it promotes. Sets *switched when the
  /// active endpoint changed (the old session cannot have survived on
  /// another server). Returns non-OK when no endpoint is usable yet.
  common::Status SelectEndpoint(bool* switched);

  /// Result-table cleanup is deferred while the application is inside a
  /// transaction (the app txn's locks on phoenix_rs_* tables would block a
  /// DROP issued from the private connection); the sweep runs after the
  /// transaction ends.
  void DeferDrop(std::string table, uint64_t seq);
  void SweepDeferredDrops();
  std::string NextResultTableName(uint64_t seq) const;

  /// Executes housekeeping SQL on the private connection.
  common::Status ExecutePrivate(const std::string& sql);
  /// Looks up a status-table row; nullopt if the statement never completed.
  common::Result<std::optional<int64_t>> ReadStatusRow(uint64_t seq);
  common::Status WriteStatusRowSql(uint64_t seq, int64_t rows,
                                   std::string* out) const;
  common::Status DeleteStatusRow(uint64_t seq);

  odbc::DriverPtr inner_driver_;
  odbc::ConnectionString conn_str_;
  PhoenixConfig config_;
  std::string owner_id_;
  std::string probe_table_;

  /// Failover cluster state (empty endpoints_ = classic single-server mode,
  /// everything below is inert). active_ indexes endpoints_; cluster_epoch_
  /// is the highest server epoch observed from any probe/promotion and rides
  /// every reconnect as PHOENIX_KNOWN_EPOCH.
  std::vector<std::string> endpoints_;
  size_t active_ = 0;
  uint64_t cluster_epoch_ = 0;

  odbc::ConnectionPtr app_conn_;
  odbc::ConnectionPtr private_conn_;

  uint64_t next_stmt_seq_ = 1;
  bool in_txn_ = false;
  bool disconnected_ = false;
  bool recovering_ = false;

  /// Cross-statement result cache (PHOENIX_RESULT_CACHE). Entries persist
  /// across statements and transactions; a crash drops them all (Recover
  /// clears the cache the moment the old session is pronounced dead).
  std::shared_ptr<cache::ResultCache> result_cache_;
  /// Pinned snapshot of the open explicit transaction, learned from the
  /// first query response inside it; until known, result-cache hits are
  /// denied (they could be newer or older than the pinned snapshot).
  bool txn_snapshot_known_ = false;
  uint64_t txn_snapshot_ts_ = 0;
  /// Tables the open transaction has written (server-reported); hits and
  /// fills touching them are suppressed — the cache must never shadow
  /// read-your-writes, and txn-private results must not leak past ROLLBACK.
  std::set<std::string> txn_dirty_tables_;
  /// Bitmap of engine shards the open transaction has executed on (bit i =
  /// shard i; 0 = none yet or unsharded server). RecoverShard uses it to
  /// decide whether a single-shard crash doomed the transaction.
  uint64_t txn_shard_mask_ = 0;
  /// Session-scoped DDL (CREATE TEMP TABLE ...) replayed at recovery, each
  /// tagged with the shard bitmap it executed on so scoped recovery replays
  /// only what the crashed shard held (mask 0 = unknown → always replayed).
  struct SessionContextEntry {
    std::string sql;
    uint64_t shard_mask = 0;
  };
  std::vector<SessionContextEntry> session_context_sql_;
  std::vector<std::pair<std::string, uint64_t>> deferred_drops_;
  std::set<PhoenixStatement*> statements_;

  PhoenixStats stats_;
  RecoveryTimings last_recovery_;
};

/// A statement handle whose result sets survive server crashes. Decides per
/// request (one-pass classification) between the persistence path, the
/// client-cache path, update wrapping, or pass-through.
class PhoenixStatement : public odbc::Statement {
 public:
  ~PhoenixStatement() override;

  common::Status ExecDirect(const std::string& sql) override;
  bool HasResultSet() const override {
    return mode_ != ResultMode::kNone;
  }
  const common::Schema& ResultSchema() const override { return schema_; }
  common::Result<bool> Fetch(common::Row* out) override;
  common::Result<std::vector<common::Row>> FetchBlock(
      size_t max_rows) override;
  int64_t RowCount() const override { return rows_affected_; }
  common::Status CloseCursor() override;

  /// Statement pipelining with Phoenix's exactly-once guarantee. The queued
  /// statements flush as ONE wire bundle; when the bundle modifies data,
  /// Phoenix rides a status-table record inside the bundle's transaction
  /// (supplying BEGIN/COMMIT itself for autocommit bundles, or splicing the
  /// record before the bundle's own last COMMIT) so a crash-retry can test
  /// completion and replay or skip the WHOLE bundle exactly once.
  /// BundleBegin reports kUnsupported when the wrapped driver has
  /// pipelining off (PHOENIX_PIPELINE=0) — callers then fall back to
  /// per-statement ExecDirect and reproduce the classic protocol exactly.
  common::Status BundleBegin() override;
  common::Status BundleAdd(const std::string& sql) override;
  common::Result<std::vector<odbc::BundleStatementResult>> BundleFlush()
      override;
  void BundleDiscard() override;

  odbc::StatementAttrs& attrs() override { return attrs_; }
  const common::Status& LastError() const override { return last_error_; }

  /// Which path the last query took (tests/benches).
  bool last_result_was_cached() const {
    return mode_ == ResultMode::kCached;
  }
  /// True when the last query was served from the cross-statement result
  /// cache with zero server round trips.
  bool last_result_was_rcache_hit() const { return rcache_hit_; }
  const std::string& result_table() const { return result_table_; }
  uint64_t delivered_rows() const { return delivered_; }
  /// Bitmap of engine shards the last execute/bundle on this handle touched
  /// (accumulated across the statement's internal round trips); 0 on an
  /// unsharded server. Scoped recovery reinstalls only intersecting
  /// statements.
  uint64_t last_shard_mask() const { return shard_mask_; }

 private:
  friend class PhoenixConnection;

  enum class ResultMode : uint8_t { kNone, kPersisted, kCached,
                                    kPassthrough };

  explicit PhoenixStatement(PhoenixConnection* conn);

  common::Status Record(common::Status status) {
    last_error_ = status;
    return status;
  }

  /// Clears the client-side transaction flag when a statement-level error
  /// occurred inside a transaction (the server rolled it back). Failures
  /// tagged by MarkPrivateFailure are exempt — they happened on the private
  /// connection, so the application's transaction is still open.
  common::Status SyncTxnStateOnError(common::Status st);

  /// Tags a failure that occurred on the private connection (status-table
  /// reads, result-table DDL). Such a failure must NOT be treated as an
  /// abort of the application's transaction, which lives on the app session
  /// and is untouched.
  common::Status MarkPrivateFailure(common::Status st);

  common::Status ExecutePersistedQuery(const std::string& sql);
  common::Status ExecuteCachedQuery(const std::string& sql);

  /// Serves the query from the cross-statement result cache if a valid
  /// entry exists (zero round trips). Returns true on a hit.
  bool TryResultCacheHit(const std::string& sql);
  /// Offers the freshly filled client cache to the cross-statement result
  /// cache (declined unless the server marked the result cacheable).
  void MaybeInsertResultCache(const std::string& sql);
  /// Folds the last app-connection execution's consistency metadata into
  /// the connection's transaction tracking (pinned snapshot, dirty tables).
  void NoteAppExecution();
  common::Status ExecuteModification(const std::string& sql);
  common::Status ExecutePassthrough(const std::string& sql,
                                    bool record_session_context);

  /// Sends `stmts` through the wrapped driver's bundle API as one round
  /// trip (BundleBegin/Add*/Flush on the inner handle).
  common::Result<std::vector<odbc::BundleStatementResult>> RunInnerBundle(
      const std::vector<std::string>& stmts);

  /// Exactly-once skip path: the bundle's completion record was found after
  /// a crash, so the bundle committed. Builds per-statement results without
  /// re-executing anything (query rows are gone with the lost response —
  /// marked result_lost) and closes out the client transaction state the
  /// guarded COMMIT ended.
  common::Result<std::vector<odbc::BundleStatementResult>>
  SynthesizeCommittedBundle(const std::vector<std::string>& stmts,
                            const std::vector<RequestClass>& klass,
                            size_t last_commit, bool wrap);

  /// Recovery phase 2 for this statement: fresh inner handle, verify the
  /// materialized result, reopen, reposition to `delivered_`.
  common::Status Reinstall();

  /// Repositions the (freshly reopened) inner cursor past `delivered_` rows
  /// using the configured strategy.
  common::Status Reposition();

  common::Status DropResultArtifacts();

  PhoenixConnection* conn_;
  odbc::StatementPtr inner_;
  odbc::StatementAttrs attrs_;
  common::Status last_error_;

  ResultMode mode_ = ResultMode::kNone;
  std::string sql_;
  std::string result_table_;
  /// Trace id of the statement currently executing (or last executed) on
  /// this handle; fetches re-enter the same trace so the whole
  /// execute→fetch* lifecycle correlates in the trace-event dump.
  uint64_t trace_id_ = 0;
  uint64_t stmt_seq_ = 0;
  uint64_t delivered_ = 0;
  /// Shards this statement's server-side state (cursor, result table) lives
  /// on, from the wire response's shard-routing group via the inner handle.
  uint64_t shard_mask_ = 0;
  common::Schema schema_;
  int64_t rows_affected_ = -1;
  bool load_complete_ = false;
  // Set when the pending error came from the private connection; consumed
  // (and reset) by SyncTxnStateOnError.
  bool private_failure_ = false;

  // kCached state:
  std::deque<common::Row> cache_;
  bool cache_complete_ = false;
  // Last query was a cross-statement result cache hit.
  bool rcache_hit_ = false;
  // kPassthrough: result lost in a crash (procedure results are delivered
  // pass-through and are not crash-protected in this implementation).
  bool passthrough_lost_ = false;
  // Open statement bundle (BundleBegin..BundleFlush), queued client-side.
  bool bundle_open_ = false;
  std::vector<std::string> bundle_;
};

}  // namespace phoenix::phx

#endif  // PHOENIX_PHOENIX_PHOENIX_DRIVER_H_
