// Tests for the transactional cross-statement client result cache
// (DESIGN.md §16): unit coverage of the cache + invalidation ledger, and
// end-to-end coverage of hit/miss behavior, commit-timestamp invalidation,
// pinned-snapshot consistency inside explicit transactions, crash recovery
// dropping the cache, and safe degradation under legacy locking
// (PHOENIX_MVCC=0).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cache/invalidation.h"
#include "cache/result_cache.h"
#include "engine/database.h"
#include "engine/transaction.h"
#include "test_util.h"

namespace phoenix::phx {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::CrashAndRestartAsync;
using phoenix::testing::ServerHarness;

// ---------------------------------------------------------------------------
// Unit: key normalization and the invalidation ledger
// ---------------------------------------------------------------------------

TEST(NormalizeKeyTest, CollapsesInsignificantWhitespace) {
  EXPECT_EQ(cache::ResultCache::NormalizeKey("SELECT  *   FROM t"),
            "SELECT * FROM t");
  EXPECT_EQ(cache::ResultCache::NormalizeKey("  SELECT *\n\tFROM t  "),
            "SELECT * FROM t");
  // Case is significant (string literals must not be folded together).
  EXPECT_NE(cache::ResultCache::NormalizeKey("SELECT 'A'"),
            cache::ResultCache::NormalizeKey("SELECT 'a'"));
}

TEST(NormalizeKeyTest, PreservesWhitespaceInsideQuotedSpans) {
  // Whitespace inside a string literal is data: 'a  b' and 'a b' are
  // different predicates and must never share a cache key.
  EXPECT_EQ(cache::ResultCache::NormalizeKey(
                "SELECT  *  FROM t  WHERE name = 'a  b'"),
            "SELECT * FROM t WHERE name = 'a  b'");
  EXPECT_NE(cache::ResultCache::NormalizeKey("SELECT 'a  b'"),
            cache::ResultCache::NormalizeKey("SELECT 'a b'"));
  EXPECT_NE(cache::ResultCache::NormalizeKey("SELECT 'a\nb'"),
            cache::ResultCache::NormalizeKey("SELECT 'a b'"));
  // A doubled quote escapes the quote char and keeps the span open — the
  // whitespace after it is still literal data.
  EXPECT_EQ(cache::ResultCache::NormalizeKey("SELECT 'it''s  ok',   1"),
            "SELECT 'it''s  ok', 1");
  // Double-quoted identifiers get the same treatment.
  EXPECT_EQ(cache::ResultCache::NormalizeKey("SELECT \"a  b\"  FROM t"),
            "SELECT \"a  b\" FROM t");
  // Unterminated literal: the remainder is copied verbatim.
  EXPECT_EQ(cache::ResultCache::NormalizeKey("SELECT  'a  "), "SELECT 'a  ");
}

TEST(InvalidationStateTest, AppliesDigestsMonotonically) {
  cache::InvalidationState ledger;
  EXPECT_EQ(ledger.clock(), 0u);
  EXPECT_EQ(ledger.ChangeTs("t"), 0u);

  cache::ResponseConsistency first;
  first.stable_ts = 10;
  first.invalidated = {{"t", 7}, {"u", 9}};
  ledger.Apply(first);
  EXPECT_EQ(ledger.clock(), 10u);
  EXPECT_EQ(ledger.ChangeTs("t"), 7u);
  EXPECT_EQ(ledger.MaxChangeTs({"t", "u"}), 9u);

  // A late (out-of-order) digest can only re-assert known state: neither the
  // clock nor the change timestamps move backwards.
  cache::ResponseConsistency stale;
  stale.stable_ts = 5;
  stale.invalidated = {{"t", 3}};
  ledger.Apply(stale);
  EXPECT_EQ(ledger.clock(), 10u);
  EXPECT_EQ(ledger.ChangeTs("t"), 7u);
}

TEST(InvalidationStateTest, ViewReadsClockAndChangesAtomically) {
  cache::InvalidationState ledger;
  cache::ResponseConsistency digest;
  digest.stable_ts = 30;
  digest.invalidated = {{"t", 25}, {"u", 12}};
  ledger.Apply(digest);

  // View() returns the pair under one lock acquisition — this is what the
  // cross-snapshot validity rule must use (clock and change timestamps read
  // separately can straddle a concurrently applied digest).
  cache::InvalidationState::ReadView view = ledger.View({"t", "u"});
  EXPECT_EQ(view.clock, 30u);
  EXPECT_EQ(view.max_change_ts, 25u);
  EXPECT_EQ(ledger.View({}).max_change_ts, 0u);
  EXPECT_EQ(ledger.View({"unknown"}).clock, 30u);
}

// ---------------------------------------------------------------------------
// Unit: cache validity rules and LRU accounting
// ---------------------------------------------------------------------------

cache::CachedResult MakeResult(uint64_t fill_ts,
                               std::vector<std::string> reads) {
  cache::CachedResult r;
  r.rows = {{Value::Int(1)}, {Value::Int(2)}};
  r.fill_ts = fill_ts;
  r.read_tables = std::move(reads);
  return r;
}

TEST(ResultCacheTest, AutocommitHitAndInvalidation) {
  cache::ResultCache rc(64 * 1024);
  cache::InvalidationState ledger;
  cache::ResponseConsistency seed;
  seed.stable_ts = 10;
  ledger.Apply(seed);

  rc.Insert("SELECT * FROM t", MakeResult(10, {"t"}));
  EXPECT_EQ(rc.entries(), 1u);

  cache::TxnView autocommit;
  EXPECT_NE(rc.Lookup("SELECT * FROM t", ledger, autocommit), nullptr);
  EXPECT_EQ(rc.stats().hits.load(), 1u);

  // A commit to t at ts 12 invalidates the entry permanently: it is dropped
  // on the next lookup, not merely skipped.
  cache::ResponseConsistency change;
  change.stable_ts = 12;
  change.invalidated = {{"t", 12}};
  ledger.Apply(change);
  EXPECT_EQ(rc.Lookup("SELECT * FROM t", ledger, autocommit), nullptr);
  EXPECT_EQ(rc.stats().invalidations.load(), 1u);
  EXPECT_EQ(rc.entries(), 0u);
  EXPECT_EQ(rc.bytes(), 0u);
}

TEST(ResultCacheTest, TxnRulesPinnedSnapshot) {
  cache::ResultCache rc(64 * 1024);
  cache::InvalidationState ledger;
  cache::ResponseConsistency seed;
  seed.stable_ts = 20;
  ledger.Apply(seed);

  rc.Insert("q", MakeResult(15, {"t"}));

  // Unknown snapshot: always a miss, but the entry is kept.
  cache::TxnView unknown;
  unknown.in_txn = true;
  EXPECT_EQ(rc.Lookup("q", ledger, unknown), nullptr);
  EXPECT_EQ(rc.entries(), 1u);

  // Exact pinned-snapshot match survives even a later change to the read
  // table — commits after S are invisible to the pinned snapshot.
  cache::ResponseConsistency change;
  change.stable_ts = 25;
  change.invalidated = {{"t", 23}};
  ledger.Apply(change);
  cache::TxnView pinned;
  pinned.in_txn = true;
  pinned.snapshot_known = true;
  pinned.snapshot_ts = 15;
  EXPECT_NE(rc.Lookup("q", ledger, pinned), nullptr);

  // A different pinned snapshot with a change past the fill: dead forever.
  pinned.snapshot_ts = 24;
  EXPECT_EQ(rc.Lookup("q", ledger, pinned), nullptr);
  EXPECT_EQ(rc.entries(), 0u);

  // Cross-snapshot reuse IS allowed when the interval is provably quiet:
  // fill at 21 (after t's change at 23? no — use a clean table u).
  rc.Insert("q2", MakeResult(21, {"u"}));
  cache::TxnView later;
  later.in_txn = true;
  later.snapshot_known = true;
  later.snapshot_ts = 24;  // clock 25 >= 24, change(u)=0 <= 21
  EXPECT_NE(rc.Lookup("q2", ledger, later), nullptr);
}

TEST(ResultCacheTest, DirtyTableSuppressesHitButKeepsEntry) {
  cache::ResultCache rc(64 * 1024);
  cache::InvalidationState ledger;
  cache::ResponseConsistency seed;
  seed.stable_ts = 10;
  ledger.Apply(seed);
  rc.Insert("q", MakeResult(10, {"t"}));

  std::set<std::string> dirty = {"t"};
  cache::TxnView txn;
  txn.in_txn = true;
  txn.snapshot_known = true;
  txn.snapshot_ts = 10;
  txn.dirty_tables = &dirty;
  EXPECT_EQ(rc.Lookup("q", ledger, txn), nullptr);
  EXPECT_EQ(rc.entries(), 1u);  // kept: valid again after ROLLBACK

  txn.dirty_tables = nullptr;
  EXPECT_NE(rc.Lookup("q", ledger, txn), nullptr);
}

TEST(ResultCacheTest, LruEvictionByBytes) {
  cache::ResultCache rc(1024);
  cache::InvalidationState ledger;
  cache::TxnView autocommit;

  // Each entry carries ~50 integer rows — big enough that only two fit.
  auto make_fat = [](uint64_t fill_ts) {
    cache::CachedResult r = MakeResult(fill_ts, {"t"});
    for (int i = 0; i < 50; ++i) r.rows.push_back({Value::Int(i)});
    return r;
  };

  // An entry alone exceeding the budget is refused outright.
  cache::CachedResult huge = MakeResult(1, {"t"});
  for (int i = 0; i < 2000; ++i) huge.rows.push_back({Value::Int(i)});
  rc.Insert("huge", std::move(huge));
  EXPECT_EQ(rc.entries(), 0u);

  rc.Insert("a", make_fat(1));
  rc.Insert("b", make_fat(1));
  EXPECT_GT(rc.entries(), 0u);
  // Touch "a" so it is MRU when pressure arrives.
  rc.Lookup("a", ledger, autocommit);
  rc.Insert("c", make_fat(1));
  rc.Insert("d", make_fat(1));
  EXPECT_LE(rc.bytes(), 1024u);
  EXPECT_GT(rc.stats().evictions.load(), 0u);
  // "b" aged out before "a" did (strict LRU from the tail).
  uint64_t misses = rc.stats().misses.load();
  rc.Lookup("b", ledger, autocommit);
  EXPECT_EQ(rc.stats().misses.load(), misses + 1);
}

// ---------------------------------------------------------------------------
// End-to-end through the Phoenix driver
// ---------------------------------------------------------------------------

class PhoenixResultCacheTest : public ::testing::Test {
 protected:
  // These tests exercise MVCC-gated cache behavior (hits need snapshot
  // timestamps), so the harness pins MVCC on regardless of a PHOENIX_MVCC
  // env override; LegacyLockingDisablesCacheSafely pins it off the same
  // way to test the degradation path.
  static engine::ServerOptions MvccOptions() {
    engine::ServerOptions options;
    options.db.mvcc = 1;
    return options;
  }

  PhoenixResultCacheTest() : h_(MvccOptions()) {}

  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE hot (id INTEGER PRIMARY KEY, v VARCHAR)"));
    PHX_ASSERT_OK(h_.Exec(
        "INSERT INTO hot VALUES (1,'one'),(2,'two'),(3,'three')"));
  }

  odbc::ConnectionPtr Connect(const std::string& extra = "") {
    auto conn = h_.ConnectPhoenix(
        "PHOENIX_RESULT_CACHE=262144;PHOENIX_RETRY_MS=10" +
        (extra.empty() ? "" : ";" + extra));
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return conn.ok() ? std::move(conn).value() : nullptr;
  }

  ServerHarness h_;
};

TEST_F(PhoenixResultCacheTest, RepeatQueryHitsAcrossStatements) {
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  ASSERT_NE(pc->result_cache(), nullptr);

  const std::string q = "SELECT v FROM hot ORDER BY id";
  PHX_ASSERT_OK_AND_ASSIGN(auto s1, conn->CreateStatement());
  PHX_ASSERT_OK(s1->ExecDirect(q));
  EXPECT_FALSE(static_cast<PhoenixStatement*>(s1.get())
                   ->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> first, s1->FetchBlock(100));
  ASSERT_EQ(first.size(), 3u);

  // A different statement handle, same SQL modulo whitespace: served from
  // the cross-statement cache with zero server round trips.
  PHX_ASSERT_OK_AND_ASSIGN(auto s2, conn->CreateStatement());
  PHX_ASSERT_OK(s2->ExecDirect("SELECT  v  FROM hot ORDER BY id"));
  EXPECT_TRUE(static_cast<PhoenixStatement*>(s2.get())
                  ->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> second, s2->FetchBlock(100));
  ASSERT_EQ(second.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(second[i][0].AsString(), first[i][0].AsString());
  }
  EXPECT_EQ(pc->result_cache()->stats().hits.load(), 1u);
}

TEST_F(PhoenixResultCacheTest, OwnUpdateInvalidates) {
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  const std::string q = "SELECT v FROM hot WHERE id = 1";
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "one");

  // The update's own response carries the invalidation digest, so the very
  // next lookup already knows the entry is stale.
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE hot SET v = 'uno' WHERE id = 1"));
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_FALSE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "uno");
  EXPECT_GE(pc->result_cache()->stats().invalidations.load(), 1u);
}

TEST_F(PhoenixResultCacheTest, ExternalWriterInvalidatesOnceObserved) {
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  const std::string q = "SELECT v FROM hot WHERE id = 2";
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  EXPECT_EQ(rows[0][0].AsString(), "two");

  // Another session commits a change to hot.
  PHX_ASSERT_OK(h_.Exec("UPDATE hot SET v = 'dos' WHERE id = 2"));

  // Any subsequent round trip teaches this connection about the commit via
  // the piggybacked digest; here an unrelated statement does it.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM hot"));
  stmt->CloseCursor().ok();

  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_FALSE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "dos");
}

TEST_F(PhoenixResultCacheTest, TxnHitMatchesPinnedSnapshotExactly) {
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  const std::string q = "SELECT v FROM hot WHERE id = 3";
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  // First read inside the txn pins (and reveals) the snapshot and fills the
  // cache at exactly that snapshot.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  EXPECT_EQ(rows[0][0].AsString(), "three");

  // A writer commits mid-transaction...
  PHX_ASSERT_OK(h_.Exec("UPDATE hot SET v = 'tres' WHERE id = 3"));
  // ...and this connection observes the digest on an unrelated round trip.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM hot"));
  stmt->CloseCursor().ok();

  // The repeat inside the txn still hits: the entry matches the pinned
  // snapshot exactly, and the mid-txn commit is invisible to it — precisely
  // what re-execution under MVCC would return.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_TRUE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "three");

  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  // Outside the transaction the entry is stale (the table changed past its
  // fill snapshot): re-execute and observe the new value.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_FALSE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "tres");
}

TEST_F(PhoenixResultCacheTest, TxnReadYourWritesNeverServedFromCache) {
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  const std::string q = "SELECT v FROM hot WHERE id = 1";
  // Autocommit fill.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  EXPECT_EQ(rows[0][0].AsString(), "one");

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE hot SET v = 'mine' WHERE id = 1"));
  // hot is dirty in this txn: the pre-write cache entry must not shadow the
  // txn's own write.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_FALSE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "mine");
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));

  // After ROLLBACK nothing committed: the original entry is valid again and
  // shows the pre-transaction value.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_TRUE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "one");
}

TEST_F(PhoenixResultCacheTest, CrashDropsCacheAndRetryReexecutes) {
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  const std::string q = "SELECT v FROM hot ORDER BY id";
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(pc->result_cache()->entries(), 1u);

  std::thread restarter = CrashAndRestartAsync(h_.server(), 100);
  // Force crash detection: the ping fails at the connection level, Phoenix
  // recovers the virtual session, and recovery drops the result cache.
  PHX_ASSERT_OK(conn->Ping());
  restarter.join();
  EXPECT_GE(pc->recovery_count(), 1u);
  EXPECT_EQ(pc->result_cache()->entries(), 0u);

  // The retried statement re-executes against the recovered server rather
  // than serving any pre-crash entry.
  PHX_ASSERT_OK(stmt->ExecDirect(q));
  EXPECT_FALSE(
      static_cast<PhoenixStatement*>(stmt.get())->last_result_was_rcache_hit());
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsString(), "one");
}

TEST_F(PhoenixResultCacheTest, LegacyLockingDisablesCacheSafely) {
  // PHOENIX_MVCC=0: no snapshot timestamps exist, so the server marks
  // nothing cacheable and the client cache never fills or hits — results
  // stay correct, just uncached.
  engine::ServerOptions options;
  options.db.mvcc = 0;
  ServerHarness legacy(options);
  PHX_ASSERT_OK(legacy.Exec(
      "CREATE TABLE hot (id INTEGER PRIMARY KEY, v VARCHAR)"));
  PHX_ASSERT_OK(legacy.Exec("INSERT INTO hot VALUES (1,'one')"));

  auto conn = legacy.ConnectPhoenix(
      "PHOENIX_RESULT_CACHE=262144;PHOENIX_RETRY_MS=10");
  PHX_ASSERT_OK(conn.status());
  auto* pc = static_cast<PhoenixConnection*>(conn.value().get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());

  const std::string q = "SELECT v FROM hot WHERE id = 1";
  for (int i = 0; i < 2; ++i) {
    PHX_ASSERT_OK(stmt->ExecDirect(q));
    EXPECT_FALSE(static_cast<PhoenixStatement*>(stmt.get())
                     ->last_result_was_rcache_hit());
    PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0].AsString(), "one");
  }
  EXPECT_EQ(pc->result_cache()->stats().hits.load(), 0u);
  EXPECT_EQ(pc->result_cache()->stats().insertions.load(), 0u);
}

TEST(PhoenixConfigTest, NegativeCacheBudgetsClampToDisabled) {
  // A negative (or wrapped) budget must mean "disabled", not a size_t
  // wrap-around that defeats LRU eviction and the overflow-drain bound.
  PHX_ASSERT_OK_AND_ASSIGN(
      odbc::ConnectionString cs,
      odbc::ConnectionString::Parse(
          "DRIVER=phoenix;PHOENIX_CACHE=-1;PHOENIX_RESULT_CACHE=-5"));
  PhoenixConfig out = PhoenixConfig().WithOverrides(cs);
  EXPECT_EQ(out.cache_bytes, 0u);
  EXPECT_EQ(out.result_cache_bytes, 0u);
}

TEST_F(PhoenixResultCacheTest, ArtifactTablesStayOutOfInvalidationPlane) {
  // Force the persisted path (both caches off): every query mints a uniquely
  // named phoenix_rs_* table whose CREATE/INSERT/DROP must NOT land in the
  // per-table version map — otherwise the map, and the full-history digest
  // every fresh connection receives, grow without bound over server
  // lifetime.
  auto conn = h_.ConnectPhoenix(
      "PHOENIX_CACHE=0;PHOENIX_RESULT_CACHE=0;PHOENIX_RETRY_MS=10");
  PHX_ASSERT_OK(conn.status());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  for (int i = 0; i < 3; ++i) {
    PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM hot ORDER BY id"));
    PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
    ASSERT_EQ(rows.size(), 3u);
    PHX_ASSERT_OK(stmt->CloseCursor());
  }

  engine::InvalidationDigest digest =
      h_.server()->database()->CollectInvalidation(0);
  bool saw_hot = false;
  for (const auto& [table, cts] : digest.changed) {
    EXPECT_FALSE(engine::IsPhoenixArtifactTable(table)) << table;
    if (table == "hot") saw_hot = true;
  }
  // Real application tables still feed the digest.
  EXPECT_TRUE(saw_hot);
}

TEST_F(PhoenixResultCacheTest, TempTableReadsNeverCached) {
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("CREATE TEMP TABLE scratch (x INTEGER)"));
  PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO scratch VALUES (42)"));

  uint64_t before = pc->result_cache()->stats().insertions.load();
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT x FROM scratch"));
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(pc->result_cache()->stats().insertions.load(), before);
}

}  // namespace
}  // namespace phoenix::phx
