// Frame-parser hardening: a peer (or a fault injector) handing the decoders
// truncated, oversized, or corrupted bytes must get a clean error back —
// never a crash, a giant allocation, or undefined behavior. Run under ASan
// in CI (scripts/ci.sh).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/schema.h"
#include "common/value.h"
#include "engine/wal.h"
#include "test_util.h"
#include "wire/messages.h"

namespace phoenix::wire {
namespace {

using common::Row;
using common::Schema;
using common::Value;
using common::ValueType;

Request SampleRequest() {
  Request r;
  r.type = RequestType::kExecute;
  r.session = 42;
  r.sql = "SELECT * FROM t WHERE id = 7";
  r.trace_id = 1;
  r.span_id = 2;
  r.first_batch = 64;
  return r;
}

Response SampleResponse() {
  Response r;
  r.is_query = true;
  r.cursor = 9;
  r.schema.AddColumn({"id", ValueType::kInt});
  r.schema.AddColumn({"name", ValueType::kString});
  r.rows.push_back({Value::Int(1), Value::String("alpha")});
  r.rows.push_back({Value::Int(2), Value::String("beta")});
  r.done = true;
  return r;
}

// ---------------------------------------------------------------------------
// Frame envelope (header + CRC)
// ---------------------------------------------------------------------------

TEST(FrameCodecTest, RoundTrip) {
  std::vector<uint8_t> payload = SampleRequest().Serialize();
  uint8_t header_bytes[kFrameHeaderBytes];
  EncodeFrameHeader(payload.data(), payload.size(), header_bytes);

  auto header = DecodeFrameHeader(header_bytes, kFrameHeaderBytes);
  PHX_ASSERT_OK(header.status());
  EXPECT_EQ(header.value().payload_bytes, payload.size());
  PHX_EXPECT_OK(VerifyFramePayload(header.value(), payload.data()));
}

TEST(FrameCodecTest, TruncatedHeaderRejected) {
  std::vector<uint8_t> payload = {1, 2, 3};
  uint8_t header_bytes[kFrameHeaderBytes];
  EncodeFrameHeader(payload.data(), payload.size(), header_bytes);
  for (size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_FALSE(DecodeFrameHeader(header_bytes, n).ok())
        << "short header of " << n << " bytes must be rejected";
  }
}

TEST(FrameCodecTest, OversizedLengthRejected) {
  // A garbage length field must not drive the receiver into allocating or
  // waiting for gigabytes.
  uint8_t header_bytes[kFrameHeaderBytes];
  uint32_t huge = kMaxFramePayloadBytes + 1;
  std::memcpy(header_bytes, &huge, 4);
  std::memset(header_bytes + 4, 0, 4);
  EXPECT_FALSE(DecodeFrameHeader(header_bytes, kFrameHeaderBytes).ok());

  uint32_t all_ones = 0xffffffffu;
  std::memcpy(header_bytes, &all_ones, 4);
  EXPECT_FALSE(DecodeFrameHeader(header_bytes, kFrameHeaderBytes).ok());
}

TEST(FrameCodecTest, GarbageCrcRejected) {
  std::vector<uint8_t> payload = SampleResponse().Serialize();
  uint8_t header_bytes[kFrameHeaderBytes];
  EncodeFrameHeader(payload.data(), payload.size(), header_bytes);
  auto header = DecodeFrameHeader(header_bytes, kFrameHeaderBytes);
  PHX_ASSERT_OK(header.status());

  // Every single-byte flip anywhere in the payload must be caught.
  for (size_t i = 0; i < payload.size(); i += 7) {
    payload[i] ^= 0xff;
    EXPECT_FALSE(VerifyFramePayload(header.value(), payload.data()).ok())
        << "flip at byte " << i << " went undetected";
    payload[i] ^= 0xff;
  }
  // And a flipped CRC itself must reject an intact payload.
  FrameHeader bad = header.value();
  bad.crc ^= 1;
  EXPECT_FALSE(VerifyFramePayload(bad, payload.data()).ok());
}

// ---------------------------------------------------------------------------
// Message decoders fed hostile bytes
// ---------------------------------------------------------------------------

TEST(MessageHardeningTest, TruncatedRequestAtEveryLength) {
  std::vector<uint8_t> bytes = SampleRequest().Serialize();
  auto full = Request::Deserialize(bytes.data(), bytes.size());
  PHX_ASSERT_OK(full.status());
  EXPECT_EQ(full.value().sql, SampleRequest().sql);
  for (size_t n = 0; n < bytes.size(); ++n) {
    // Either a clean error or a well-formed shorter message (optional
    // trailing fields are tolerated by design) — never a crash.
    Request::Deserialize(bytes.data(), n).ok();
  }
  EXPECT_FALSE(Request::Deserialize(nullptr, 0).ok());
}

TEST(MessageHardeningTest, TruncatedResponseAtEveryLength) {
  std::vector<uint8_t> bytes = SampleResponse().Serialize();
  auto full = Response::Deserialize(bytes.data(), bytes.size());
  PHX_ASSERT_OK(full.status());
  ASSERT_EQ(full.value().rows.size(), 2u);
  for (size_t n = 0; n < bytes.size(); ++n) {
    Response::Deserialize(bytes.data(), n).ok();
  }
}

TEST(MessageHardeningTest, HugeRowCountRejectedBeforeAllocation) {
  // Craft a response whose row count claims ~1 billion rows in a tiny
  // payload. The decoder must bound the count by the remaining bytes instead
  // of reserving for it.
  Response small = SampleResponse();
  small.rows.clear();
  std::vector<uint8_t> bytes = small.Serialize();
  // The row-count varint/u32 sits near the tail; rather than reverse the
  // layout, scan for a position whose mutation to 0x3fffffff makes decoding
  // fail cleanly. Whatever byte we clobber, the decoder must not crash.
  for (size_t i = 0; i + 4 <= bytes.size(); ++i) {
    std::vector<uint8_t> mutated = bytes;
    uint32_t huge = 0x3fffffffu;
    std::memcpy(mutated.data() + i, &huge, 4);
    Response::Deserialize(mutated.data(), mutated.size()).ok();
  }
}

TEST(MessageHardeningTest, RandomBytesNeverCrashDecoders) {
  common::Rng rng(20260806);
  for (int round = 0; round < 512; ++round) {
    size_t len = static_cast<size_t>(rng.Uniform(0, 256));
    std::vector<uint8_t> junk(len);
    for (uint8_t& b : junk) {
      b = static_cast<uint8_t>(rng.Uniform(0, 255));
    }
    Request::Deserialize(junk.data(), junk.size()).ok();
    Response::Deserialize(junk.data(), junk.size()).ok();
    engine::WalRecord::Deserialize(junk.data(), junk.size()).ok();
  }
}

TEST(MessageHardeningTest, MutatedRealFramesNeverCrashDecoders) {
  // Structure-aware fuzzing: start from valid bytes and mutate, which reaches
  // far deeper into the decoders than pure random bytes.
  common::Rng rng(7);
  std::vector<std::vector<uint8_t>> seeds = {SampleRequest().Serialize(),
                                             SampleResponse().Serialize()};
  engine::WalRecord wal_rec;
  wal_rec.type = engine::WalRecordType::kBulkInsert;
  wal_rec.txn = 3;
  wal_rec.table_name = "t";
  wal_rec.rows = {{Value::Int(1)}, {Value::Int(2)}};
  seeds.push_back(wal_rec.Serialize());

  for (const std::vector<uint8_t>& seed : seeds) {
    for (int round = 0; round < 512; ++round) {
      std::vector<uint8_t> mutated = seed;
      int flips = static_cast<int>(rng.Uniform(1, 4));
      for (int f = 0; f < flips; ++f) {
        size_t pos = static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[pos] = static_cast<uint8_t>(rng.Uniform(0, 255));
      }
      Request::Deserialize(mutated.data(), mutated.size()).ok();
      Response::Deserialize(mutated.data(), mutated.size()).ok();
      engine::WalRecord::Deserialize(mutated.data(), mutated.size()).ok();
    }
  }
}

TEST(MessageHardeningTest, BulkInsertRowCountBoundedByPayload) {
  engine::WalRecord rec;
  rec.type = engine::WalRecordType::kBulkInsert;
  rec.txn = 1;
  rec.table_name = "t";
  rec.rows = {{Value::Int(1)}};
  std::vector<uint8_t> bytes = rec.Serialize();
  // Same clobber sweep as the response test: inflate any aligned u32 and the
  // decoder must fail cleanly rather than reserve gigabytes.
  for (size_t i = 0; i + 4 <= bytes.size(); ++i) {
    std::vector<uint8_t> mutated = bytes;
    uint32_t huge = 0x7fffffffu;
    std::memcpy(mutated.data() + i, &huge, 4);
    engine::WalRecord::Deserialize(mutated.data(), mutated.size()).ok();
  }
}

}  // namespace
}  // namespace phoenix::wire
