#include <gtest/gtest.h>

#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Value;
using common::ValueType;
using phoenix::testing::ServerHarness;

/// Query semantics through the full engine stack (parser → planner →
/// executor → session), using a zero-latency harness.
class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE nums (id INTEGER PRIMARY KEY, grp VARCHAR, "
        "x INTEGER, y DOUBLE, d DATE, note VARCHAR)"));
    PHX_ASSERT_OK(h_.Exec(
        "INSERT INTO nums VALUES "
        "(1, 'a', 10, 1.5, DATE '1995-01-01', 'alpha'), "
        "(2, 'a', 20, 2.5, DATE '1995-06-01', 'beta'), "
        "(3, 'b', 30, 3.5, DATE '1996-01-01', 'gamma'), "
        "(4, 'b', 40, 4.5, DATE '1996-06-01', NULL), "
        "(5, 'c', 50, 5.5, DATE '1997-01-01', 'delta')"));
  }

  std::vector<Row> Q(const std::string& sql) {
    auto rows = h_.QueryAll(sql);
    EXPECT_TRUE(rows.ok()) << sql << " -> " << rows.status().ToString();
    return rows.ok() ? std::move(rows).value() : std::vector<Row>{};
  }

  ServerHarness h_;
};

TEST_F(QueryTest, SelectStarPreservesColumnOrder) {
  auto rows = Q("SELECT * FROM nums WHERE id = 1");
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 6u);
  EXPECT_EQ(rows[0][1].AsString(), "a");
}

TEST_F(QueryTest, Projection) {
  auto rows = Q("SELECT x + 1, y * 2 FROM nums WHERE id = 2");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 21);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 5.0);
}

TEST_F(QueryTest, IntegerDivisionYieldsDouble) {
  auto rows = Q("SELECT 7 / 2");
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 3.5);
}

TEST_F(QueryTest, DivisionByZeroIsNull) {
  auto rows = Q("SELECT x / 0 FROM nums WHERE id = 1");
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST_F(QueryTest, ModuloAndConcat) {
  auto rows = Q("SELECT 7 % 3, 'a' || 'b'");
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[0][1].AsString(), "ab");
}

TEST_F(QueryTest, DateArithmetic) {
  auto rows = Q(
      "SELECT d + 30, d - DATE '1995-01-01' FROM nums WHERE id = 1");
  EXPECT_EQ(rows[0][0].type(), ValueType::kDate);
  EXPECT_EQ(rows[0][1].AsInt(), 0);
}

TEST_F(QueryTest, WhereComparisons) {
  EXPECT_EQ(Q("SELECT id FROM nums WHERE x > 25").size(), 3u);
  EXPECT_EQ(Q("SELECT id FROM nums WHERE x >= 30 AND x <= 40").size(), 2u);
  EXPECT_EQ(Q("SELECT id FROM nums WHERE grp <> 'a'").size(), 3u);
  EXPECT_EQ(Q("SELECT id FROM nums WHERE x BETWEEN 20 AND 40").size(), 3u);
}

TEST_F(QueryTest, NullComparisonsExcludeRows) {
  // note = NULL never matches; IS NULL does.
  EXPECT_EQ(Q("SELECT id FROM nums WHERE note = NULL").size(), 0u);
  auto rows = Q("SELECT id FROM nums WHERE note IS NULL");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 4);
  EXPECT_EQ(Q("SELECT id FROM nums WHERE note IS NOT NULL").size(), 4u);
}

TEST_F(QueryTest, NotInWithNullColumnSemantics) {
  // Row with NULL note is excluded by both IN and NOT IN over note.
  EXPECT_EQ(Q("SELECT id FROM nums WHERE note IN ('alpha', 'beta')").size(),
            2u);
  EXPECT_EQ(
      Q("SELECT id FROM nums WHERE note NOT IN ('alpha', 'beta')").size(),
      2u);  // gamma, delta; NULL row excluded
}

TEST_F(QueryTest, Like) {
  EXPECT_EQ(Q("SELECT id FROM nums WHERE note LIKE '%eta'").size(), 1u);
  EXPECT_EQ(Q("SELECT id FROM nums WHERE note LIKE '_e%'").size(), 2u);
  EXPECT_EQ(Q("SELECT id FROM nums WHERE note NOT LIKE 'a%'").size(), 3u);
}

TEST_F(QueryTest, CaseWhen) {
  auto rows = Q(
      "SELECT CASE WHEN x < 25 THEN 'small' WHEN x < 45 THEN 'mid' "
      "ELSE 'big' END FROM nums ORDER BY id");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0].AsString(), "small");
  EXPECT_EQ(rows[2][0].AsString(), "mid");
  EXPECT_EQ(rows[4][0].AsString(), "big");
}

TEST_F(QueryTest, ScalarFunctions) {
  auto rows = Q(
      "SELECT ABS(-5), ROUND(2.567, 1), UPPER('ab'), LOWER('AB'), "
      "LENGTH('abcd'), SUBSTRING('hello', 2, 3), YEAR(DATE '1997-03-01'), "
      "MONTH(DATE '1997-03-01'), DAY(DATE '1997-03-09'), "
      "COALESCE(NULL, 7)");
  const Row& r = rows[0];
  EXPECT_EQ(r[0].AsInt(), 5);
  EXPECT_DOUBLE_EQ(r[1].AsDouble(), 2.6);
  EXPECT_EQ(r[2].AsString(), "AB");
  EXPECT_EQ(r[3].AsString(), "ab");
  EXPECT_EQ(r[4].AsInt(), 4);
  EXPECT_EQ(r[5].AsString(), "ell");
  EXPECT_EQ(r[6].AsInt(), 1997);
  EXPECT_EQ(r[7].AsInt(), 3);
  EXPECT_EQ(r[8].AsInt(), 9);
  EXPECT_EQ(r[9].AsInt(), 7);
}

TEST_F(QueryTest, UnknownFunctionRejected) {
  EXPECT_FALSE(h_.QueryAll("SELECT FROBNICATE(x) FROM nums").ok());
}

TEST_F(QueryTest, UnknownColumnRejected) {
  auto r = h_.QueryAll("SELECT nope FROM nums");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nope"), std::string::npos);
}

TEST_F(QueryTest, OrderByColumnAndAliasAndOrdinal) {
  auto by_col = Q("SELECT id FROM nums ORDER BY x DESC");
  EXPECT_EQ(by_col[0][0].AsInt(), 5);
  auto by_alias = Q("SELECT id, x * -1 AS nx FROM nums ORDER BY nx");
  EXPECT_EQ(by_alias[0][0].AsInt(), 5);
  auto by_ordinal = Q("SELECT grp, x FROM nums ORDER BY 2 DESC");
  EXPECT_EQ(by_ordinal[0][1].AsInt(), 50);
}

TEST_F(QueryTest, OrderByMultipleKeys) {
  auto rows = Q("SELECT grp, id FROM nums ORDER BY grp DESC, id ASC");
  EXPECT_EQ(rows[0][0].AsString(), "c");
  EXPECT_EQ(rows[1][1].AsInt(), 3);
  EXPECT_EQ(rows[2][1].AsInt(), 4);
}

TEST_F(QueryTest, TopN) {
  EXPECT_EQ(Q("SELECT TOP 2 id FROM nums ORDER BY id").size(), 2u);
  EXPECT_EQ(Q("SELECT TOP 0 id FROM nums").size(), 0u);
  EXPECT_EQ(Q("SELECT TOP 99 id FROM nums").size(), 5u);
}

TEST_F(QueryTest, Distinct) {
  EXPECT_EQ(Q("SELECT DISTINCT grp FROM nums").size(), 3u);
}

TEST_F(QueryTest, AggregatesWithoutGroupBy) {
  auto rows = Q(
      "SELECT COUNT(*), COUNT(note), SUM(x), AVG(y), MIN(x), MAX(x) "
      "FROM nums");
  const Row& r = rows[0];
  EXPECT_EQ(r[0].AsInt(), 5);
  EXPECT_EQ(r[1].AsInt(), 4);  // COUNT skips NULL
  EXPECT_EQ(r[2].AsInt(), 150);
  EXPECT_DOUBLE_EQ(r[3].AsDouble(), 3.5);
  EXPECT_EQ(r[4].AsInt(), 10);
  EXPECT_EQ(r[5].AsInt(), 50);
}

TEST_F(QueryTest, ScalarAggregateOverEmptyInput) {
  auto rows = Q("SELECT COUNT(*), SUM(x), MIN(x) FROM nums WHERE x > 999");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[0][2].is_null());
}

TEST_F(QueryTest, GroupByWithHaving) {
  auto rows = Q(
      "SELECT grp, SUM(x) AS total FROM nums GROUP BY grp "
      "HAVING SUM(x) > 30 ORDER BY total DESC");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "b");
  EXPECT_EQ(rows[0][1].AsInt(), 70);
  EXPECT_EQ(rows[1][0].AsString(), "c");
}

TEST_F(QueryTest, GroupByEmptyInputYieldsNoGroups) {
  EXPECT_EQ(Q("SELECT grp, COUNT(*) FROM nums WHERE x > 999 GROUP BY grp")
                .size(),
            0u);
}

TEST_F(QueryTest, ExpressionOverAggregates) {
  auto rows = Q("SELECT SUM(x) * 1.0 / COUNT(*) FROM nums");
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 30.0);
}

TEST_F(QueryTest, CountDistinct) {
  auto rows = Q("SELECT COUNT(DISTINCT grp) FROM nums");
  EXPECT_EQ(rows[0][0].AsInt(), 3);
}

TEST_F(QueryTest, GroupByExpression) {
  auto rows = Q(
      "SELECT YEAR(d), COUNT(*) FROM nums GROUP BY YEAR(d) ORDER BY 1");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 1995);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
}

TEST_F(QueryTest, UngroupedColumnRejected) {
  EXPECT_FALSE(h_.QueryAll("SELECT grp, x FROM nums GROUP BY grp").ok());
}

TEST_F(QueryTest, ScalarSubquery) {
  auto rows = Q("SELECT id FROM nums WHERE y > (SELECT AVG(y) FROM nums)");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(QueryTest, InSubquery) {
  auto rows = Q(
      "SELECT id FROM nums WHERE grp IN "
      "(SELECT grp FROM nums WHERE x >= 40)");
  EXPECT_EQ(rows.size(), 3u);  // groups b and c
}

TEST_F(QueryTest, DerivedTable) {
  auto rows = Q(
      "SELECT big_id FROM (SELECT id AS big_id FROM nums WHERE x > 25) "
      "sub ORDER BY big_id");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 3);
}

TEST_F(QueryTest, ConstantFalseWhereIsEmptyWithSchema) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect(
      "SELECT * FROM (SELECT grp, SUM(x) AS s FROM nums GROUP BY grp) p "
      "WHERE 0=1"));
  EXPECT_EQ(stmt->ResultSchema().num_columns(), 2u);
  EXPECT_EQ(stmt->ResultSchema().column(0).name, "grp");
  EXPECT_EQ(stmt->ResultSchema().column(1).name, "s");
  common::Row row;
  auto more = stmt->Fetch(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST_F(QueryTest, SelectWithoutFrom) {
  auto rows = Q("SELECT 1 + 1, 'x'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);
}

// --- Joins ------------------------------------------------------------------

class JoinTest : public QueryTest {
 protected:
  void SetUp() override {
    QueryTest::SetUp();
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE grps (g VARCHAR, label VARCHAR)"));
    PHX_ASSERT_OK(h_.Exec(
        "INSERT INTO grps VALUES ('a', 'first'), ('b', 'second')"));
  }
};

TEST_F(JoinTest, HashJoinViaWhere) {
  auto rows = Q(
      "SELECT id, label FROM nums, grps WHERE grp = g ORDER BY id");
  ASSERT_EQ(rows.size(), 4u);  // group c unmatched
  EXPECT_EQ(rows[0][1].AsString(), "first");
  EXPECT_EQ(rows[3][1].AsString(), "second");
}

TEST_F(JoinTest, ExplicitJoinSyntax) {
  auto rows = Q(
      "SELECT id FROM nums JOIN grps ON nums.grp = grps.g ORDER BY id");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(JoinTest, CrossJoinCardinality) {
  EXPECT_EQ(Q("SELECT 1 FROM nums, grps").size(), 10u);
}

TEST_F(JoinTest, SelfJoinWithAliases) {
  auto rows = Q(
      "SELECT a.id, b.id FROM nums a, nums b "
      "WHERE a.grp = b.grp AND a.id < b.id ORDER BY a.id");
  ASSERT_EQ(rows.size(), 2u);  // (1,2) and (3,4)
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
}

TEST_F(JoinTest, JoinWithResidualPredicate) {
  auto rows = Q(
      "SELECT id FROM nums JOIN grps ON nums.grp = grps.g AND nums.x > 15");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(JoinTest, AmbiguousColumnRejected) {
  PHX_ASSERT_OK(h_.Exec("CREATE TABLE nums2 (id INTEGER, x INTEGER)"));
  EXPECT_FALSE(h_.QueryAll("SELECT id FROM nums, nums2").ok());
}

// --- DML ---------------------------------------------------------------------

class DmlTest : public QueryTest {};

TEST_F(DmlTest, InsertWithColumnSubset) {
  PHX_ASSERT_OK(h_.Exec("INSERT INTO nums (id, grp, x) VALUES (10, 'z', 5)"));
  auto rows = Q("SELECT y, note FROM nums WHERE id = 10");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(DmlTest, InsertArityMismatchRejected) {
  EXPECT_FALSE(h_.Exec("INSERT INTO nums (id, grp) VALUES (10)").ok());
}

TEST_F(DmlTest, InsertDuplicatePkRejected) {
  auto st = h_.Exec(
      "INSERT INTO nums VALUES (1, 'a', 0, 0.0, DATE '2000-01-01', 'dup')");
  EXPECT_EQ(st.code(), common::StatusCode::kConstraintViolation);
}

TEST_F(DmlTest, InsertSelect) {
  PHX_ASSERT_OK(h_.Exec("CREATE TABLE copy_t (id INTEGER, x INTEGER)"));
  PHX_ASSERT_OK(h_.Exec("INSERT INTO copy_t SELECT id, x FROM nums"));
  EXPECT_EQ(Q("SELECT COUNT(*) FROM copy_t")[0][0].AsInt(), 5);
}

TEST_F(DmlTest, UpdateByPkFastPath) {
  PHX_ASSERT_OK(h_.Exec("UPDATE nums SET x = 111 WHERE id = 3"));
  EXPECT_EQ(Q("SELECT x FROM nums WHERE id = 3")[0][0].AsInt(), 111);
}

TEST_F(DmlTest, UpdateByPredicateScanPath) {
  PHX_ASSERT_OK(h_.Exec("UPDATE nums SET x = x + 1 WHERE grp = 'a'"));
  EXPECT_EQ(Q("SELECT SUM(x) FROM nums WHERE grp = 'a'")[0][0].AsInt(), 32);
}

TEST_F(DmlTest, UpdateSelfReferencingExpression) {
  PHX_ASSERT_OK(h_.Exec("UPDATE nums SET x = x * 2, y = y + x WHERE id = 1"));
  auto rows = Q("SELECT x, y FROM nums WHERE id = 1");
  // Both expressions see the OLD row values.
  EXPECT_EQ(rows[0][0].AsInt(), 20);
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 11.5);
}

TEST_F(DmlTest, DeleteByPkAndByPredicate) {
  PHX_ASSERT_OK(h_.Exec("DELETE FROM nums WHERE id = 1"));
  EXPECT_EQ(Q("SELECT COUNT(*) FROM nums")[0][0].AsInt(), 4);
  PHX_ASSERT_OK(h_.Exec("DELETE FROM nums WHERE grp = 'b'"));
  EXPECT_EQ(Q("SELECT COUNT(*) FROM nums")[0][0].AsInt(), 2);
}

TEST_F(DmlTest, DeleteMissingPkAffectsZero) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("DELETE FROM nums WHERE id = 999"));
  EXPECT_EQ(stmt->RowCount(), 0);
}

TEST_F(DmlTest, PkUpdateWithResidualPredicate) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  // PK matches but residual predicate does not.
  PHX_ASSERT_OK(
      stmt->ExecDirect("UPDATE nums SET x = 0 WHERE id = 1 AND grp = 'zzz'"));
  EXPECT_EQ(stmt->RowCount(), 0);
  EXPECT_EQ(Q("SELECT x FROM nums WHERE id = 1")[0][0].AsInt(), 10);
}

// --- PK prefix fast paths ------------------------------------------------------

class PrefixPathTest : public QueryTest {
 protected:
  void SetUp() override {
    QueryTest::SetUp();
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE ol (w INTEGER, d INTEGER, o INTEGER, n INTEGER, "
        "amt DOUBLE, PRIMARY KEY (w, d, o, n))"));
    std::string insert = "INSERT INTO ol VALUES ";
    bool first = true;
    for (int w = 1; w <= 2; ++w) {
      for (int d = 1; d <= 2; ++d) {
        for (int o = 1; o <= 3; ++o) {
          for (int n = 1; n <= 4; ++n) {
            if (!first) insert += ",";
            first = false;
            insert += "(" + std::to_string(w) + "," + std::to_string(d) +
                      "," + std::to_string(o) + "," + std::to_string(n) +
                      "," + std::to_string(o * 10 + n) + ".0)";
          }
        }
      }
    }
    PHX_ASSERT_OK(h_.Exec(insert));
  }
};

TEST_F(PrefixPathTest, SelectByPrefixMatchesScanSemantics) {
  auto rows = Q("SELECT SUM(amt) FROM ol WHERE w = 1 AND d = 2 AND o = 3");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 31 + 32 + 33 + 34);
}

TEST_F(PrefixPathTest, AggregateOverPointLookup) {
  auto rows = Q("SELECT MAX(n) FROM ol WHERE w = 1 AND d = 1 AND o = 1");
  EXPECT_EQ(rows[0][0].AsInt(), 4);
}

TEST_F(PrefixPathTest, PrefixWithResidualPredicate) {
  auto rows = Q("SELECT COUNT(*) FROM ol WHERE w = 2 AND d = 1 AND n > 2");
  EXPECT_EQ(rows[0][0].AsInt(), 6);  // 3 orders x lines {3,4}
}

TEST_F(PrefixPathTest, UpdateByPrefixAffectsExactlyTheRange) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect(
      "UPDATE ol SET amt = 0.0 WHERE w = 1 AND d = 2 AND o = 2"));
  EXPECT_EQ(stmt->RowCount(), 4);
  EXPECT_DOUBLE_EQ(
      Q("SELECT SUM(amt) FROM ol WHERE w = 1 AND d = 2 AND o = 2")[0][0]
          .AsDouble(),
      0.0);
  // Neighboring ranges untouched.
  EXPECT_GT(Q("SELECT SUM(amt) FROM ol WHERE w = 1 AND d = 2 AND o = 1")[0][0]
                .AsDouble(),
            0.0);
}

TEST_F(PrefixPathTest, DeleteByPrefixWithResidual) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect(
      "DELETE FROM ol WHERE w = 2 AND d = 2 AND n = 1"));
  EXPECT_EQ(stmt->RowCount(), 3);
  EXPECT_EQ(Q("SELECT COUNT(*) FROM ol WHERE w = 2 AND d = 2")[0][0].AsInt(),
            9);
}

TEST_F(PrefixPathTest, PrefixReadDoesNotBlockOtherDistrictsWriter) {
  // Row-level locking: a reader over (w=1,d=1) must not block a writer in
  // (w=2,d=2) — this is the concurrency the prefix path buys for TPC-C.
  PHX_ASSERT_OK_AND_ASSIGN(auto reader_conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto reader, reader_conn->CreateStatement());
  PHX_ASSERT_OK(reader->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(
      reader->ExecDirect("SELECT SUM(amt) FROM ol WHERE w = 1 AND d = 1"));
  reader->FetchBlock(10).value();

  PHX_ASSERT_OK_AND_ASSIGN(auto writer_conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto writer, writer_conn->CreateStatement());
  PHX_ASSERT_OK(writer->ExecDirect(
      "UPDATE ol SET amt = 1.0 WHERE w = 2 AND d = 2 AND o = 1 AND n = 1"));

  PHX_ASSERT_OK(reader->ExecDirect("COMMIT"));
}

// --- Stored procedures -------------------------------------------------------

TEST_F(DmlTest, ProcedureWithParams) {
  PHX_ASSERT_OK(h_.Exec(
      "CREATE PROCEDURE bump (@grp VARCHAR, @amount INTEGER) AS "
      "UPDATE nums SET x = x + @amount WHERE grp = @grp"));
  PHX_ASSERT_OK(h_.Exec("EXEC bump 'a', 100"));
  EXPECT_EQ(Q("SELECT SUM(x) FROM nums WHERE grp = 'a'")[0][0].AsInt(), 230);
}

TEST_F(DmlTest, ProcedureArgCountChecked) {
  PHX_ASSERT_OK(h_.Exec("CREATE PROCEDURE one (@a INTEGER) AS SELECT @a"));
  EXPECT_FALSE(h_.Exec("EXEC one").ok());
  EXPECT_FALSE(h_.Exec("EXEC one 1, 2").ok());
}

TEST_F(DmlTest, ProcedureMultiStatementBody) {
  PHX_ASSERT_OK(h_.Exec(
      "CREATE PROCEDURE multi AS "
      "INSERT INTO nums (id, grp, x) VALUES (100, 'm', 1); "
      "INSERT INTO nums (id, grp, x) VALUES (101, 'm', 2)"));
  PHX_ASSERT_OK(h_.Exec("EXEC multi"));
  EXPECT_EQ(Q("SELECT COUNT(*) FROM nums WHERE grp = 'm'")[0][0].AsInt(), 2);
}

TEST_F(DmlTest, ProcedureReturningQuery) {
  PHX_ASSERT_OK(h_.Exec(
      "CREATE PROCEDURE q (@lo INTEGER) AS "
      "SELECT id FROM nums WHERE x >= @lo ORDER BY id"));
  auto rows = h_.QueryAll("EXEC q 30");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

}  // namespace
}  // namespace phoenix::engine
