#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/lock_manager.h"

namespace phoenix::engine {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kShort{50};
constexpr milliseconds kLong{2000};

TEST(LockModeTest, CompatibilityMatrix) {
  using L = LockMode;
  struct Case {
    L held, requested;
    bool compatible;
  } cases[] = {
      {L::kIS, L::kIS, true},  {L::kIS, L::kIX, true},
      {L::kIS, L::kS, true},   {L::kIS, L::kX, false},
      {L::kIX, L::kIS, true},  {L::kIX, L::kIX, true},
      {L::kIX, L::kS, false},  {L::kIX, L::kX, false},
      {L::kS, L::kIS, true},   {L::kS, L::kIX, false},
      {L::kS, L::kS, true},    {L::kS, L::kX, false},
      {L::kX, L::kIS, false},  {L::kX, L::kIX, false},
      {L::kX, L::kS, false},   {L::kX, L::kX, false},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(LockModesCompatible(c.held, c.requested), c.compatible)
        << LockModeName(c.held) << " vs " << LockModeName(c.requested);
  }
}

TEST(LockManagerTest, GrantAndRelease) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kX, kShort).ok());
  EXPECT_EQ(lm.LockedResourceCount(), 1u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.LockedResourceCount(), 0u);
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kS, kShort).ok());
  EXPECT_TRUE(lm.Acquire(2, "r", LockMode::kS, kShort).ok());
  EXPECT_TRUE(lm.Acquire(3, "r", LockMode::kIS, kShort).ok());
}

TEST(LockManagerTest, ExclusiveBlocksOthers) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kX, kShort).ok());
  auto st = lm.Acquire(2, "r", LockMode::kS, kShort);
  EXPECT_EQ(st.code(), common::StatusCode::kAborted);
}

TEST(LockManagerTest, ReacquireSameModeIsNoop) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kS, kShort).ok());
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kS, kShort).ok());
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kIS, kShort).ok());  // weaker
}

TEST(LockManagerTest, SelfUpgradeSucceedsWhenAlone) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kS, kShort).ok());
  EXPECT_TRUE(lm.Acquire(1, "r", LockMode::kX, kShort).ok());
  // Now another txn must block.
  EXPECT_FALSE(lm.Acquire(2, "r", LockMode::kIS, kShort).ok());
}

TEST(LockManagerTest, UpgradeBlockedByOtherHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kS, kShort).ok());
  ASSERT_TRUE(lm.Acquire(2, "r", LockMode::kS, kShort).ok());
  EXPECT_EQ(lm.Acquire(1, "r", LockMode::kX, kShort).code(),
            common::StatusCode::kAborted);
}

TEST(LockManagerTest, IntentAndRowLocksCompose) {
  LockManager lm;
  // Writer: IX on table + X on row 5.
  ASSERT_TRUE(lm.Acquire(1, "t:orders", LockMode::kIX, kShort).ok());
  ASSERT_TRUE(lm.Acquire(1, "r:orders#5", LockMode::kX, kShort).ok());
  // Point reader of another row proceeds.
  EXPECT_TRUE(lm.Acquire(2, "t:orders", LockMode::kIS, kShort).ok());
  EXPECT_TRUE(lm.Acquire(2, "r:orders#6", LockMode::kS, kShort).ok());
  // Point reader of the same row blocks.
  EXPECT_FALSE(lm.Acquire(3, "r:orders#5", LockMode::kS, kShort).ok());
  // Full-table scanner blocks on the IX.
  EXPECT_FALSE(lm.Acquire(4, "t:orders", LockMode::kS, kShort).ok());
}

TEST(LockManagerTest, WaiterWakesOnRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kX, kShort).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto st = lm.Acquire(2, "r", LockMode::kX, kLong);
    acquired.store(st.ok());
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, ReleaseAllWakesMultipleWaiters) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kX, kShort).ok());
  std::atomic<int> acquired{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      if (lm.Acquire(10 + i, "r", LockMode::kS, kLong).ok()) {
        acquired.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(50));
  lm.ReleaseAll(1);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(acquired.load(), 4);  // S locks all compatible
}

TEST(LockManagerTest, DeadlockResolvedByTimeout) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "a", LockMode::kX, kShort).ok());
  ASSERT_TRUE(lm.Acquire(2, "b", LockMode::kX, kShort).ok());
  std::atomic<int> timeouts{0};
  std::thread t1([&] {
    if (lm.Acquire(1, "b", LockMode::kX, milliseconds(200)).code() ==
        common::StatusCode::kAborted) {
      timeouts.fetch_add(1);
      lm.ReleaseAll(1);
    }
  });
  std::thread t2([&] {
    if (lm.Acquire(2, "a", LockMode::kX, milliseconds(200)).code() ==
        common::StatusCode::kAborted) {
      timeouts.fetch_add(1);
      lm.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  // At least one side must have timed out (both may).
  EXPECT_GE(timeouts.load(), 1);
}

TEST(LockManagerTest, ResetDropsEverythingAndWakesWaiters) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, "r", LockMode::kX, kShort).ok());
  std::thread waiter([&] {
    // After Reset the resource is free, so this acquires.
    EXPECT_TRUE(lm.Acquire(2, "r", LockMode::kX, kLong).ok());
  });
  std::this_thread::sleep_for(milliseconds(50));
  lm.Reset();
  waiter.join();
}

TEST(LockManagerTest, ManyResourcesManyTxns) {
  LockManager lm;
  for (TxnId txn = 1; txn <= 50; ++txn) {
    for (int r = 0; r < 10; ++r) {
      ASSERT_TRUE(lm.Acquire(txn,
                             "r:" + std::to_string(txn) + "#" +
                                 std::to_string(r),
                             LockMode::kX, kShort)
                      .ok());
    }
  }
  EXPECT_EQ(lm.LockedResourceCount(), 500u);
  for (TxnId txn = 1; txn <= 50; ++txn) lm.ReleaseAll(txn);
  EXPECT_EQ(lm.LockedResourceCount(), 0u);
}

TEST(LockManagerTest, ConcurrentDisjointWritersProgress) {
  LockManager lm;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      TxnId txn = static_cast<TxnId>(i + 1);
      for (int k = 0; k < 200; ++k) {
        std::string resource =
            "row:" + std::to_string(i) + ":" + std::to_string(k);
        ASSERT_TRUE(lm.Acquire(txn, resource, LockMode::kX, kLong).ok());
      }
      lm.ReleaseAll(txn);
      done.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(lm.LockedResourceCount(), 0u);
}

}  // namespace
}  // namespace phoenix::engine
