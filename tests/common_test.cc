#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace phoenix::common {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table 'foo'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "table 'foo'");
  EXPECT_EQ(st.ToString(), "NotFound: table 'foo'");
}

TEST(StatusTest, ConnectionLevelClassification) {
  EXPECT_TRUE(Status::ConnectionFailed("x").IsConnectionLevel());
  EXPECT_TRUE(Status::ServerDown("x").IsConnectionLevel());
  EXPECT_TRUE(Status::Timeout("x").IsConnectionLevel());
  EXPECT_FALSE(Status::NotFound("x").IsConnectionLevel());
  EXPECT_FALSE(Status::Aborted("x").IsConnectionLevel());
  EXPECT_FALSE(Status::OK().IsConnectionLevel());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  PHX_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

TEST(ResultTest, MacrosPropagate) {
  auto ok = DoubleIfPositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  auto bad = DoubleIfPositive(-1);
  EXPECT_FALSE(bad.ok());
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(-12345);
  EXPECT_EQ(v.AsInt(), -12345);
  EXPECT_EQ(v.ToSqlLiteral(), "-12345");
}

TEST(ValueTest, StringEscapesQuotes) {
  Value v = Value::String("it's");
  EXPECT_EQ(v.ToSqlLiteral(), "'it''s'");
}

TEST(ValueTest, CompareNumericPromotion) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(4.1).Compare(Value::Int(4)), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-999)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, SqlEqualsNullIsFalse) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Int(1).SqlEquals(Value::Null()));
  EXPECT_TRUE(Value::Int(1).SqlEquals(Value::Int(1)));
}

TEST(ValueTest, ExactlyEqualsNullEqualsNull) {
  EXPECT_TRUE(Value::Null().ExactlyEquals(Value::Null()));
}

TEST(ValueTest, HashConsistentAcrossNumericTypes) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, DateRoundTrip) {
  auto d = Value::DateFromString("1998-09-02");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->ToDisplayString(), "1998-09-02");
  EXPECT_EQ(d->ToSqlLiteral(), "DATE '1998-09-02'");
}

TEST(ValueTest, BadDateRejected) {
  EXPECT_FALSE(Value::DateFromString("not-a-date").ok());
  EXPECT_FALSE(Value::DateFromString("1998-13-02").ok());
}

TEST(CivilDateTest, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
}

TEST(CivilDateTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  // Leap year 1996.
  EXPECT_EQ(DaysFromCivil(1996, 3, 1) - DaysFromCivil(1996, 2, 28), 2);
}

TEST(CivilDateTest, RoundTripSweep) {
  for (int64_t day = DaysFromCivil(1992, 1, 1);
       day <= DaysFromCivil(1998, 12, 31); day += 17) {
    int y, m, d;
    CivilFromDays(day, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), day);
  }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, CaseFolding) {
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_TRUE(EqualsIgnoreCase("LineItem", "LINEITEM"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a;b;;c", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
}

TEST(StringsTest, LikeExactMatch) {
  EXPECT_TRUE(SqlLikeMatch("hello", "hello"));
  EXPECT_FALSE(SqlLikeMatch("hello", "hell"));
}

TEST(StringsTest, LikePercent) {
  EXPECT_TRUE(SqlLikeMatch("PROMO ANODIZED TIN", "PROMO%"));
  EXPECT_TRUE(SqlLikeMatch("STANDARD BRASS", "%BRASS"));
  EXPECT_TRUE(SqlLikeMatch("abcdef", "%cd%"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("abc", "x%"));
}

TEST(StringsTest, LikeUnderscore) {
  EXPECT_TRUE(SqlLikeMatch("cat", "c_t"));
  EXPECT_FALSE(SqlLikeMatch("caat", "c_t"));
}

TEST(StringsTest, LikeMultiWildcard) {
  EXPECT_TRUE(SqlLikeMatch("special packed requests", "%special%requests%"));
  EXPECT_FALSE(SqlLikeMatch("special packed request", "%special%requests%"));
}

TEST(StringsTest, SqlQuoteLiteralEscapesEmbeddedQuotes) {
  EXPECT_EQ(SqlQuoteLiteral("plain"), "'plain'");
  EXPECT_EQ(SqlQuoteLiteral(""), "''");
  EXPECT_EQ(SqlQuoteLiteral("O'Brien"), "'O''Brien'");
  EXPECT_EQ(SqlQuoteLiteral("'"), "''''");
  EXPECT_EQ(SqlQuoteLiteral("a''b"), "'a''''b'");
  // The classic injection payload renders as an inert literal.
  EXPECT_EQ(SqlQuoteLiteral("x', 0, 0); DROP TABLE t; --"),
            "'x'', 0, 0); DROP TABLE t; --'");
}

TEST(StringsTest, ParseNonNegativeKnobClampsToFallback) {
  // The uniform rule for every numeric environment knob: a value that is
  // not a complete non-negative integer means "use the fallback" (usually
  // feature-disabled) — never a partial parse, never an unsigned wrap.
  EXPECT_EQ(ParseNonNegativeKnob("0", 7), 0);
  EXPECT_EQ(ParseNonNegativeKnob("250", 7), 250);
  EXPECT_EQ(ParseNonNegativeKnob("  42", 7), 42);  // strtoll skips leading ws
  EXPECT_EQ(ParseNonNegativeKnob("42  ", 7), 7);   // trailing junk rejected
  EXPECT_EQ(ParseNonNegativeKnob("-1", 7), 7);
  EXPECT_EQ(ParseNonNegativeKnob("-99999999", 0), 0);
  EXPECT_EQ(ParseNonNegativeKnob("12abc", 7), 7);   // partial numeric
  EXPECT_EQ(ParseNonNegativeKnob("abc", 7), 7);
  EXPECT_EQ(ParseNonNegativeKnob("", 7), 7);
  EXPECT_EQ(ParseNonNegativeKnob("1e6", 7), 7);     // no float syntax
  EXPECT_EQ(ParseNonNegativeKnob("99999999999999999999999999", 7), 7);
  EXPECT_EQ(ParseNonNegativeKnob(std::string("4096"), 7), 4096);
  EXPECT_EQ(ParseNonNegativeKnob(std::string("bad"), 3), 3);
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

TEST(BytesTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(3.25);
  w.PutString("hello");

  BinaryReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI64().value(), -42);
  EXPECT_EQ(r.GetDouble().value(), 3.25);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ValueRoundTripAllTypes) {
  std::vector<Value> values = {
      Value::Null(),       Value::Bool(true),     Value::Int(-7),
      Value::Double(2.75), Value::String("té§t"), Value::Date(9000),
  };
  BinaryWriter w;
  for (const Value& v : values) w.PutValue(v);
  BinaryReader r(w.data());
  for (const Value& expected : values) {
    auto got = r.GetValue();
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->ExactlyEquals(expected));
  }
}

TEST(BytesTest, RowAndSchemaRoundTrip) {
  Row row = {Value::Int(1), Value::String("x"), Value::Null()};
  Schema schema({{"a", ValueType::kInt, false},
                 {"b", ValueType::kString, true},
                 {"c", ValueType::kDouble, true}});
  BinaryWriter w;
  w.PutRow(row);
  w.PutSchema(schema);
  BinaryReader r(w.data());
  auto row2 = r.GetRow();
  ASSERT_TRUE(row2.ok());
  EXPECT_EQ(*row2, row);
  auto schema2 = r.GetSchema();
  ASSERT_TRUE(schema2.ok());
  EXPECT_TRUE(*schema2 == schema);
}

TEST(BytesTest, TruncatedReadFailsCleanly) {
  BinaryWriter w;
  w.PutString("hello world");
  std::vector<uint8_t> data = w.TakeData();
  data.resize(data.size() - 3);  // torn tail
  BinaryReader r(data.data(), data.size());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(BytesTest, CorruptValueTagFails) {
  std::vector<uint8_t> data = {0x77};
  BinaryReader r(data.data(), data.size());
  EXPECT_FALSE(r.GetValue().ok());
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE reference value).
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::vector<uint8_t> data(100, 0x5a);
  uint32_t before = Crc32(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(before, Crc32(data.data(), data.size()));
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s({{"A", ValueType::kInt, true}, {"b", ValueType::kString, true}});
  EXPECT_EQ(s.FindColumn("a"), 0);
  EXPECT_EQ(s.FindColumn("B"), 1);
  EXPECT_EQ(s.FindColumn("c"), -1);
}

TEST(SchemaTest, ValidateRowArity) {
  Schema s({{"a", ValueType::kInt, true}});
  EXPECT_FALSE(s.ValidateRow({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_TRUE(s.ValidateRow({Value::Int(1)}).ok());
}

TEST(SchemaTest, ValidateRowNotNull) {
  Schema s({{"a", ValueType::kInt, false}});
  auto st = s.ValidateRow({Value::Null()});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(SchemaTest, ValidateRowTypePromotion) {
  Schema s({{"a", ValueType::kDouble, true}});
  EXPECT_TRUE(s.ValidateRow({Value::Int(3)}).ok());     // int -> double ok
  EXPECT_FALSE(s.ValidateRow({Value::String("3")}).ok());
}

TEST(SchemaTest, DdlColumnListQuotesNames) {
  Schema s({{"SUM(a * b)", ValueType::kDouble, true}});
  EXPECT_EQ(s.ToDdlColumnList(), "(\"SUM(a * b)\" DOUBLE)");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 15);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 15);
  }
}

TEST(RngTest, NURandWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NURand(1023, 1, 3000, 259);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3000);
  }
}

TEST(RngTest, AlphaStringLengths) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.AlphaString(5, 10);
    EXPECT_GE(s.size(), 5u);
    EXPECT_LE(s.size(), 10u);
  }
}

// ApproxRowBytes sanity: strings dominate.
TEST(SchemaTest, ApproxRowBytesGrowsWithStrings) {
  Row small = {Value::Int(1)};
  Row big = {Value::String(std::string(1000, 'x'))};
  EXPECT_GT(ApproxRowBytes(big), ApproxRowBytes(small) + 900);
}

}  // namespace
}  // namespace phoenix::common
