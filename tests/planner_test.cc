#include <gtest/gtest.h>

#include "engine/operators.h"
#include "engine/planner.h"
#include "engine/session.h"
#include "sql/parser.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Value;
using common::ValueType;
using phoenix::testing::TempDir;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.data_dir = dir_.path();
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    session_ = std::make_unique<Session>(1, db_.get());
    PHX_ASSERT_OK(session_
                      ->Execute("CREATE TABLE t (i INTEGER PRIMARY KEY, "
                                "d DOUBLE, s VARCHAR, dt DATE)")
                      .status());
    PHX_ASSERT_OK(
        session_
            ->Execute("INSERT INTO t VALUES "
                      "(1, 1.5, 'a', DATE '1995-01-01'), "
                      "(2, 2.5, 'b', DATE '1996-01-01')")
            .status());
  }

  /// Plans a SELECT inside a throwaway transaction and returns the plan.
  common::Result<PlannedQuery> Plan(const std::string& sql) {
    PHX_ASSIGN_OR_RETURN(sql::StatementPtr stmt, sql::ParseStatement(sql));
    if (stmt->kind() != sql::StatementKind::kSelect) {
      return common::Status::InvalidArgument("not a select");
    }
    Transaction* txn = db_->Begin(1);
    Planner planner(db_.get(), txn, 1, nullptr);
    auto plan = planner.PlanSelect(
        static_cast<const sql::SelectStmt&>(*stmt));
    // Drain before commit so locks cover execution.
    if (plan.ok()) {
      auto rows = DrainRowSource(plan->root.get());
      if (!rows.ok()) {
        db_->Rollback(txn).ok();
        return rows.status();
      }
      drained_ = std::move(rows).value();
    }
    db_->Commit(txn).ok();
    return plan;
  }

  /// Returns just the inferred output schema.
  common::Schema SchemaOf(const std::string& sql) {
    auto plan = Plan(sql);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    return plan.ok() ? plan->output_schema : common::Schema();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
  std::vector<Row> drained_;
};

TEST_F(PlannerTest, OutputSchemaNamesAndTypes) {
  common::Schema schema = SchemaOf(
      "SELECT i, d AS dd, s || 'x' AS sx, i + 1, COUNT(*) AS n "
      "FROM t GROUP BY i, d, s");
  ASSERT_EQ(schema.num_columns(), 5u);
  EXPECT_EQ(schema.column(0).name, "i");
  EXPECT_EQ(schema.column(0).type, ValueType::kInt);
  EXPECT_EQ(schema.column(1).name, "dd");
  EXPECT_EQ(schema.column(1).type, ValueType::kDouble);
  EXPECT_EQ(schema.column(2).name, "sx");
  EXPECT_EQ(schema.column(2).type, ValueType::kString);
  EXPECT_EQ(schema.column(3).type, ValueType::kInt);
  EXPECT_EQ(schema.column(4).name, "n");
  EXPECT_EQ(schema.column(4).type, ValueType::kInt);
}

TEST_F(PlannerTest, TypeInferenceRules) {
  common::Schema schema = SchemaOf(
      "SELECT i / 2, i * 2, d + i, dt + 30, dt - dt, i = 1, "
      "AVG(i), SUM(d), SUM(i), MIN(s), YEAR(dt) FROM t "
      "GROUP BY i, d, dt, s");
  EXPECT_EQ(schema.column(0).type, ValueType::kDouble);   // div -> double
  EXPECT_EQ(schema.column(1).type, ValueType::kInt);      // int*int
  EXPECT_EQ(schema.column(2).type, ValueType::kDouble);   // mixed
  EXPECT_EQ(schema.column(3).type, ValueType::kDate);     // date+int
  EXPECT_EQ(schema.column(4).type, ValueType::kInt);      // date-date
  EXPECT_EQ(schema.column(5).type, ValueType::kBool);     // comparison
  EXPECT_EQ(schema.column(6).type, ValueType::kDouble);   // AVG
  EXPECT_EQ(schema.column(7).type, ValueType::kDouble);   // SUM(double)
  EXPECT_EQ(schema.column(8).type, ValueType::kInt);      // SUM(int)
  EXPECT_EQ(schema.column(9).type, ValueType::kString);   // MIN(varchar)
  EXPECT_EQ(schema.column(10).type, ValueType::kInt);     // YEAR
}

TEST_F(PlannerTest, NullLiteralColumnDefaultsToVarchar) {
  common::Schema schema = SchemaOf("SELECT NULL FROM t");
  EXPECT_EQ(schema.column(0).type, ValueType::kString);
}

TEST_F(PlannerTest, LazyOnlyForStreamingPipelines) {
  EXPECT_TRUE(Plan("SELECT i FROM t")->lazy);
  EXPECT_TRUE(Plan("SELECT TOP 1 i FROM t WHERE d > 1.0")->lazy);
  EXPECT_FALSE(Plan("SELECT i FROM t ORDER BY i")->lazy);
  EXPECT_FALSE(Plan("SELECT SUM(i) FROM t")->lazy);
  EXPECT_FALSE(Plan("SELECT DISTINCT s FROM t")->lazy);
  EXPECT_FALSE(Plan("SELECT a.i FROM t a, t b WHERE a.i = b.i")->lazy);
  // PK point lookup materializes (not lazy).
  EXPECT_FALSE(Plan("SELECT i FROM t WHERE i = 1")->lazy);
}

TEST_F(PlannerTest, ConstantFalseWhereSkipsExecution) {
  auto plan = Plan("SELECT s, SUM(i) FROM t GROUP BY s HAVING 0=1");
  // HAVING 0=1 is not the probe spot; the probe uses WHERE. Just confirm a
  // WHERE-level constant false empties the plan without error:
  auto probe = Plan("SELECT * FROM (SELECT s, SUM(i) AS v FROM t "
                    "GROUP BY s) p WHERE 0=1");
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(drained_.empty());
  EXPECT_EQ(probe->output_schema.num_columns(), 2u);
}

TEST_F(PlannerTest, WhereNullIsConstantFalse) {
  auto plan = Plan("SELECT i FROM t WHERE NULL");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(drained_.empty());
}

TEST_F(PlannerTest, ConstantTrueWhereDropsFilter) {
  auto plan = Plan("SELECT i FROM t WHERE 1=1");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(drained_.size(), 2u);
}

TEST_F(PlannerTest, UnknownTableFails) {
  auto plan = Plan("SELECT x FROM nope");
  EXPECT_EQ(plan.status().code(), common::StatusCode::kNotFound);
}

TEST_F(PlannerTest, UnknownColumnNamesColumn) {
  auto plan = Plan("SELECT ghost FROM t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ghost"), std::string::npos);
}

TEST_F(PlannerTest, QualifiedColumnsRespectAliases) {
  auto plan = Plan("SELECT a.i, b.i FROM t a, t b WHERE a.i = b.i");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(drained_.size(), 2u);
  // Wrong qualifier is an error.
  EXPECT_FALSE(Plan("SELECT zz.i FROM t a").ok());
}

TEST_F(PlannerTest, AggregateInWhereRejected) {
  EXPECT_FALSE(Plan("SELECT i FROM t WHERE SUM(i) > 1").ok());
}

TEST_F(PlannerTest, SubqueryMustBeSingleColumn) {
  EXPECT_FALSE(
      Plan("SELECT i FROM t WHERE i > (SELECT i, d FROM t)").ok());
}

TEST_F(PlannerTest, ScalarSubqueryWithMultipleRowsYieldsNoMatches) {
  // A multi-row scalar subquery is a runtime evaluation error; per this
  // engine's documented semantics, expression-level errors evaluate to
  // NULL, so the comparison is unknown and no rows qualify.
  auto plan = Plan("SELECT i FROM t WHERE i > (SELECT i FROM t)");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(drained_.empty());
}

TEST_F(PlannerTest, OrdinalOrderByOutOfRangeRejected) {
  EXPECT_FALSE(Plan("SELECT i FROM t ORDER BY 2").ok());
  EXPECT_FALSE(Plan("SELECT i FROM t ORDER BY 0").ok());
}

TEST_F(PlannerTest, ParamsBindFromMap) {
  PHX_ASSERT_OK_AND_ASSIGN(sql::StatementPtr stmt,
                           sql::ParseStatement("SELECT i FROM t WHERE i = @x"));
  Transaction* txn = db_->Begin(1);
  ParamMap params;
  params["x"] = Value::Int(2);
  Planner planner(db_.get(), txn, 1, &params);
  auto plan =
      planner.PlanSelect(static_cast<const sql::SelectStmt&>(*stmt));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto rows = DrainRowSource(plan->root.get());
  db_->Commit(txn).ok();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 2);
}

TEST_F(PlannerTest, UnboundParamRejected) {
  auto plan = Plan("SELECT i FROM t WHERE i = @missing");
  EXPECT_FALSE(plan.ok());
}

TEST_F(PlannerTest, PkLookupCoercesLiteralTypes) {
  // DOUBLE literal 1.0 must match INTEGER primary key 1.
  auto plan = Plan("SELECT s FROM t WHERE i = 1.0");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(drained_.size(), 1u);
  EXPECT_EQ(drained_[0][0].AsString(), "a");
}

// --- Expression evaluation semantics (direct BoundExpr) ---------------------

BoundExprPtr Const(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kConst;
  e->constant = std::move(v);
  return e;
}

BoundExprPtr Bin(sql::BinaryOp op, BoundExprPtr a, BoundExprPtr b) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(a));
  e->children.push_back(std::move(b));
  return e;
}

TEST(EvalTest, KleeneAndOr) {
  using sql::BinaryOp;
  auto t = [] { return Const(Value::Bool(true)); };
  auto f = [] { return Const(Value::Bool(false)); };
  auto n = [] { return Const(Value::Null()); };

  // AND: F dominates NULL.
  EXPECT_FALSE(EvalBound(*Bin(BinaryOp::kAnd, f(), n()), {}).is_null());
  EXPECT_FALSE(EvalBound(*Bin(BinaryOp::kAnd, f(), n()), {}).AsBool());
  EXPECT_TRUE(EvalBound(*Bin(BinaryOp::kAnd, n(), t()), {}).is_null());
  // OR: T dominates NULL.
  EXPECT_TRUE(EvalBound(*Bin(BinaryOp::kOr, t(), n()), {}).AsBool());
  EXPECT_TRUE(EvalBound(*Bin(BinaryOp::kOr, n(), f()), {}).is_null());
}

TEST(EvalTest, ComparisonWithNullIsNull) {
  using sql::BinaryOp;
  auto v = EvalBound(
      *Bin(BinaryOp::kEq, Const(Value::Int(1)), Const(Value::Null())), {});
  EXPECT_TRUE(v.is_null());
}

TEST(EvalTest, NumericPromotionInComparison) {
  using sql::BinaryOp;
  auto v = EvalBound(
      *Bin(BinaryOp::kLe, Const(Value::Int(2)), Const(Value::Double(2.5))),
      {});
  EXPECT_TRUE(v.AsBool());
}

TEST(EvalTest, ArithmeticOverflow64BitWraps) {
  // Documented: 64-bit integer arithmetic wraps (no checked overflow).
  using sql::BinaryOp;
  auto v = EvalBound(*Bin(BinaryOp::kAdd, Const(Value::Int(INT64_MAX)),
                          Const(Value::Int(1))),
                     {});
  EXPECT_EQ(v.type(), common::ValueType::kInt);
}

TEST(EvalTest, ModByZeroIsNull) {
  using sql::BinaryOp;
  auto v = EvalBound(
      *Bin(BinaryOp::kMod, Const(Value::Int(5)), Const(Value::Int(0))), {});
  EXPECT_TRUE(v.is_null());
}

TEST(EvalTest, SlotReadsRow) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kSlot;
  e->slot = 1;
  Row row = {Value::Int(10), Value::String("x")};
  EXPECT_EQ(EvalBound(*e, row).AsString(), "x");
}

// --- Aggregate accumulator ---------------------------------------------------

TEST(AggregateTest, SumSkipsNullsAndKeepsIntType) {
  AggregateSpec spec;
  spec.func = AggregateSpec::Func::kSum;
  auto arg = std::make_unique<BoundExpr>();
  arg->kind = BoundExpr::Kind::kSlot;
  arg->slot = 0;
  spec.arg = std::move(arg);

  AggregateAccumulator acc(&spec);
  acc.Add({Value::Int(3)});
  acc.Add({Value::Null()});
  acc.Add({Value::Int(4)});
  Value v = acc.Finish();
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), 7);
}

TEST(AggregateTest, SumOverNoRowsIsNullCountIsZero) {
  AggregateSpec sum_spec;
  sum_spec.func = AggregateSpec::Func::kSum;
  auto arg = std::make_unique<BoundExpr>();
  arg->kind = BoundExpr::Kind::kSlot;
  arg->slot = 0;
  sum_spec.arg = std::move(arg);
  AggregateAccumulator sum_acc(&sum_spec);
  EXPECT_TRUE(sum_acc.Finish().is_null());

  AggregateSpec count_spec;
  count_spec.func = AggregateSpec::Func::kCountStar;
  AggregateAccumulator count_acc(&count_spec);
  EXPECT_EQ(count_acc.Finish().AsInt(), 0);
}

TEST(AggregateTest, DistinctCountsUniqueValues) {
  AggregateSpec spec;
  spec.func = AggregateSpec::Func::kCount;
  spec.distinct = true;
  auto arg = std::make_unique<BoundExpr>();
  arg->kind = BoundExpr::Kind::kSlot;
  arg->slot = 0;
  spec.arg = std::move(arg);
  AggregateAccumulator acc(&spec);
  for (int64_t v : {1, 2, 2, 3, 1, 3, 3}) acc.Add({Value::Int(v)});
  EXPECT_EQ(acc.Finish().AsInt(), 3);
}

TEST(AggregateTest, MinMaxOnStrings) {
  AggregateSpec spec;
  spec.func = AggregateSpec::Func::kMax;
  auto arg = std::make_unique<BoundExpr>();
  arg->kind = BoundExpr::Kind::kSlot;
  arg->slot = 0;
  spec.arg = std::move(arg);
  AggregateAccumulator acc(&spec);
  acc.Add({Value::String("pear")});
  acc.Add({Value::String("apple")});
  acc.Add({Value::String("zucchini")});
  EXPECT_EQ(acc.Finish().AsString(), "zucchini");
}

// --- Operators directly -------------------------------------------------------

TEST(OperatorTest, HashJoinSkipsNullKeys) {
  auto left = std::make_unique<MaterializedOp>(
      std::vector<Row>{{Value::Int(1)}, {Value::Null()}, {Value::Int(2)}},
      1);
  auto right = std::make_unique<MaterializedOp>(
      std::vector<Row>{{Value::Int(1)}, {Value::Null()}}, 1);
  auto key = [](int slot) {
    auto e = std::make_unique<BoundExpr>();
    e->kind = BoundExpr::Kind::kSlot;
    e->slot = slot;
    return e;
  };
  std::vector<BoundExprPtr> lk, rk;
  lk.push_back(key(0));
  rk.push_back(key(0));
  HashJoinOp join(std::move(left), std::move(right), std::move(lk),
                  std::move(rk), nullptr);
  auto rows = DrainRowSource(&join);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);  // only the 1=1 match; NULLs never join
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
}

TEST(OperatorTest, SortIsStable) {
  std::vector<Row> input;
  for (int i = 0; i < 10; ++i) {
    input.push_back({Value::Int(i % 2), Value::Int(i)});
  }
  auto source = std::make_unique<MaterializedOp>(std::move(input), 2);
  std::vector<SortKey> keys;
  SortKey k;
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExpr::Kind::kSlot;
  e->slot = 0;
  k.expr = std::move(e);
  keys.push_back(std::move(k));
  SortOp sort(std::move(source), std::move(keys));
  auto rows = DrainRowSource(&sort);
  ASSERT_TRUE(rows.ok());
  // Within equal keys, original order (second column ascending) holds.
  for (size_t i = 1; i < rows->size(); ++i) {
    if ((*rows)[i - 1][0].AsInt() == (*rows)[i][0].AsInt()) {
      EXPECT_LT((*rows)[i - 1][1].AsInt(), (*rows)[i][1].AsInt());
    }
  }
}

TEST(OperatorTest, LimitZeroAndNegativeHandled) {
  auto source = std::make_unique<MaterializedOp>(
      std::vector<Row>{{Value::Int(1)}}, 1);
  LimitOp limit(std::move(source), 0);
  auto rows = DrainRowSource(&limit);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(OperatorTest, DistinctTreatsNullsEqual) {
  auto source = std::make_unique<MaterializedOp>(
      std::vector<Row>{{Value::Null()}, {Value::Null()}, {Value::Int(1)}},
      1);
  DistinctOp distinct(std::move(source));
  auto rows = DrainRowSource(&distinct);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(OperatorTest, NestedLoopCrossProduct) {
  auto left = std::make_unique<MaterializedOp>(
      std::vector<Row>{{Value::Int(1)}, {Value::Int(2)}}, 1);
  auto right = std::make_unique<MaterializedOp>(
      std::vector<Row>{{Value::String("a")}, {Value::String("b")},
                       {Value::String("c")}},
      1);
  NestedLoopJoinOp join(std::move(left), std::move(right), nullptr);
  auto rows = DrainRowSource(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
  EXPECT_EQ((*rows)[0].size(), 2u);
}

}  // namespace
}  // namespace phoenix::engine
