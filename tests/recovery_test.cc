#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/checkpoint.h"
#include "engine/database.h"
#include "fault/fault.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Schema;
using common::Value;
using common::ValueType;
using fault::FaultInjector;
using phoenix::testing::TempDir;

Schema TwoColSchema() {
  return Schema({{"id", ValueType::kInt, false},
                 {"v", ValueType::kString, true}});
}

/// Parallel replay + incremental checkpoints, tested at the engine level.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Clear(); }
  void TearDown() override { FaultInjector::Global().Clear(); }

  void Open(int recovery_threads = -1, int incremental = 1,
            int64_t checkpoint_wal_bytes = 0) {
    DatabaseOptions options;
    options.data_dir = dir_.path();
    options.lock_timeout = std::chrono::milliseconds(200);
    options.recovery_threads = recovery_threads;
    options.incremental_checkpoints = incremental;
    options.checkpoint_wal_bytes = checkpoint_wal_bytes;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  void Reboot() {
    db_->CrashVolatile();
    PHX_ASSERT_OK(db_->Recover());
  }

  void CreateTable(const std::string& name) {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->CreateTable(txn, name, TwoColSchema(), {"id"},
                                   /*temporary=*/false,
                                   /*if_not_exists=*/false, 0));
    PHX_ASSERT_OK(db_->Commit(txn));
  }

  void Insert(const std::string& table, int64_t id, const std::string& v) {
    TablePtr t = db_->ResolveTable(table, 0).value();
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(id), Value::String(v)}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }

  std::string WalPath() const { return dir_.path() + "/wal.log"; }
  std::string CheckpointPath() const { return dir_.path() + "/checkpoint.phx"; }

  /// Per-table content digests for every table in `names` that resolves.
  std::map<std::string, uint32_t> Digests(
      const std::vector<std::string>& names) {
    std::map<std::string, uint32_t> out;
    for (const std::string& name : names) {
      auto t = db_->ResolveTable(name, 0);
      if (t.ok()) out[name] = t.value()->ContentDigest();
    }
    return out;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// ---------------------------------------------------------------------------
// Parallel replay determinism (property test; runs under TSan in CI)
// ---------------------------------------------------------------------------

class ReplayDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplayDeterminismTest, AllThreadCountsProduceIdenticalTables) {
  common::Rng rng(GetParam());
  TempDir dir;
  DatabaseOptions options;
  options.data_dir = dir.path();
  options.recovery_threads = 0;  // baseline: serial legacy replay
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(opened).value();

  // Random multi-table workload with DDL mixed in, all committed, so the
  // whole thing sits in the WAL tail (no checkpoint).
  std::vector<std::string> tables;
  std::map<std::string, std::vector<int64_t>> live;  // table -> live ids
  int64_t next_id = 1;
  for (int i = 0; i < 4; ++i) {
    std::string name = "t" + std::to_string(i);
    Transaction* txn = db->Begin(0);
    PHX_ASSERT_OK(db->CreateTable(txn, name, TwoColSchema(), {"id"}, false,
                                  false, 0));
    PHX_ASSERT_OK(db->Commit(txn));
    tables.push_back(name);
  }
  for (int op = 0; op < 250; ++op) {
    const std::string& name = tables[rng.Uniform(0, tables.size() - 1)];
    TablePtr t = db->ResolveTable(name, 0).value();
    std::vector<int64_t>& ids = live[name];
    Transaction* txn = db->Begin(0);
    uint64_t kind = rng.Uniform(0, 9);
    if (kind == 0 && op % 37 == 0) {
      // Occasional DDL between DML so replay exercises the barrier.
      std::string extra = "x" + std::to_string(op);
      PHX_ASSERT_OK(db->CreateTable(txn, extra, TwoColSchema(), {"id"}, false,
                                    false, 0));
      if (rng.Uniform(0, 1) == 0) {
        PHX_ASSERT_OK(db->DropTable(txn, extra, false, 0));
      } else {
        tables.push_back(extra);
      }
    } else if (kind <= 5 || ids.empty()) {
      int64_t id = next_id++;
      PHX_ASSERT_OK(db->InsertRow(
          txn, t, {Value::Int(id), Value::String("v" + std::to_string(id))}));
      ids.push_back(id);
    } else if (kind <= 7) {
      int64_t id = ids[rng.Uniform(0, ids.size() - 1)];
      RowId rid = t->LookupPk({Value::Int(id)}).value();
      PHX_ASSERT_OK(db->UpdateRow(
          txn, t, rid,
          {Value::Int(id), Value::String("u" + std::to_string(op))}));
    } else {
      size_t pick = rng.Uniform(0, ids.size() - 1);
      int64_t id = ids[pick];
      RowId rid = t->LookupPk({Value::Int(id)}).value();
      PHX_ASSERT_OK(db->DeleteRow(txn, t, rid));
      ids.erase(ids.begin() + pick);
    }
    PHX_ASSERT_OK(db->Commit(txn));
  }

  auto digests_for = [&](int threads) {
    db->set_recovery_threads(threads);
    db->CrashVolatile();
    auto st = db->Recover();
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::map<std::string, uint32_t> out;
    for (const std::string& name : tables) {
      auto t = db->ResolveTable(name, 0);
      if (t.ok()) out[name] = t.value()->ContentDigest();
    }
    return out;
  };

  std::map<std::string, uint32_t> serial = digests_for(0);
  ASSERT_FALSE(serial.empty());
  for (int threads : {1, 2, 4}) {
    std::map<std::string, uint32_t> parallel = digests_for(threads);
    EXPECT_EQ(serial, parallel)
        << "threads=" << threads << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayDeterminismTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Incremental checkpoint format
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, IncrementalCheckpointRewritesOnlyDirtyTables) {
  Open(/*recovery_threads=*/2, /*incremental=*/1);
  CreateTable("alpha");
  CreateTable("beta");
  Insert("alpha", 1, "a1");
  Insert("beta", 1, "b1");
  PHX_ASSERT_OK(db_->Checkpoint());
  EXPECT_EQ(db_->checkpoint_generation(), 1u);

  Insert("alpha", 2, "a2");  // only alpha dirtied
  PHX_ASSERT_OK(db_->Checkpoint());
  EXPECT_EQ(db_->checkpoint_generation(), 2u);

  auto loaded = ReadCheckpointAny(CheckpointPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->is_manifest);
  EXPECT_EQ(loaded->manifest.generation, 2u);
  std::map<std::string, uint64_t> seg_gens;
  for (const SegmentRef& seg : loaded->manifest.segments) {
    seg_gens[seg.table] = seg.generation;
  }
  EXPECT_EQ(seg_gens["alpha"], 2u);  // rewritten
  EXPECT_EQ(seg_gens["beta"], 1u);   // carried forward by reference

  Reboot();
  EXPECT_EQ(db_->ResolveTable("alpha", 0).value()->live_row_count(), 2u);
  EXPECT_EQ(db_->ResolveTable("beta", 0).value()->live_row_count(), 1u);
}

TEST_F(RecoveryTest, StaleSegmentsAreRemovedAfterCommitPoint) {
  Open(2, 1);
  CreateTable("alpha");
  Insert("alpha", 1, "a1");
  PHX_ASSERT_OK(db_->Checkpoint());
  Insert("alpha", 2, "a2");
  PHX_ASSERT_OK(db_->Checkpoint());

  auto loaded = ReadCheckpointAny(CheckpointPath());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->manifest.segments.size(), 1u);
  // Only the referenced segment file remains.
  EXPECT_EQ(::access(
                (dir_.path() + "/" + loaded->manifest.segments[0].file).c_str(),
                F_OK),
            0);
  EXPECT_NE(::access((dir_.path() + "/seg_00000001_000.phxseg").c_str(), F_OK),
            0);
}

TEST_F(RecoveryTest, LegacyCheckpointLoadsAndUpgradesToManifest) {
  Open(2, /*incremental=*/0);
  CreateTable("t");
  Insert("t", 1, "one");
  PHX_ASSERT_OK(db_->Checkpoint());  // legacy single-file format
  db_.reset();

  Open(2, /*incremental=*/1);  // reopen: Recover loads the legacy image
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 1u);
  Insert("t", 2, "two");
  PHX_ASSERT_OK(db_->Checkpoint());  // first incremental checkpoint
  auto loaded = ReadCheckpointAny(CheckpointPath());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->is_manifest);
  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 2u);
}

TEST_F(RecoveryTest, ArtifactStyleTablesAreDirtyTracked) {
  // phoenix_rs_* names are filtered out of the result-cache invalidation
  // plane (Transaction::RecordWrite) but are persistent and must still be
  // rewritten by incremental checkpoints — dirty tracking reads redo
  // records, not the invalidation counters. Regression test for reusing the
  // wrong plane.
  Open(2, 1);
  CreateTable("phoenix_rs_1");
  Insert("phoenix_rs_1", 1, "cached");
  PHX_ASSERT_OK(db_->Checkpoint());
  Insert("phoenix_rs_1", 2, "fresh");
  PHX_ASSERT_OK(db_->Checkpoint());

  auto loaded = ReadCheckpointAny(CheckpointPath());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->manifest.segments.size(), 1u);
  EXPECT_EQ(loaded->manifest.segments[0].generation, 2u);
  EXPECT_EQ(loaded->manifest.segments[0].row_count, 2u);

  // Nothing in the WAL tail (just checkpointed): the rows must come back
  // from the segment alone.
  Reboot();
  EXPECT_EQ(db_->ResolveTable("phoenix_rs_1", 0).value()->live_row_count(),
            2u);
}

// ---------------------------------------------------------------------------
// Crash-during-checkpoint and corrupt-tail behavior at generation boundaries
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, FailedSegmentWriteKeepsPreviousGenerationLoadable) {
  Open(2, 1);
  CreateTable("t");
  Insert("t", 1, "one");
  PHX_ASSERT_OK(db_->Checkpoint());
  Insert("t", 2, "two");

  PHX_ASSERT_OK(FaultInjector::Global().ArmSpec(
      "checkpoint.segment_write=error:code=IoError,count=1", 1));
  EXPECT_FALSE(db_->Checkpoint().ok());
  EXPECT_EQ(db_->checkpoint_generation(), 1u);
  FaultInjector::Global().Clear();

  // The WAL was not truncated, so the full state recovers from gen 1 + tail.
  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 2u);

  // And the next checkpoint completes normally.
  PHX_ASSERT_OK(db_->Checkpoint());
  EXPECT_EQ(db_->checkpoint_generation(), 2u);
  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 2u);
}

TEST_F(RecoveryTest, FailedManifestWriteKeepsPreviousGenerationLoadable) {
  Open(2, 1);
  CreateTable("t");
  Insert("t", 1, "one");
  PHX_ASSERT_OK(db_->Checkpoint());
  Insert("t", 2, "two");

  PHX_ASSERT_OK(FaultInjector::Global().ArmSpec(
      "checkpoint.write=error:code=IoError,count=1", 1));
  EXPECT_FALSE(db_->Checkpoint().ok());
  FaultInjector::Global().Clear();

  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 2u);
}

TEST_F(RecoveryTest, TornWalTailAfterCheckpointBoundaryReplaysCleanPrefix) {
  Open(2, 1);
  CreateTable("t");
  Insert("t", 1, "one");
  PHX_ASSERT_OK(db_->Checkpoint());  // generation boundary: tail starts here
  Insert("t", 2, "two");
  struct stat st;
  ASSERT_EQ(::stat(WalPath().c_str(), &st), 0);
  const off_t after_second = st.st_size;
  Insert("t", 3, "three");
  db_.reset();  // close cleanly; then tear the tail behind the WAL's back

  ASSERT_EQ(::stat(WalPath().c_str(), &st), 0);
  ASSERT_GT(st.st_size, after_second);
  ASSERT_EQ(::truncate(WalPath().c_str(), after_second + 3), 0);

  Open(2, 1);
  TablePtr t = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(t->live_row_count(), 2u);
  EXPECT_TRUE(t->LookupPk({Value::Int(2)}).ok());
  EXPECT_FALSE(t->LookupPk({Value::Int(3)}).ok());
}

TEST_F(RecoveryTest, CorruptWalRecordAfterCheckpointStopsReplayBeforeIt) {
  Open(2, 1);
  CreateTable("t");
  Insert("t", 1, "one");
  PHX_ASSERT_OK(db_->Checkpoint());
  Insert("t", 2, "two");
  struct stat st;
  ASSERT_EQ(::stat(WalPath().c_str(), &st), 0);
  const off_t after_second = st.st_size;
  Insert("t", 3, "three");
  db_.reset();

  // Flip a byte inside the third transaction's frame (past len+crc header).
  std::FILE* f = std::fopen(WalPath().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(after_second) + 10, SEEK_SET), 0);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, static_cast<long>(after_second) + 10, SEEK_SET), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  Open(2, 1);
  TablePtr t = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(t->live_row_count(), 2u);
  EXPECT_FALSE(t->LookupPk({Value::Int(3)}).ok());
}

// ---------------------------------------------------------------------------
// Background checkpoint trigger
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, WalBytesTriggerCheckpointsInBackground) {
  Open(/*recovery_threads=*/2, /*incremental=*/1,
       /*checkpoint_wal_bytes=*/2048);
  CreateTable("t");
  int64_t id = 0;
  for (int deadline = 0; db_->auto_checkpoint_count() == 0; ++deadline) {
    ASSERT_LT(deadline, 2000) << "background checkpoint never fired";
    ++id;
    Insert("t", id, "row-" + std::to_string(id));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(db_->checkpoint_generation(), 1u);
  // The trigger must actually shorten the tail.
  for (int i = 0; i < 200 && db_->wal_durable_bytes() > 2048; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(db_->wal_durable_bytes(), 2048u);
  const int64_t rows = static_cast<int64_t>(
      db_->ResolveTable("t", 0).value()->live_row_count());

  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(),
            static_cast<size_t>(rows));
}

TEST_F(RecoveryTest, TriggerRetriesMissedQuiescenceWithBackoff) {
  Open(2, 1, /*checkpoint_wal_bytes=*/512);
  CreateTable("t");
  CreateTable("held");

  // An open writer blocks quiescence; the trigger must retry, not give up.
  TablePtr held = db_->ResolveTable("held", 0).value();
  Transaction* writer = db_->Begin(1);
  PHX_ASSERT_OK(
      db_->InsertRow(writer, held, {Value::Int(1), Value::String("open")}));

  int64_t id = 0;
  while (db_->wal_durable_bytes() < 4096) {
    ++id;
    Insert("t", id, "filler");
  }
  for (int i = 0; i < 2000 && db_->auto_checkpoint_retries() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(db_->auto_checkpoint_retries(), 0u);
  EXPECT_EQ(db_->auto_checkpoint_count(), 0u);

  // Quiescence restored: the backoff loop lands a checkpoint by itself.
  PHX_ASSERT_OK(db_->Commit(writer));
  for (int i = 0; i < 4000 && db_->auto_checkpoint_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(db_->auto_checkpoint_count(), 0u);
  Reboot();
  EXPECT_EQ(db_->ResolveTable("held", 0).value()->live_row_count(), 1u);
}

TEST_F(RecoveryTest, CheckpointDuringCrashWindowRefusesToTruncate) {
  Open(2, 1);
  CreateTable("t");
  Insert("t", 1, "one");
  db_->CrashVolatile();
  // Between CrashVolatile and Recover the engine is down: a checkpoint now
  // would image an empty catalog and truncate the WAL — data loss.
  common::Status st = db_->Checkpoint();
  EXPECT_EQ(st.code(), common::StatusCode::kServerDown) << st.ToString();
  PHX_ASSERT_OK(db_->Recover());
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 1u);
  PHX_ASSERT_OK(db_->Checkpoint());  // re-armed after recovery
}

}  // namespace
}  // namespace phoenix::engine
