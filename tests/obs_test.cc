#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phoenix/stats.h"
#include "test_util.h"

namespace phoenix::obs {
namespace {

using phoenix::testing::ServerHarness;

/// Every test leaves the global switches the way it found them (on).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetTraceEventsEnabled(true);
    ClearTraceEvents();
  }
  void TearDown() override {
    SetEnabled(true);
    SetTraceEventsEnabled(true);
    ClearTraceEvents();
  }
};

// ---------------------------------------------------------------------------
// Histogram bucketing
// ---------------------------------------------------------------------------

TEST_F(ObsTest, BucketBoundsContainValue) {
  std::vector<uint64_t> values = {0, 1, 7, 8, 9, 15, 16, 17, 100, 1000,
                                  12345, 999'999, 1'000'000'007,
                                  (uint64_t{1} << 40) + 12345,
                                  ~uint64_t{0}};
  for (uint64_t v : values) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kBuckets) << v;
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << v;
    EXPECT_GE(Histogram::BucketUpperBound(idx), v) << v;
  }
}

TEST_F(ObsTest, BucketIndexIsMonotone) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 100'000; v += 7) {
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
}

TEST_F(ObsTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, Histogram::kSubBuckets);
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(snap.buckets[v], 1u) << v;
  }
}

// ---------------------------------------------------------------------------
// Quantile accuracy against exact sorted samples
// ---------------------------------------------------------------------------

TEST_F(ObsTest, QuantilesTrackExactValues) {
  // Deterministic LCG: latency-shaped samples spanning several octaves.
  Histogram h;
  std::vector<uint64_t> samples;
  uint64_t state = 12345;
  for (int i = 0; i < 20'000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    uint64_t v = 1000 + (state >> 33) % 1'000'000;  // 1 us .. ~1 ms in ns
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, samples.size());

  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    double exact = static_cast<double>(
        samples[static_cast<size_t>(q * (samples.size() - 1))]);
    double est = snap.Quantile(q);
    // The log-scale buckets guarantee <= 2^-kSubBits relative width; the
    // midpoint estimate is within half a bucket, use the full width as the
    // bound (plus 1 for the sub-linear range).
    double bound = exact / static_cast<double>(Histogram::kSubBuckets) + 1.0;
    EXPECT_NEAR(est, exact, bound) << "q=" << q;
  }
  // Max is tracked exactly, not at bucket resolution.
  EXPECT_EQ(snap.max, samples.back());
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), static_cast<double>(samples.back()));
}

// ---------------------------------------------------------------------------
// Multithreaded shard merging
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterMergesAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST_F(ObsTest, HistogramMergesAcrossThreads) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Record(i % 1000 + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t one_thread_sum = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) one_thread_sum += i % 1000 + 1;
  EXPECT_EQ(snap.sum, kThreads * one_thread_sum);
  EXPECT_EQ(snap.max, 1000u);
}

// ---------------------------------------------------------------------------
// Enable switch and reset semantics
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledRecordingIsDropped) {
  Counter c;
  Histogram h;
  SetEnabled(false);
  c.Add(5);
  h.Record(123);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Snapshot().count, 0u);
  SetEnabled(true);
  c.Add(5);
  h.Record(123);
  EXPECT_EQ(c.Value(), 5u);
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST_F(ObsTest, RegistryResetKeepsPointersValid) {
  Counter* c = Registry::Global().counter("obs_test.reset_counter");
  Histogram* h = Registry::Global().histogram("obs_test.reset_hist");
  c->Add(3);
  h->Record(42);
  Registry::Global().ResetMetrics();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  // Same names resolve to the same (still valid) objects.
  EXPECT_EQ(Registry::Global().counter("obs_test.reset_counter"), c);
  EXPECT_EQ(Registry::Global().histogram("obs_test.reset_hist"), h);
  c->Add(1);
  EXPECT_EQ(c->Value(), 1u);
}

// ---------------------------------------------------------------------------
// Span nesting
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansNestParentChild) {
  uint64_t trace_id = NewTraceId();
  {
    TraceScope trace(trace_id, 0);
    OBS_SPAN("obs_test.outer");
    {
      OBS_SPAN("obs_test.inner");
    }
  }
  std::vector<TraceEvent> events = TraceEventsForTrace(trace_id);
  ASSERT_EQ(events.size(), 2u);
  // Spans record on close: inner completes first.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_STREQ(inner.name, "obs_test.inner");
  EXPECT_STREQ(outer.name, "obs_test.outer");
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(outer.parent_span_id, 0u);
  EXPECT_NE(inner.span_id, outer.span_id);
  EXPECT_EQ(inner.trace_id, trace_id);
  EXPECT_EQ(outer.trace_id, trace_id);
  EXPECT_LE(inner.duration_nanos, outer.duration_nanos);
}

TEST_F(ObsTest, TraceScopeRestoresOuterContext) {
  uint64_t outer_id = NewTraceId();
  uint64_t inner_id = NewTraceId();
  TraceScope outer(outer_id, 0);
  {
    TraceScope inner(inner_id, 0);
    EXPECT_EQ(CurrentTrace().trace_id, inner_id);
  }
  EXPECT_EQ(CurrentTrace().trace_id, outer_id);
}

TEST_F(ObsTest, NoTraceMeansNoEvents) {
  ClearTraceEvents();
  {
    OBS_SPAN("obs_test.orphan");  // no TraceScope active -> no event
  }
  EXPECT_TRUE(TraceEvents().empty());
}

TEST_F(ObsTest, StepTimerDualWritesHistogram) {
  phx::StepTimer timer("obs_test.step");
  Histogram* h = Registry::Global().histogram("obs_test.step");
  h->Reset();
  timer.Add(1000);
  timer.Add(3000);
  EXPECT_EQ(timer.count.load(), 2u);
  EXPECT_EQ(timer.nanos.load(), 4000u);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 4000u);
  timer.Reset();
  EXPECT_EQ(timer.count.load(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
}

// ---------------------------------------------------------------------------
// Trace-id propagation through the wire protocol
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TraceIdSurvivesWireSerialization) {
  wire::Request request;
  request.type = wire::RequestType::kExecute;
  request.sql = "SELECT 1";
  request.trace_id = 0xdeadbeefcafef00dULL;
  request.span_id = 42;
  auto bytes = request.Serialize();
  auto parsed = wire::Request::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace_id, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(parsed->span_id, 42u);
}

TEST_F(ObsTest, ClientAndServerSpansShareTraceId) {
  ServerHarness harness;
  auto conn = harness.ConnectNative();
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto stmt = conn.value()->CreateStatement();
  ASSERT_TRUE(stmt.ok());

  ClearTraceEvents();
  uint64_t trace_id = NewTraceId();
  {
    TraceScope trace(trace_id, 0);
    ASSERT_TRUE(
        stmt.value()->ExecDirect("SELECT 1").ok());
  }

  std::vector<TraceEvent> events = TraceEventsForTrace(trace_id);
  ASSERT_FALSE(events.empty());
  bool saw_server_execute = false;
  bool saw_engine_parse = false;
  bool saw_wire_rtt = false;
  for (const TraceEvent& event : events) {
    std::string name = event.name;
    if (name == "server.execute") saw_server_execute = true;
    if (name == "engine.parse") saw_engine_parse = true;
    if (name == "wire.inproc.rtt") saw_wire_rtt = true;
    EXPECT_EQ(event.trace_id, trace_id) << name;
  }
  EXPECT_TRUE(saw_server_execute);
  EXPECT_TRUE(saw_engine_parse);
  EXPECT_TRUE(saw_wire_rtt);
}

TEST_F(ObsTest, PhoenixStatementCorrelatesClientAndServer) {
  ServerHarness harness;
  PHX_ASSERT_OK(harness.Exec(
      "CREATE TABLE obs_probe (id INTEGER PRIMARY KEY, v VARCHAR)"));
  PHX_ASSERT_OK(harness.Exec("INSERT INTO obs_probe VALUES (1, 'x')"));

  auto conn = harness.ConnectPhoenix();
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto stmt = conn.value()->CreateStatement();
  ASSERT_TRUE(stmt.ok());

  ClearTraceEvents();
  PHX_ASSERT_OK(stmt.value()->ExecDirect("SELECT * FROM obs_probe"));

  // The Phoenix statement opened its own trace; find it via the phx.statement
  // span and check server-side engine work landed under the same trace.
  bool found_statement_trace = false;
  for (const TraceEvent& event : TraceEvents()) {
    if (std::string(event.name) != "phx.statement") continue;
    found_statement_trace = true;
    std::vector<TraceEvent> in_trace = TraceEventsForTrace(event.trace_id);
    bool saw_server = false;
    for (const TraceEvent& e : in_trace) {
      if (std::string(e.name) == "server.execute") saw_server = true;
    }
    EXPECT_TRUE(saw_server)
        << "no server-side span under the phx.statement trace";
  }
  EXPECT_TRUE(found_statement_trace);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DumpJsonContainsMetricsAndMeta) {
  Registry::Global().ResetMetrics();
  ClearTraceEvents();
  Registry::Global().counter("obs_test.json_counter")->Add(7);
  Registry::Global().histogram("obs_test.json_hist")->Record(1234);
  std::string json =
      DumpJson(Registry::Global(), {{"bench", "obs_test"}, {"sf", "0.01"}});
  EXPECT_NE(json.find("\"obs_test.json_counter\": 7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
}

TEST_F(ObsTest, DumpTextListsMetricNames) {
  Registry::Global().counter("obs_test.text_counter")->Add(1);
  std::string text = DumpText(Registry::Global());
  EXPECT_NE(text.find("obs_test.text_counter"), std::string::npos);
}

}  // namespace
}  // namespace phoenix::obs
