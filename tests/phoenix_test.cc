#include <gtest/gtest.h>

#include "phoenix/classifier.h"
#include "test_util.h"

namespace phoenix::phx {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::ServerHarness;

// --- Classifier --------------------------------------------------------------

TEST(ClassifierTest, RequestClasses) {
  struct Case {
    const char* sql;
    RequestClass expected;
  } cases[] = {
      {"SELECT * FROM t", RequestClass::kQuery},
      {"select 1", RequestClass::kQuery},
      {"INSERT INTO t VALUES (1)", RequestClass::kModification},
      {"UPDATE t SET a = 1", RequestClass::kModification},
      {"DELETE FROM t", RequestClass::kModification},
      {"CREATE TABLE t (a INTEGER)", RequestClass::kDdl},
      {"CREATE TEMP TABLE t (a INTEGER)", RequestClass::kDdlSessionTemp},
      {"CREATE TEMPORARY TABLE t (a INTEGER)",
       RequestClass::kDdlSessionTemp},
      {"DROP TABLE t", RequestClass::kDdl},
      {"BEGIN TRANSACTION", RequestClass::kTxnBegin},
      {"COMMIT", RequestClass::kTxnCommit},
      {"ROLLBACK", RequestClass::kTxnRollback},
      {"EXEC p 1", RequestClass::kExecProcedure},
  };
  for (const auto& c : cases) {
    auto result = ClassifyRequest(c.sql);
    ASSERT_TRUE(result.ok()) << c.sql;
    EXPECT_EQ(*result, c.expected) << c.sql;
  }
}

TEST(ClassifierTest, EmptyAndGarbage) {
  EXPECT_FALSE(ClassifyRequest("").ok());
  EXPECT_FALSE(ClassifyRequest("   ").ok());
  auto odd = ClassifyRequest("foo bar");
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(*odd, RequestClass::kUnknown);
}

// --- Config ------------------------------------------------------------------

TEST(PhoenixConfigTest, ConnectionStringOverrides) {
  PhoenixConfig defaults;
  auto cs = odbc::ConnectionString::Parse(
      "PHOENIX_CACHE=4096;PHOENIX_REPOSITION=server;PHOENIX_RETRY_MS=5;"
      "PHOENIX_DEADLINE_MS=123");
  ASSERT_TRUE(cs.ok());
  PhoenixConfig config = defaults.WithOverrides(*cs);
  EXPECT_EQ(config.cache_bytes, 4096u);
  EXPECT_EQ(config.reposition, PhoenixConfig::Reposition::kServer);
  EXPECT_EQ(config.reconnect_interval.count(), 5);
  EXPECT_EQ(config.reconnect_deadline.count(), 123);
}

TEST(PhoenixConfigTest, DefaultsPreservedWithoutOverrides) {
  PhoenixConfig defaults;
  defaults.cache_bytes = 777;
  auto cs = odbc::ConnectionString::Parse("UID=x");
  PhoenixConfig config = defaults.WithOverrides(*cs);
  EXPECT_EQ(config.cache_bytes, 777u);
  EXPECT_EQ(config.reposition, PhoenixConfig::Reposition::kClient);
}

// --- Core interception & persistence ------------------------------------------

class PhoenixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE items (id INTEGER PRIMARY KEY, grp VARCHAR, "
        "qty INTEGER)"));
    std::string insert = "INSERT INTO items VALUES ";
    for (int i = 1; i <= 60; ++i) {
      if (i > 1) insert += ",";
      insert += "(" + std::to_string(i) + ",'g" + std::to_string(i % 3) +
                "'," + std::to_string(i * 10) + ")";
    }
    PHX_ASSERT_OK(h_.Exec(insert));
  }

  ServerHarness h_;
};

TEST_F(PhoenixTest, QueryResultIsMaterializedInPhoenixTable) {
  // Asserts persisted-path internals; pin the result cache off so a
  // suite-wide env override cannot reroute delivery client-side.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_.ConnectPhoenix("PHOENIX_RESULT_CACHE=0"));
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM items WHERE qty > 500"));

  auto* phoenix_stmt = static_cast<PhoenixStatement*>(stmt.get());
  const std::string& table = phoenix_stmt->result_table();
  ASSERT_FALSE(table.empty());
  EXPECT_EQ(table.find("phoenix_rs_"), 0u);

  // The persistent table is a real server table holding the result.
  auto persisted = h_.QueryAll("SELECT COUNT(*) FROM " + table);
  ASSERT_TRUE(persisted.ok());
  EXPECT_EQ((*persisted)[0][0].AsInt(), 10);
}

TEST_F(PhoenixTest, ResultDeliveryMatchesNative) {
  PHX_ASSERT_OK_AND_ASSIGN(auto native_conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto native_stmt, native_conn->CreateStatement());
  PHX_ASSERT_OK_AND_ASSIGN(auto phoenix_conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto phoenix_stmt,
                           phoenix_conn->CreateStatement());

  const std::string sql =
      "SELECT grp, SUM(qty) AS total FROM items GROUP BY grp ORDER BY grp";
  PHX_ASSERT_OK(native_stmt->ExecDirect(sql));
  PHX_ASSERT_OK(phoenix_stmt->ExecDirect(sql));
  auto native_rows = native_stmt->FetchBlock(100);
  auto phoenix_rows = phoenix_stmt->FetchBlock(100);
  ASSERT_TRUE(native_rows.ok());
  ASSERT_TRUE(phoenix_rows.ok());
  ASSERT_EQ(native_rows->size(), phoenix_rows->size());
  for (size_t i = 0; i < native_rows->size(); ++i) {
    EXPECT_EQ((*native_rows)[i], (*phoenix_rows)[i]) << "row " << i;
  }
}

TEST_F(PhoenixTest, SchemaFromMetadataProbe) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect(
      "SELECT grp, SUM(qty) AS total FROM items GROUP BY grp"));
  ASSERT_EQ(stmt->ResultSchema().num_columns(), 2u);
  EXPECT_EQ(stmt->ResultSchema().column(0).name, "grp");
  EXPECT_EQ(stmt->ResultSchema().column(1).name, "total");
  EXPECT_EQ(stmt->ResultSchema().column(1).type, common::ValueType::kInt);
}

TEST_F(PhoenixTest, StepTimersPopulated) {
  // Asserts persisted-path step timers; pin the result cache off.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_.ConnectPhoenix("PHOENIX_RESULT_CACHE=0"));
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM items WHERE id < 5"));
  const PhoenixStats& stats = phoenix_conn->stats();
  EXPECT_EQ(stats.parse.count.load(), 1u);
  EXPECT_EQ(stats.metadata_probe.count.load(), 1u);
  EXPECT_EQ(stats.create_table.count.load(), 1u);
  EXPECT_EQ(stats.load_result.count.load(), 1u);
  EXPECT_EQ(stats.reopen.count.load(), 1u);
  EXPECT_EQ(stats.queries_persisted.load(), 1u);
  common::Row row;
  while (stmt->Fetch(&row).value()) {
  }
  EXPECT_EQ(stats.fetch.count.load(), 4u);
}

TEST_F(PhoenixTest, CloseCursorDropsResultArtifacts) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM items WHERE id < 5"));
  std::string table =
      static_cast<PhoenixStatement*>(stmt.get())->result_table();
  PHX_ASSERT_OK(stmt->CloseCursor());
  EXPECT_FALSE(h_.QueryAll("SELECT COUNT(*) FROM " + table).ok());
}

TEST_F(PhoenixTest, ModificationWritesStatusTable) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE items SET qty = 0 WHERE id <= 3"));
  EXPECT_EQ(stmt->RowCount(), 3);

  auto status_rows = h_.QueryAll(
      "SELECT rows_affected FROM phoenix_status WHERE owner = '" +
      phoenix_conn->owner_id() + "'");
  ASSERT_TRUE(status_rows.ok());
  ASSERT_EQ(status_rows->size(), 1u);
  EXPECT_EQ((*status_rows)[0][0].AsInt(), 3);
}

TEST_F(PhoenixTest, StatementErrorsPassThroughUnchanged) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  auto st = stmt->ExecDirect("SELECT * FROM missing");
  EXPECT_EQ(st.code(), common::StatusCode::kNotFound);
  auto dup = stmt->ExecDirect(
      "INSERT INTO items VALUES (1, 'dup', 0)");
  EXPECT_EQ(dup.code(), common::StatusCode::kConstraintViolation);
}

TEST_F(PhoenixTest, DdlPassesThrough) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("CREATE TABLE made_by_phx (a INTEGER)"));
  EXPECT_TRUE(h_.QueryAll("SELECT COUNT(*) FROM made_by_phx").ok());
}

TEST_F(PhoenixTest, TransactionsCommitAndRollback) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  EXPECT_TRUE(phoenix_conn->in_transaction());
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE items SET qty = 1 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));
  EXPECT_FALSE(phoenix_conn->in_transaction());
  auto rows = h_.QueryAll("SELECT qty FROM items WHERE id = 1");
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE items SET qty = 1 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  rows = h_.QueryAll("SELECT qty FROM items WHERE id = 1");
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
}

TEST_F(PhoenixTest, QueryInsideTransactionSeesOwnWrites) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE items SET qty = 999 WHERE id = 1"));
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt2, conn->CreateStatement());
  PHX_ASSERT_OK(stmt2->ExecDirect("SELECT qty FROM items WHERE id = 1"));
  common::Row row;
  ASSERT_TRUE(stmt2->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 999);
  PHX_ASSERT_OK(stmt2->CloseCursor());
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));
}

TEST_F(PhoenixTest, ProcedureExecPassthrough) {
  PHX_ASSERT_OK(h_.Exec(
      "CREATE PROCEDURE bump (@n INTEGER) AS "
      "UPDATE items SET qty = qty + @n WHERE id = 1"));
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("EXEC bump 5"));
  auto rows = h_.QueryAll("SELECT qty FROM items WHERE id = 1");
  EXPECT_EQ((*rows)[0][0].AsInt(), 15);
}

TEST_F(PhoenixTest, MultipleStatementsOneConnection) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt1, conn->CreateStatement());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt2, conn->CreateStatement());
  PHX_ASSERT_OK(stmt1->ExecDirect("SELECT id FROM items WHERE grp = 'g0'"));
  PHX_ASSERT_OK(stmt2->ExecDirect("SELECT id FROM items WHERE grp = 'g1'"));
  auto rows1 = stmt1->FetchBlock(1000);
  auto rows2 = stmt2->FetchBlock(1000);
  ASSERT_TRUE(rows1.ok());
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(rows1->size(), 20u);
  EXPECT_EQ(rows2->size(), 20u);
}

TEST_F(PhoenixTest, SessionContextTempTableVisible) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("CREATE TEMP TABLE scratch (k INTEGER)"));
  PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO scratch VALUES (1)"));
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM scratch"));
  common::Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 1);
}

TEST_F(PhoenixTest, EmptyResultSetDeliveredCleanly) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectPhoenix());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM items WHERE id > 9999"));
  common::Row row;
  auto more = stmt->Fetch(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST_F(PhoenixTest, StatusTrackingCanBeDisabled) {
  // Ablation D5 (DESIGN.md): PHOENIX_STATUS=off removes the per-update
  // transaction + status-table write.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_.ConnectPhoenix("PHOENIX_STATUS=off"));
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE items SET qty = 0 WHERE id <= 3"));
  EXPECT_EQ(stmt->RowCount(), 3);
  EXPECT_EQ(phoenix_conn->stats().status_write.count.load(), 0u);
  auto status_rows = h_.QueryAll(
      "SELECT COUNT(*) FROM phoenix_status WHERE owner = '" +
      phoenix_conn->owner_id() + "'");
  ASSERT_TRUE(status_rows.ok());
  EXPECT_EQ((*status_rows)[0][0].AsInt(), 0);
}

TEST_F(PhoenixTest, DistinctResultTablePerStatement) {
  // Asserts per-statement result tables, a persisted-path artifact; pin
  // the result cache off.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_.ConnectPhoenix("PHOENIX_RESULT_CACHE=0"));
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt1, conn->CreateStatement());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt2, conn->CreateStatement());
  PHX_ASSERT_OK(stmt1->ExecDirect("SELECT id FROM items WHERE id = 1"));
  PHX_ASSERT_OK(stmt2->ExecDirect("SELECT id FROM items WHERE id = 2"));
  EXPECT_NE(static_cast<PhoenixStatement*>(stmt1.get())->result_table(),
            static_cast<PhoenixStatement*>(stmt2.get())->result_table());
}

}  // namespace
}  // namespace phoenix::phx
