#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Value;
using phoenix::testing::ServerHarness;
using phoenix::testing::TempDir;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.db.data_dir = dir_.path();
    auto server = SimulatedServer::Start(options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(server).value();
  }

  SessionId MustConnect() {
    ConnectRequest request;
    request.user = "tester";
    auto sid = server_->Connect(request);
    EXPECT_TRUE(sid.ok());
    return sid.ok() ? *sid : 0;
  }

  TempDir dir_;
  std::unique_ptr<SimulatedServer> server_;
};

TEST_F(ServerTest, ConnectRequiresUser) {
  ConnectRequest anonymous;
  EXPECT_FALSE(server_->Connect(anonymous).ok());
}

TEST_F(ServerTest, DisconnectRemovesSession) {
  SessionId sid = MustConnect();
  EXPECT_EQ(server_->SessionCount(), 1u);
  PHX_ASSERT_OK(server_->Disconnect(sid));
  EXPECT_EQ(server_->SessionCount(), 0u);
  EXPECT_FALSE(server_->Execute(sid, "SELECT 1").ok());
}

TEST_F(ServerTest, ExecuteAndFetch) {
  SessionId sid = MustConnect();
  PHX_ASSERT_OK(
      server_->Execute(sid, "CREATE TABLE t (a INTEGER)").status());
  PHX_ASSERT_OK(
      server_->Execute(sid, "INSERT INTO t VALUES (1), (2)").status());
  auto q = server_->Execute(sid, "SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(q.ok());
  auto rows = server_->Fetch(sid, q->cursor, 10);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
}

TEST_F(ServerTest, CrashRejectsAllCalls) {
  SessionId sid = MustConnect();
  server_->Crash();
  EXPECT_FALSE(server_->IsUp());
  EXPECT_TRUE(server_->Ping().IsConnectionLevel());
  EXPECT_TRUE(server_->Execute(sid, "SELECT 1").status().IsConnectionLevel());
  ConnectRequest request;
  request.user = "x";
  EXPECT_TRUE(server_->Connect(request).status().IsConnectionLevel());
}

TEST_F(ServerTest, StaleSessionAfterRestartIsConnectionError) {
  SessionId sid = MustConnect();
  server_->Crash();
  PHX_ASSERT_OK(server_->Restart());
  auto st = server_->Execute(sid, "SELECT 1");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.status().IsConnectionLevel());
}

TEST_F(ServerTest, RestartIsIdempotentWhenUp) {
  PHX_ASSERT_OK(server_->Restart());
  EXPECT_TRUE(server_->IsUp());
}

TEST_F(ServerTest, CommittedDataSurvivesCrashRestart) {
  SessionId sid = MustConnect();
  PHX_ASSERT_OK(
      server_->Execute(sid, "CREATE TABLE t (a INTEGER)").status());
  PHX_ASSERT_OK(server_->Execute(sid, "INSERT INTO t VALUES (7)").status());
  server_->Crash();
  PHX_ASSERT_OK(server_->Restart());
  SessionId sid2 = MustConnect();
  auto q = server_->Execute(sid2, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(q.ok());
  auto rows = server_->Fetch(sid2, q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 1);
}

TEST_F(ServerTest, ActiveTransactionDiesWithCrash) {
  SessionId sid = MustConnect();
  PHX_ASSERT_OK(
      server_->Execute(sid, "CREATE TABLE t (a INTEGER)").status());
  PHX_ASSERT_OK(server_->Execute(sid, "BEGIN TRANSACTION").status());
  PHX_ASSERT_OK(server_->Execute(sid, "INSERT INTO t VALUES (1)").status());
  server_->Crash();
  PHX_ASSERT_OK(server_->Restart());
  SessionId sid2 = MustConnect();
  auto q = server_->Execute(sid2, "SELECT COUNT(*) FROM t");
  auto rows = server_->Fetch(sid2, q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 0);
}

TEST_F(ServerTest, TempTableVanishesWithCrashButNotPersistent) {
  SessionId sid = MustConnect();
  PHX_ASSERT_OK(
      server_->Execute(sid, "CREATE TABLE base (a INTEGER)").status());
  PHX_ASSERT_OK(
      server_->Execute(sid, "CREATE TEMP TABLE probe (k INTEGER)").status());
  server_->Crash();
  PHX_ASSERT_OK(server_->Restart());
  SessionId sid2 = MustConnect();
  EXPECT_TRUE(server_->Execute(sid2, "SELECT COUNT(*) FROM base").ok());
  EXPECT_FALSE(server_->Execute(sid2, "SELECT COUNT(*) FROM probe").ok());
}

TEST_F(ServerTest, OpenCursorLostOnCrash) {
  SessionId sid = MustConnect();
  PHX_ASSERT_OK(
      server_->Execute(sid, "CREATE TABLE t (a INTEGER)").status());
  PHX_ASSERT_OK(
      server_->Execute(sid, "INSERT INTO t VALUES (1), (2)").status());
  auto q = server_->Execute(sid, "SELECT a FROM t");
  ASSERT_TRUE(q.ok());
  server_->Crash();
  PHX_ASSERT_OK(server_->Restart());
  EXPECT_TRUE(
      server_->Fetch(sid, q->cursor, 1).status().IsConnectionLevel());
}

TEST_F(ServerTest, ConcurrentClientsOnDistinctSessions) {
  SessionId setup = MustConnect();
  PHX_ASSERT_OK(server_->Execute(
                          setup,
                          "CREATE TABLE counters (id INTEGER PRIMARY KEY, "
                          "n INTEGER)")
                    .status());
  for (int i = 0; i < 8; ++i) {
    PHX_ASSERT_OK(server_->Execute(setup, "INSERT INTO counters VALUES (" +
                                              std::to_string(i) + ", 0)")
                      .status());
  }
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      ConnectRequest request;
      request.user = "worker";
      auto sid = server_->Connect(request);
      if (!sid.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 50; ++i) {
        auto st = server_->Execute(
            *sid, "UPDATE counters SET n = n + 1 WHERE id = " +
                      std::to_string(c));
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto q = server_->Execute(setup, "SELECT SUM(n) FROM counters");
  auto rows = server_->Fetch(setup, q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 400);
}

TEST_F(ServerTest, CrashDuringConcurrentTrafficIsSafe) {
  SessionId setup = MustConnect();
  PHX_ASSERT_OK(server_->Execute(
                          setup,
                          "CREATE TABLE t (id INTEGER PRIMARY KEY, "
                          "n INTEGER)")
                    .status());
  PHX_ASSERT_OK(
      server_->Execute(setup, "INSERT INTO t VALUES (1, 0)").status());

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        ConnectRequest request;
        request.user = "w";
        auto sid = server_->Connect(request);
        if (!sid.ok()) continue;
        server_->Execute(*sid, "UPDATE t SET n = n + 1 WHERE id = 1");
      }
    });
  }
  for (int k = 0; k < 3; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server_->Crash();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    PHX_ASSERT_OK(server_->Restart());
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  // The table still exists and holds a consistent counter.
  SessionId sid = MustConnect();
  auto q = server_->Execute(sid, "SELECT n FROM t WHERE id = 1");
  ASSERT_TRUE(q.ok());
  auto rows = server_->Fetch(sid, q->cursor, 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_GE(rows->rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace phoenix::engine
