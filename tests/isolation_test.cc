// Anomaly matrix for the MVCC snapshot-read path (DESIGN.md §15), plus the
// PHOENIX_MVCC=0 legacy locking behavior it replaced. Each test names the
// isolation property it pins down.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "engine/session.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Schema;
using common::Value;
using common::ValueType;
using phoenix::testing::TempDir;

class IsolationTest : public ::testing::Test {
 protected:
  void Open(int mvcc) {
    DatabaseOptions options;
    options.data_dir = dir_.path();
    // Short lock timeout so "writer blocks" manifests as a quick Aborted
    // status rather than a hang.
    options.lock_timeout = std::chrono::milliseconds(100);
    options.mvcc = mvcc;
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  TablePtr MakeTable(const std::string& name) {
    Schema schema({{"id", ValueType::kInt, false},
                   {"v", ValueType::kString, true}});
    Transaction* txn = db_->Begin(0);
    EXPECT_TRUE(
        db_->CreateTable(txn, name, schema, {"id"}, false, false, 0).ok());
    EXPECT_TRUE(db_->Commit(txn).ok());
    return db_->ResolveTable(name, 0).value();
  }

  void InsertCommitted(const TablePtr& t, int id, const std::string& v) {
    Transaction* txn = db_->Begin(0);
    ASSERT_TRUE(
        db_->InsertRow(txn, t, {Value::Int(id), Value::String(v)}).ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }

  /// What a fresh autocommit reader sees for `id` ("" = not visible).
  std::string AutocommitRead(const TablePtr& t, int id) {
    Transaction* txn = db_->Begin(0);
    SnapshotPtr snap = db_->ReadSnapshot(txn);
    Row row;
    std::string out;
    if (t->LookupPkVisible({Value::Int(id)}, *snap, &row)) {
      out = row[1].AsString();
    }
    EXPECT_TRUE(db_->Commit(txn).ok());
    return out;
  }

  /// Drains a session cursor to completion.
  std::vector<Row> FetchAll(Session* s, CursorId cursor) {
    std::vector<Row> rows;
    while (true) {
      auto batch = s->Fetch(cursor, 16);
      EXPECT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch.ok()) return rows;
      for (Row& r : batch->rows) rows.push_back(std::move(r));
      if (batch->done) return rows;
    }
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

// An uncommitted insert is invisible to every concurrent snapshot — there
// are no dirty reads, with no read locks taken.
TEST_F(IsolationTest, NoDirtyReadOfUncommittedInsert) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  Transaction* writer = db_->Begin(0);
  ASSERT_TRUE(
      db_->InsertRow(writer, t, {Value::Int(1), Value::String("dirty")}).ok());

  EXPECT_EQ(AutocommitRead(t, 1), "");

  ASSERT_TRUE(db_->Commit(writer).ok());
  EXPECT_EQ(AutocommitRead(t, 1), "dirty");
}

// An uncommitted delete leaves the row visible to concurrent snapshots; a
// rollback makes the delete vanish entirely.
TEST_F(IsolationTest, PendingDeleteInvisibleUntilCommit) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  InsertCommitted(t, 1, "keep");

  Transaction* deleter = db_->Begin(0);
  {
    auto id = t->LookupPk({Value::Int(1)});
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db_->DeleteRow(deleter, t, id.value()).ok());
  }
  EXPECT_EQ(AutocommitRead(t, 1), "keep");
  ASSERT_TRUE(db_->Rollback(deleter).ok());
  EXPECT_EQ(AutocommitRead(t, 1), "keep");

  Transaction* deleter2 = db_->Begin(0);
  {
    auto id = t->LookupPk({Value::Int(1)});
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db_->DeleteRow(deleter2, t, id.value()).ok());
  }
  ASSERT_TRUE(db_->Commit(deleter2).ok());
  EXPECT_EQ(AutocommitRead(t, 1), "");
}

// READ COMMITTED at statement granularity: each autocommit statement pins a
// fresh snapshot, so it observes everything committed before it started.
TEST_F(IsolationTest, AutocommitStatementsSeeLatestCommit) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  InsertCommitted(t, 1, "v1");
  EXPECT_EQ(AutocommitRead(t, 1), "v1");

  Transaction* writer = db_->Begin(0);
  auto id = t->LookupPk({Value::Int(1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db_->UpdateRow(writer, t, id.value(),
                             {Value::Int(1), Value::String("v2")})
                  .ok());
  ASSERT_TRUE(db_->Commit(writer).ok());

  EXPECT_EQ(AutocommitRead(t, 1), "v2");
}

// Inside an explicit transaction the snapshot is transaction-scoped: reads
// repeat even when other transactions commit in between (no non-repeatable
// reads for explicit transactions).
TEST_F(IsolationTest, ExplicitTxnSnapshotIsStable) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  InsertCommitted(t, 1, "old");

  Transaction* reader = db_->Begin(0);
  SnapshotPtr snap = db_->ReadSnapshot(reader);
  Row row;
  ASSERT_TRUE(t->LookupPkVisible({Value::Int(1)}, *snap, &row));
  EXPECT_EQ(row[1].AsString(), "old");

  // Concurrent committed update + insert.
  Transaction* writer = db_->Begin(0);
  auto id = t->LookupPk({Value::Int(1)});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(db_->UpdateRow(writer, t, id.value(),
                             {Value::Int(1), Value::String("new")})
                  .ok());
  ASSERT_TRUE(
      db_->InsertRow(writer, t, {Value::Int(2), Value::String("ins")}).ok());
  ASSERT_TRUE(db_->Commit(writer).ok());

  // Same snapshot: still the old world — update invisible, insert absent.
  SnapshotPtr again = db_->ReadSnapshot(reader);
  EXPECT_EQ(again.get(), snap.get());
  ASSERT_TRUE(t->LookupPkVisible({Value::Int(1)}, *snap, &row));
  EXPECT_EQ(row[1].AsString(), "old");
  EXPECT_FALSE(t->LookupPkVisible({Value::Int(2)}, *snap, &row));
  ASSERT_TRUE(db_->Commit(reader).ok());

  EXPECT_EQ(AutocommitRead(t, 1), "new");
  EXPECT_EQ(AutocommitRead(t, 2), "ins");
}

// A transaction reads its own uncommitted writes through its snapshot.
TEST_F(IsolationTest, ReadYourOwnWrites) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  SnapshotPtr snap = db_->ReadSnapshot(txn);  // pinned before the write
  ASSERT_TRUE(
      db_->InsertRow(txn, t, {Value::Int(7), Value::String("mine")}).ok());
  Row row;
  ASSERT_TRUE(t->LookupPkVisible({Value::Int(7)}, *snap, &row));
  EXPECT_EQ(row[1].AsString(), "mine");
  ASSERT_TRUE(db_->Rollback(txn).ok());
  EXPECT_EQ(AutocommitRead(t, 7), "");
}

// Write-write conflicts are unchanged by MVCC: the second writer times out
// on the first writer's X lock and is told to abort.
TEST_F(IsolationTest, WriteWriteConflictStillAborts) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  InsertCommitted(t, 1, "base");
  auto id = t->LookupPk({Value::Int(1)});
  ASSERT_TRUE(id.ok());

  Transaction* first = db_->Begin(0);
  ASSERT_TRUE(db_->UpdateRow(first, t, id.value(),
                             {Value::Int(1), Value::String("first")})
                  .ok());

  Transaction* second = db_->Begin(0);
  common::Status conflict = db_->UpdateRow(
      second, t, id.value(), {Value::Int(1), Value::String("second")});
  EXPECT_FALSE(conflict.ok());
  ASSERT_TRUE(db_->Rollback(second).ok());
  ASSERT_TRUE(db_->Commit(first).ok());
  EXPECT_EQ(AutocommitRead(t, 1), "first");
}

// Version GC never reclaims a version some pinned snapshot can still see;
// once the pin drops, the next commit on the slot prunes it.
TEST_F(IsolationTest, GcSparesPinnedVersionsAndPrunesAfterRelease) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  InsertCommitted(t, 1, "v0");
  auto id = t->LookupPk({Value::Int(1)});
  ASSERT_TRUE(id.ok());

  // Pin a snapshot at v0.
  Transaction* reader = db_->Begin(0);
  SnapshotPtr snap = db_->ReadSnapshot(reader);

  // Overwrite the row several times; each commit GCs what it can.
  for (int i = 1; i <= 4; ++i) {
    Transaction* w = db_->Begin(0);
    ASSERT_TRUE(db_->UpdateRow(w, t, id.value(),
                               {Value::Int(1),
                                Value::String("v" + std::to_string(i))})
                    .ok());
    ASSERT_TRUE(db_->Commit(w).ok());
  }

  // The pinned snapshot still resolves to v0 — its version must survive.
  Row row;
  ASSERT_TRUE(t->LookupPkVisible({Value::Int(1)}, *snap, &row));
  EXPECT_EQ(row[1].AsString(), "v0");
  // v0's version plus at least the newest must be present.
  EXPECT_GE(t->TotalVersionCount(), 2u);

  // Drop the pin; one more committed update prunes the history down to the
  // single newest version.
  snap.reset();
  ASSERT_TRUE(db_->Commit(reader).ok());
  Transaction* w = db_->Begin(0);
  ASSERT_TRUE(db_->UpdateRow(w, t, id.value(),
                             {Value::Int(1), Value::String("v5")})
                  .ok());
  ASSERT_TRUE(db_->Commit(w).ok());
  EXPECT_EQ(t->TotalVersionCount(), 1u);
  EXPECT_EQ(AutocommitRead(t, 1), "v5");
}

// Concurrency smoke: one writer thread updating a hot row, one reader thread
// doing autocommit point reads — readers never block, never see a torn
// value, and always see some committed version.
TEST_F(IsolationTest, ConcurrentReadersNeverBlockOrTear) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  InsertCommitted(t, 1, "gen-0");
  auto id = t->LookupPk({Value::Int(1)});
  ASSERT_TRUE(id.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    for (int i = 1; i <= 300; ++i) {
      Transaction* w = db_->Begin(0);
      if (db_->UpdateRow(w, t, id.value(),
                         {Value::Int(1),
                          Value::String("gen-" + std::to_string(i))})
              .ok()) {
        db_->Commit(w).ok();
      } else {
        db_->Rollback(w).ok();
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      std::string v = AutocommitRead(t, 1);
      if (v.rfind("gen-", 0) != 0) bad.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(AutocommitRead(t, 1), "gen-300");
}

// Commit publication is all-or-nothing even for large write sets: commit
// stamping runs outside the publish lock (so bulk commits do not serialize
// other commits), and a concurrently pinned snapshot must wait out any
// in-flight stamping at or below its timestamp — a reader sees none of the
// bulk insert or all of it, never a prefix.
TEST_F(IsolationTest, BulkCommitVisibilityIsAtomic) {
  Open(/*mvcc=*/1);
  TablePtr t = MakeTable("t");
  constexpr size_t kRows = 400;

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    Transaction* w = db_->Begin(0);
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(static_cast<int64_t>(i)),
                      Value::String("bulk")});
    }
    EXPECT_TRUE(db_->InsertBulk(w, t, std::move(rows)).ok());
    EXPECT_TRUE(db_->Commit(w).ok());
    done.store(true);
  });
  std::thread reader([&] {
    while (!done.load()) {
      Transaction* r = db_->Begin(0);
      SnapshotPtr snap = db_->ReadSnapshot(r);
      size_t n = t->SnapshotRowsAsOf(*snap).size();
      if (n != 0 && n != kRows) torn.fetch_add(1);
      db_->Commit(r).ok();
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(t->live_row_count(), kRows);
}

// ---------------------------------------------------------------------------
// Session/cursor level
// ---------------------------------------------------------------------------

class CursorIsolationTest : public IsolationTest {
 protected:
  /// Seeds `rows` rows through a setup session.
  void Seed(int rows) {
    Session setup(99, db_.get());
    ASSERT_TRUE(setup
                    .Execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                             "v VARCHAR)")
                    .ok());
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(setup
                      .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                               ", 'orig')")
                      .ok());
    }
  }
};

// The satellite regression for the deleted lazy-cursor carve-out: an open,
// partially-fetched cursor no longer blocks a writer. On the legacy locking
// path (and the pre-MVCC seed) the cursor's transaction retains its table-S
// lock until the cursor drains, so the same UPDATE aborts on lock timeout —
// see LegacyModeOpenCursorBlocksWriter below for the inverted expectation.
TEST_F(CursorIsolationTest, OpenCursorDoesNotBlockWriter) {
  Open(/*mvcc=*/1);
  Seed(200);

  // Tiny send buffer => the scan stays open (lazy) after Execute.
  Session reader(1, db_.get(), /*send_buffer_bytes=*/128);
  auto q = reader.Execute("SELECT * FROM t");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);
  ASSERT_TRUE(q->lazy);
  auto first = reader.Fetch(q->cursor, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->done);

  // A concurrent writer succeeds immediately.
  Session writer(2, db_.get());
  auto upd = writer.Execute("UPDATE t SET v = 'new' WHERE id = 5");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->rows_affected, 1);

  // ...and the open cursor still sees its snapshot: every row reads 'orig'.
  std::vector<Row> rest = FetchAll(&reader, q->cursor);
  size_t seen = first->rows.size() + rest.size();
  EXPECT_EQ(seen, 200u);
  for (const Row& r : rest) EXPECT_EQ(r[1].AsString(), "orig");

  // A fresh statement sees the update.
  Session checker(3, db_.get());
  auto chk = checker.Execute("SELECT v FROM t WHERE id = 5");
  ASSERT_TRUE(chk.ok());
  auto rows = FetchAll(&checker, chk->cursor);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "new");
}

// Legacy escape hatch (PHOENIX_MVCC=0): the same schedule blocks — the open
// cursor's table-S lock makes the writer time out. This documents the seed
// behavior the tentpole removed.
TEST_F(CursorIsolationTest, LegacyModeOpenCursorBlocksWriter) {
  Open(/*mvcc=*/0);
  Seed(200);

  Session reader(1, db_.get(), /*send_buffer_bytes=*/128);
  auto q = reader.Execute("SELECT * FROM t");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->lazy);
  auto first = reader.Fetch(q->cursor, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->done);

  Session writer(2, db_.get());
  auto upd = writer.Execute("UPDATE t SET v = 'new' WHERE id = 5");
  EXPECT_FALSE(upd.ok());

  // Draining the cursor releases the lock; the writer then succeeds.
  FetchAll(&reader, q->cursor);
  auto retry = writer.Execute("UPDATE t SET v = 'new' WHERE id = 5");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows_affected, 1);
}

// Legacy escape hatch, explicit-transaction flavor: completing other
// statements inside the same transaction triggers the READ COMMITTED
// statement-end read-lock release, which must NOT strip an open lazy
// cursor's table-S scan lock — on the legacy path those locks are the only
// thing keeping the cursor's image stable.
TEST_F(CursorIsolationTest, LegacyModeOpenCursorKeepsLocksAcrossStatements) {
  Open(/*mvcc=*/0);
  Seed(200);

  Session reader(1, db_.get(), /*send_buffer_bytes=*/128);
  ASSERT_TRUE(reader.Execute("BEGIN").ok());
  auto q = reader.Execute("SELECT * FROM t");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->lazy);
  auto first = reader.Fetch(q->cursor, 4);
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->done);

  // A materialized query and a write, both in the same transaction; each
  // ends with the statement-level read-lock release.
  auto count = reader.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  FetchAll(&reader, count->cursor);
  ASSERT_TRUE(reader
                  .Execute("CREATE TABLE u (id INTEGER PRIMARY KEY, "
                           "v VARCHAR)")
                  .ok());
  ASSERT_TRUE(reader.Execute("INSERT INTO u VALUES (1, 'x')").ok());

  // The open cursor's scan lock must still be held: a writer times out.
  Session writer(2, db_.get());
  auto upd = writer.Execute("UPDATE t SET v = 'new' WHERE id = 5");
  EXPECT_FALSE(upd.ok())
      << "a later statement dropped the open lazy cursor's scan lock";

  // The cursor drains entirely from its original image.
  std::vector<Row> rest = FetchAll(&reader, q->cursor);
  EXPECT_EQ(first->rows.size() + rest.size(), 200u);
  for (const Row& r : rest) EXPECT_EQ(r[1].AsString(), "orig");

  ASSERT_TRUE(reader.Execute("COMMIT").ok());
  auto retry = writer.Execute("UPDATE t SET v = 'new' WHERE id = 5");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows_affected, 1);
}

// A long-lived cursor keeps returning its snapshot even while writers churn
// the table underneath it (update + delete + insert all invisible).
TEST_F(CursorIsolationTest, OpenCursorIsSnapshotStableUnderChurn) {
  Open(/*mvcc=*/1);
  Seed(100);

  Session reader(1, db_.get(), /*send_buffer_bytes=*/128);
  auto q = reader.Execute("SELECT * FROM t");
  ASSERT_TRUE(q.ok());
  auto first = reader.Fetch(q->cursor, 1);
  ASSERT_TRUE(first.ok());

  Session writer(2, db_.get());
  ASSERT_TRUE(writer.Execute("UPDATE t SET v = 'mut'").ok());
  ASSERT_TRUE(writer.Execute("DELETE FROM t WHERE id >= 90").ok());
  ASSERT_TRUE(writer.Execute("INSERT INTO t VALUES (1000, 'late')").ok());

  std::vector<Row> rest = FetchAll(&reader, q->cursor);
  EXPECT_EQ(first->rows.size() + rest.size(), 100u);
  for (const Row& r : rest) {
    EXPECT_EQ(r[1].AsString(), "orig");
    EXPECT_LT(r[0].AsInt(), 1000);
  }

  // Post-churn statement sees the new world: 90 mutated + 1 late insert.
  Session checker(3, db_.get());
  auto chk = checker.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(chk.ok());
  auto rows = FetchAll(&checker, chk->cursor);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 91);
}

}  // namespace
}  // namespace phoenix::engine
