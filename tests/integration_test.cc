#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"
#include "tpc/tpch.h"
#include "wire/tcp.h"

namespace phoenix {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::CrashAndRestartAsync;
using phoenix::testing::ServerHarness;
using phoenix::testing::TempDir;

/// End-to-end scenarios across the whole stack: TPC-H data, Phoenix driver,
/// crashes, recovery — the paper's demo flows as tests.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness_ = new ServerHarness();
    tpc::TpchConfig config;
    config.scale_factor = 0.002;
    tpc::TpchGenerator gen(config);
    ASSERT_TRUE(gen.Load(harness_->server()).ok());
  }
  static void TearDownTestSuite() {
    delete harness_;
    harness_ = nullptr;
  }

  static ServerHarness* harness_;
};

ServerHarness* IntegrationTest::harness_ = nullptr;

TEST_F(IntegrationTest, PaperScenarioQ11CrashNearEndOfFetch) {
  // Paper Section 3.4's experiment: submit Q11, fetch until near the end,
  // crash, and measure that Phoenix recovers and answers the outstanding
  // fetch. Row-at-a-time delivery, as in the paper's setup — with the fast
  // path on, Q11's small result is fully piggybacked and no fetch would be
  // outstanding at the crash. The result cache is pinned off for the same
  // reason: a client-drained result leaves nothing outstanding either.
  auto conn = harness_->ConnectPhoenix(
      "PHOENIX_REPOSITION=server;PHOENIX_PREFETCH=0;PHOENIX_RESULT_CACHE=0");
  ASSERT_TRUE(conn.ok());
  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn->get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect(tpc::TpchQuery(11, 0.0)));

  // Count total first via native.
  auto all = harness_->QueryAll(tpc::TpchQuery(11, 0.0));
  ASSERT_TRUE(all.ok());
  size_t total = all->size();
  ASSERT_GT(total, 5u);

  Row row;
  for (size_t i = 0; i + 3 < total; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
  }
  std::thread restarter = CrashAndRestartAsync(harness_->server(), 50);
  size_t tail = 0;
  while (stmt->Fetch(&row).value()) ++tail;
  restarter.join();
  EXPECT_EQ(tail, 3u);
  EXPECT_GE(phoenix_conn->recovery_count(), 1u);
  PHX_ASSERT_OK(stmt->CloseCursor());
}

TEST_F(IntegrationTest, TpchQueriesIdenticalThroughNativeAndPhoenix) {
  auto phoenix_conn = harness_->ConnectPhoenix();
  ASSERT_TRUE(phoenix_conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto phoenix_stmt,
                           phoenix_conn.value()->CreateStatement());
  // A representative subset (full 22 covered in tpch_test).
  for (int q : {1, 3, 5, 6, 11, 12, 14, 19}) {
    std::string sql = tpc::TpchQuery(q, 0.001);
    auto native_rows = harness_->QueryAll(sql);
    ASSERT_TRUE(native_rows.ok()) << "Q" << q;
    PHX_ASSERT_OK(phoenix_stmt->ExecDirect(sql));
    auto phoenix_rows = phoenix_stmt->FetchBlock(1'000'000);
    ASSERT_TRUE(phoenix_rows.ok()) << "Q" << q;
    ASSERT_EQ(native_rows->size(), phoenix_rows->size()) << "Q" << q;
    for (size_t i = 0; i < native_rows->size(); ++i) {
      EXPECT_EQ((*native_rows)[i], (*phoenix_rows)[i])
          << "Q" << q << " row " << i;
    }
    PHX_ASSERT_OK(phoenix_stmt->CloseCursor());
  }
}

TEST_F(IntegrationTest, RefreshFunctionsThroughPhoenixWithCrash) {
  ServerHarness h;
  tpc::TpchConfig config;
  config.scale_factor = 0.001;
  tpc::TpchGenerator gen(config);
  ASSERT_TRUE(gen.Load(h.server()).ok());

  auto conn = h.ConnectPhoenix("PHOENIX_RETRY_MS=10");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());

  int64_t before =
      (*h.QueryAll("SELECT COUNT(*) FROM orders"))[0][0].AsInt();

  auto rf1 = gen.Rf1Transactions();
  // First transaction commits normally.
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  for (const auto& sql : rf1[0]) PHX_ASSERT_OK(stmt->ExecDirect(sql));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));

  // Second transaction is interrupted by a crash mid-way; the app-level
  // handler retries it (the paper's "transaction failure is normal").
  std::thread restarter = CrashAndRestartAsync(h.server(), 40);
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto st = stmt->ExecDirect("BEGIN TRANSACTION");
    if (!st.ok()) continue;
    bool failed = false;
    for (const auto& sql : rf1[1]) {
      st = stmt->ExecDirect(sql);
      if (!st.ok()) {
        failed = true;
        break;
      }
    }
    if (failed) {
      stmt->ExecDirect("ROLLBACK").ok();
      continue;
    }
    st = stmt->ExecDirect("COMMIT");
    if (st.ok()) break;
  }
  restarter.join();

  int64_t after = (*h.QueryAll("SELECT COUNT(*) FROM orders"))[0][0].AsInt();
  EXPECT_EQ(after - before, gen.RfOrderCount());
}

TEST_F(IntegrationTest, PhoenixOverTcpSurvivesCrash) {
  // Full stack over a real socket: TCP host in front of the simulated
  // server, native driver over TCP, Phoenix on top.
  TempDir dir;
  engine::ServerOptions options;
  options.db.data_dir = dir.path();
  auto server = engine::SimulatedServer::Start(options);
  ASSERT_TRUE(server.ok());
  auto host = wire::TcpServerHost::Start(server->get(), 0);
  ASSERT_TRUE(host.ok());

  odbc::DriverManager dm;
  uint16_t port = host.value()->port();
  auto native = std::make_shared<odbc::NativeDriver>(
      "native", [port](const odbc::ConnectionString&) {
        return std::make_shared<wire::TcpClientTransport>("127.0.0.1", port);
      });
  PHX_ASSERT_OK(dm.RegisterDriver(native));
  PHX_ASSERT_OK(dm.RegisterDriver(
      std::make_shared<phx::PhoenixDriver>("phoenix", native)));

  {
    PHX_ASSERT_OK_AND_ASSIGN(auto setup, dm.Connect("DRIVER=native;UID=u"));
    PHX_ASSERT_OK_AND_ASSIGN(auto stmt, setup->CreateStatement());
    PHX_ASSERT_OK(stmt->ExecDirect("CREATE TABLE t (a INTEGER)"));
    PHX_ASSERT_OK(
        stmt->ExecDirect("INSERT INTO t VALUES (1),(2),(3),(4),(5),(6)"));
  }

  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn,
      dm.Connect("DRIVER=phoenix;UID=u;PHOENIX_DEADLINE_MS=8000;"
                 "PHOENIX_RETRY_MS=20"));
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT a FROM t ORDER BY a"));
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 2);

  std::thread restarter = CrashAndRestartAsync(server->get(), 60);
  std::vector<int64_t> tail;
  while (stmt->Fetch(&row).value()) tail.push_back(row[0].AsInt());
  restarter.join();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0], 3);
  EXPECT_EQ(tail[3], 6);

  host.value()->Stop();
}

TEST_F(IntegrationTest, DecisionSupportSessionWithManyQueriesAndCrashes) {
  auto conn = harness_->ConnectPhoenix("PHOENIX_REPOSITION=server");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());

  int crashes = 0;
  for (int q : {1, 6, 11, 14}) {
    PHX_ASSERT_OK(stmt->ExecDirect(tpc::TpchQuery(q, 0.001)));
    Row row;
    bool first = true;
    while (true) {
      auto more = stmt->Fetch(&row);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!*more) break;
      if (first && q == 11 && crashes == 0) {
        // Crash once, mid-session.
        std::thread restarter = CrashAndRestartAsync(harness_->server(), 40);
        restarter.join();
        ++crashes;
      }
      first = false;
    }
    PHX_ASSERT_OK(stmt->CloseCursor());
  }
  EXPECT_EQ(crashes, 1);
}

}  // namespace
}  // namespace phoenix
