#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "repl/log_shipper.h"
#include "repl/standby.h"
#include "test_util.h"

namespace phoenix::repl {
namespace {

using common::Row;
using common::StatusCode;
using engine::ServerOptions;
using engine::SimulatedServer;
using phoenix::testing::TempDir;

// ---------------------------------------------------------------------------
// Connection-string failover parsing (satellite: typed diag for bad entries)
// ---------------------------------------------------------------------------

TEST(ConnectionStringFailoverTest, EndpointsListsServerThenFailovers) {
  auto cs = odbc::ConnectionString::Parse(
      "DRIVER=native;SERVER=alpha;FAILOVER=beta, gamma:9000");
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  std::vector<std::string> endpoints = cs.value().Endpoints();
  ASSERT_EQ(endpoints.size(), 3u);
  EXPECT_EQ(endpoints[0], "alpha");
  EXPECT_EQ(endpoints[1], "beta");
  EXPECT_EQ(endpoints[2], "gamma:9000");
}

TEST(ConnectionStringFailoverTest, NoEndpointsWithoutServerOrFailover) {
  auto cs = odbc::ConnectionString::Parse("DRIVER=native;UID=tester");
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(cs.value().Endpoints().empty());
}

TEST(ConnectionStringFailoverTest, MalformedEndpointsRejectedWithTypedDiag) {
  const char* bad[] = {
      "SERVER=a;FAILOVER=b:0",      // port below range
      "SERVER=a;FAILOVER=b:65536",  // port above range
      "SERVER=a;FAILOVER=b:12x",    // non-numeric port
      "SERVER=a;FAILOVER=:1234",    // empty host
      "SERVER=a;FAILOVER=b:",       // empty port
      "SERVER=a;FAILOVER=b:1:2",    // two colons
      "SERVER=a;FAILOVER=b,,c",     // empty entry
  };
  for (const char* text : bad) {
    auto cs = odbc::ConnectionString::Parse(text);
    ASSERT_FALSE(cs.ok()) << text;
    EXPECT_EQ(cs.status().code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(cs.status().message().find("08001"), std::string::npos)
        << "diag record missing SQLSTATE tag for: " << text;
  }
}

// ---------------------------------------------------------------------------
// Two-server harness: primary with an attached LogShipper, standby with a
// StandbyNode pulling from it, and a driver manager whose transport factory
// routes by the SERVER= attribute ("primary" / "standby").
// ---------------------------------------------------------------------------

class ReplHarness {
 public:
  struct Options {
    LogShipperOptions ship;
    StandbyOptions standby;
    /// Tests that arm faults (or want a retention gap) start the applier
    /// themselves after staging the scenario.
    bool start_standby_node = true;
  };

  ReplHarness() : ReplHarness(Options()) {}

  explicit ReplHarness(Options options) {
    ServerOptions popts;
    popts.standby = 0;
    popts.db.data_dir = primary_dir_.path();
    auto primary = SimulatedServer::Start(popts);
    EXPECT_TRUE(primary.ok()) << primary.status().ToString();
    primary_ = std::move(primary).value();
    shipper_ = std::make_unique<LogShipper>(options.ship);
    shipper_->Attach(primary_.get());

    ServerOptions sopts;
    sopts.standby = 1;
    sopts.db.data_dir = standby_dir_.path();
    auto standby = SimulatedServer::Start(sopts);
    EXPECT_TRUE(standby.ok()) << standby.status().ToString();
    standby_ = std::move(standby).value();
    standby_node_ = std::make_unique<StandbyNode>(
        standby_.get(),
        [this] {
          return std::make_shared<wire::InProcessTransport>(
              primary_.get(), wire::NetworkModel::None());
        },
        options.standby);
    if (options.start_standby_node) {
      PHX_EXPECT_OK(standby_node_->Start());
    }

    auto factory = [this](const odbc::ConnectionString& cs)
        -> wire::ClientTransportPtr {
      SimulatedServer* target = cs.Get("SERVER", "primary") == "standby"
                                    ? standby_.get()
                                    : primary_.get();
      return std::make_shared<wire::InProcessTransport>(
          target, wire::NetworkModel::None());
    };
    native_ = std::make_shared<odbc::NativeDriver>("native", factory);
    EXPECT_TRUE(dm_.RegisterDriver(native_).ok());
    EXPECT_TRUE(dm_.RegisterDriver(
                       std::make_shared<phx::PhoenixDriver>("phoenix",
                                                            native_))
                    .ok());
  }

  ~ReplHarness() { standby_node_->Stop(); }

  SimulatedServer* primary() { return primary_.get(); }
  SimulatedServer* standby() { return standby_.get(); }
  LogShipper* shipper() { return shipper_.get(); }
  StandbyNode* node() { return standby_node_.get(); }
  odbc::Driver* native() { return native_.get(); }

  common::Result<odbc::ConnectionPtr> Connect(const std::string& conn_str) {
    return dm_.Connect(conn_str);
  }

  common::Result<odbc::ConnectionPtr> ConnectPhoenix(
      const std::string& extra = "") {
    std::string conn =
        "DRIVER=phoenix;UID=tester;SERVER=primary;FAILOVER=standby;"
        "PHOENIX_RETRY_MS=10;PHOENIX_DEADLINE_MS=8000;PHOENIX_RESULT_CACHE=0";
    if (!extra.empty()) conn += ";" + extra;
    return dm_.Connect(conn);
  }

  common::Status Exec(const std::string& sql,
                      const std::string& server = "primary") {
    PHX_ASSIGN_OR_RETURN(
        odbc::ConnectionPtr conn,
        dm_.Connect("DRIVER=native;UID=tester;SERVER=" + server));
    PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
    return stmt->ExecDirect(sql);
  }

  common::Result<std::vector<Row>> QueryAll(
      const std::string& sql, const std::string& server = "primary") {
    PHX_ASSIGN_OR_RETURN(
        odbc::ConnectionPtr conn,
        dm_.Connect("DRIVER=native;UID=tester;SERVER=" + server));
    PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
    PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));
    return stmt->FetchBlock(1'000'000);
  }

  /// Waits until the standby's durably applied LSN reaches the primary's
  /// ship-stream high-water mark.
  bool WaitCaughtUp(int timeout_ms = 10'000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (standby_node_->applied_lsn() == shipper_->end_lsn()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return standby_node_->applied_lsn() == shipper_->end_lsn();
  }

  uint32_t PrimaryDigest(const std::string& table) {
    return Digest(primary_.get(), table, /*logical=*/false);
  }
  uint32_t StandbyDigest(const std::string& table) {
    return Digest(standby_.get(), table, /*logical=*/false);
  }
  /// Layout-insensitive variant for workloads with rollbacks: aborted inserts
  /// leave slot holes only on the primary, so strict slot-order digests
  /// legitimately diverge there.
  uint32_t PrimaryLogicalDigest(const std::string& table) {
    return Digest(primary_.get(), table, /*logical=*/true);
  }
  uint32_t StandbyLogicalDigest(const std::string& table) {
    return Digest(standby_.get(), table, /*logical=*/true);
  }

 private:
  static uint32_t Digest(SimulatedServer* server, const std::string& table,
                         bool logical) {
    auto resolved = server->database()->ResolveTable(table, 0);
    EXPECT_TRUE(resolved.ok()) << table << ": "
                               << resolved.status().ToString();
    if (!resolved.ok()) return 0;
    return logical ? resolved.value()->LogicalDigest()
                   : resolved.value()->ContentDigest();
  }

  TempDir primary_dir_;
  TempDir standby_dir_;
  std::unique_ptr<LogShipper> shipper_;
  std::unique_ptr<SimulatedServer> primary_;
  std::unique_ptr<SimulatedServer> standby_;
  odbc::DriverManager dm_;
  odbc::DriverPtr native_;
  std::unique_ptr<StandbyNode> standby_node_;
};

/// Clears global injector state around a test (spec memos survive otherwise).
class FaultGuard {
 public:
  FaultGuard() { fault::FaultInjector::Global().Clear(); }
  ~FaultGuard() { fault::FaultInjector::Global().Clear(); }
};

// ---------------------------------------------------------------------------
// Health probe (satellite: ping carries {epoch, applied_lsn, role})
// ---------------------------------------------------------------------------

TEST(HealthProbeTest, PingReportsEpochAppliedLsnAndRole) {
  ReplHarness h;
  auto parse = [](const std::string& text) {
    return odbc::ConnectionString::Parse(text).value();
  };
  auto primary =
      h.native()->Probe(parse("DRIVER=native;UID=t;SERVER=primary"));
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  EXPECT_EQ(primary.value().role, Role::kPrimary);
  EXPECT_EQ(primary.value().epoch, 1u);

  auto standby =
      h.native()->Probe(parse("DRIVER=native;UID=t;SERVER=standby"));
  ASSERT_TRUE(standby.ok()) << standby.status().ToString();
  EXPECT_EQ(standby.value().role, Role::kStandby);
  EXPECT_EQ(standby.value().epoch, 1u);

  PHX_ASSERT_OK(h.Exec("CREATE TABLE probe_t (id INTEGER PRIMARY KEY)"));
  PHX_ASSERT_OK(h.Exec("INSERT INTO probe_t VALUES (1)"));
  ASSERT_TRUE(h.WaitCaughtUp());

  auto caught_up =
      h.native()->Probe(parse("DRIVER=native;UID=t;SERVER=standby"));
  ASSERT_TRUE(caught_up.ok());
  EXPECT_EQ(caught_up.value().applied_lsn, h.shipper()->end_lsn());
  EXPECT_GT(caught_up.value().applied_lsn, 0u);

  auto down_probe = [&] {
    h.primary()->Crash();
    auto r = h.native()->Probe(parse("DRIVER=native;UID=t;SERVER=primary"));
    PHX_EXPECT_OK(h.primary()->Restart());
    return r;
  }();
  EXPECT_FALSE(down_probe.ok());  // "down" is distinguishable from "standby"
}

// ---------------------------------------------------------------------------
// Stream correctness
// ---------------------------------------------------------------------------

TEST(ReplStreamTest, StandbyConvergesOnRandomWorkload) {
  ReplHarness h;
  PHX_ASSERT_OK(h.Exec(
      "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER, "
      "note VARCHAR)"));
  PHX_ASSERT_OK(h.Exec("CREATE TABLE audit (id INTEGER PRIMARY KEY, "
                       "v INTEGER)"));

  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn, h.Connect("DRIVER=native;UID=tester;SERVER=primary"));
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  std::mt19937 rng(42);
  int next_id = 1;
  int next_audit = 1;
  std::vector<int> live;
  for (int round = 0; round < 40; ++round) {
    bool in_txn = rng() % 4 == 0;
    if (in_txn) PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
    int ops = 1 + static_cast<int>(rng() % 5);
    for (int op = 0; op < ops; ++op) {
      switch (rng() % 4) {
        case 0:
        case 1: {
          int id = next_id++;
          PHX_ASSERT_OK(stmt->ExecDirect(
              "INSERT INTO acct VALUES (" + std::to_string(id) + ", " +
              std::to_string(id * 10) + ", 'n" + std::to_string(id) + "')"));
          live.push_back(id);
          break;
        }
        case 2: {
          if (live.empty()) break;
          int id = live[rng() % live.size()];
          PHX_ASSERT_OK(stmt->ExecDirect(
              "UPDATE acct SET bal = " + std::to_string(id + 7) +
              " WHERE id = " + std::to_string(id)));
          break;
        }
        case 3: {
          if (live.empty()) break;
          size_t at = rng() % live.size();
          PHX_ASSERT_OK(stmt->ExecDirect(
              "DELETE FROM acct WHERE id = " + std::to_string(live[at])));
          live.erase(live.begin() + static_cast<long>(at));
          break;
        }
      }
    }
    if (rng() % 3 == 0) {
      int id = next_audit++;
      PHX_ASSERT_OK(stmt->ExecDirect(
          "INSERT INTO audit VALUES (" + std::to_string(id) + ", " +
          std::to_string(id) + ")"));
    }
    if (in_txn) {
      // Occasional rollback: rolled-back work must never reach the standby.
      PHX_ASSERT_OK(
          stmt->ExecDirect(rng() % 3 == 0 ? "ROLLBACK" : "COMMIT"));
    }
    if (round == 20) {
      // A checkpoint truncates the primary's WAL file; the ship stream's
      // monotonic LSNs must be unaffected.
      PHX_ASSERT_OK(h.primary()->Checkpoint());
    }
  }

  ASSERT_TRUE(h.WaitCaughtUp());
  EXPECT_GT(h.node()->txns_applied(), 0u);
  EXPECT_EQ(h.PrimaryLogicalDigest("acct"), h.StandbyLogicalDigest("acct"));
  EXPECT_EQ(h.PrimaryLogicalDigest("audit"), h.StandbyLogicalDigest("audit"));
}

TEST(ReplStreamTest, TornShippedChunkSelfHeals) {
  FaultGuard guard;
  ReplHarness::Options opts;
  opts.start_standby_node = false;
  ReplHarness h(opts);
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                       "note VARCHAR)"));
  for (int i = 1; i <= 60; ++i) {
    PHX_ASSERT_OK(h.Exec("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'payload-" + std::to_string(i) + "')"));
  }
  // The first three fetches ship only a prefix of the chunk (a torn frame on
  // the wire). The reassembly buffer parks the partial frame and the stream
  // heals on the following fetch — no resubscribe needed.
  PHX_ASSERT_OK(
      fault::FaultInjector::Global().ArmSpec("repl.ship=torn:count=3", 7));
  PHX_ASSERT_OK(h.node()->Start());
  ASSERT_TRUE(h.WaitCaughtUp());
  EXPECT_EQ(h.PrimaryDigest("t"), h.StandbyDigest("t"));
}

TEST(ReplStreamTest, CorruptShippedChunkTriggersResubscribe) {
  FaultGuard guard;
  ReplHarness::Options opts;
  opts.start_standby_node = false;
  ReplHarness h(opts);
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                       "note VARCHAR)"));
  for (int i = 1; i <= 60; ++i) {
    PHX_ASSERT_OK(h.Exec("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'payload-" + std::to_string(i) + "')"));
  }
  // One byte of the first shipped chunk is flipped in transit. The retained
  // stream on the primary is clean, so detection (CRC / frame validation) +
  // resubscribe-from-applied-LSN recovers the real bytes.
  PHX_ASSERT_OK(
      fault::FaultInjector::Global().ArmSpec("repl.ship=corrupt:count=1", 5));
  PHX_ASSERT_OK(h.node()->Start());
  ASSERT_TRUE(h.WaitCaughtUp());
  EXPECT_GE(h.node()->resubscribes(), 1u);
  EXPECT_EQ(h.PrimaryDigest("t"), h.StandbyDigest("t"));
}

TEST(ReplStreamTest, RetentionGapIsDetectedAndReported) {
  ReplHarness::Options opts;
  opts.ship.max_buffer_bytes = 2048;  // backstop trims aggressively
  opts.start_standby_node = false;
  ReplHarness h(opts);
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                       "note VARCHAR)"));
  for (int i = 1; i <= 200; ++i) {
    PHX_ASSERT_OK(h.Exec("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'a-rather-long-note-" + std::to_string(i) +
                         "')"));
  }
  // The oldest bytes are gone: a fetch from LSN 0 must say so, not serve
  // garbage.
  ASSERT_GT(h.shipper()->base_lsn(), 0u);
  PHX_ASSERT_OK_AND_ASSIGN(engine::ReplChunk chunk,
                           h.shipper()->Fetch(0, 0, 0));
  EXPECT_TRUE(chunk.gap);
  EXPECT_EQ(chunk.start_lsn, h.shipper()->base_lsn());

  // A standby joining this late can only observe the gap (bootstrap from a
  // checkpoint image is a documented non-goal); it must keep reporting the
  // anomaly instead of applying a torn prefix of history.
  PHX_ASSERT_OK(h.node()->Start());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (h.node()->resubscribes() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(h.node()->resubscribes(), 2u);
  EXPECT_EQ(h.node()->applied_lsn(), 0u);
  EXPECT_EQ(h.node()->txns_applied(), 0u);
  h.node()->Stop();
}

// ---------------------------------------------------------------------------
// Epoch fencing (acceptance: stale primary rejected at connect AND at
// WAL-append, durably)
// ---------------------------------------------------------------------------

TEST(EpochFencingTest, RestartedStalePrimaryCannotAcceptWrites) {
  ReplHarness h;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                       "v INTEGER)"));
  PHX_ASSERT_OK(h.Exec("INSERT INTO t VALUES (1, 10)"));
  ASSERT_TRUE(h.WaitCaughtUp());

  h.primary()->Crash();
  PHX_ASSERT_OK_AND_ASSIGN(uint64_t new_epoch, h.node()->Promote(0));
  EXPECT_GE(new_epoch, 2u);
  EXPECT_EQ(h.standby()->role(), Role::kPrimary);
  EXPECT_EQ(h.standby()->database()->epoch(), new_epoch);
  // The promoted standby serves reads and writes.
  PHX_ASSERT_OK(h.Exec("INSERT INTO t VALUES (2, 20)", "standby"));

  // The old primary comes back, oblivious. A session that connects before
  // anyone presents the new epoch is accepted (nobody has told it yet)...
  PHX_ASSERT_OK(h.primary()->Restart());
  PHX_ASSERT_OK_AND_ASSIGN(
      auto old_world, h.Connect("DRIVER=native;UID=tester;SERVER=primary"));
  PHX_ASSERT_OK_AND_ASSIGN(auto old_stmt, old_world->CreateStatement());

  // ...then the first post-failover contact (a health probe carrying the new
  // epoch) fences it durably.
  auto probe = h.native()->Probe(
      odbc::ConnectionString::Parse(
          "DRIVER=native;UID=t;SERVER=primary;PHOENIX_KNOWN_EPOCH=" +
          std::to_string(new_epoch))
          .value());
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_LT(probe.value().epoch, new_epoch);  // it still reports its own

  // WAL-append-level rejection: the already-open session cannot commit a
  // write — the fence is checked where redo becomes durable, not just at
  // login.
  auto write = old_stmt->ExecDirect("INSERT INTO t VALUES (999, 0)");
  EXPECT_EQ(write.code(), StatusCode::kStaleEpoch)
      << write.ToString();

  // Connect-level rejection for any client that knows the new epoch.
  auto rejected = h.Connect(
      "DRIVER=native;UID=tester;SERVER=primary;PHOENIX_KNOWN_EPOCH=" +
      std::to_string(new_epoch));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kStaleEpoch);

  // The fence survives a restart: even an epoch-oblivious client is now
  // rejected at connect.
  h.primary()->Crash();
  PHX_ASSERT_OK(h.primary()->Restart());
  auto still_fenced = h.Connect("DRIVER=native;UID=tester;SERVER=primary");
  ASSERT_FALSE(still_fenced.ok());
  EXPECT_EQ(still_fenced.status().code(), StatusCode::kStaleEpoch);

  // The write never landed anywhere.
  auto rows = h.QueryAll("SELECT id FROM t ORDER BY id", "standby");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
}

// ---------------------------------------------------------------------------
// Transparent Phoenix failover
// ---------------------------------------------------------------------------

TEST(PhoenixFailoverTest, ConnectFailsOverWhenPrimaryIsDown) {
  ReplHarness h;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"));
  ASSERT_TRUE(h.WaitCaughtUp());
  h.primary()->Crash();

  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h.ConnectPhoenix());
  auto* pc = static_cast<phx::PhoenixConnection*>(conn.get());
  EXPECT_EQ(pc->active_endpoint(), "standby");
  EXPECT_GE(pc->cluster_epoch(), 2u);
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO t VALUES (1)"));
}

TEST(PhoenixFailoverTest, MidTransactionFailoverSurfacesExactlyOneAbort) {
  ReplHarness h;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE data (id INTEGER PRIMARY KEY, "
                       "v INTEGER)"));
  for (int i = 1; i <= 10; ++i) {
    PHX_ASSERT_OK(h.Exec("INSERT INTO data VALUES (" + std::to_string(i) +
                         ", " + std::to_string(i) + ")"));
  }
  ASSERT_TRUE(h.WaitCaughtUp());

  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h.ConnectPhoenix());
  auto* pc = static_cast<phx::PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 100 WHERE id = 1"));

  // The primary dies for good; the next statement rides recovery onto the
  // promoted standby. Paper semantics: the open transaction surfaces exactly
  // one abort — no silent retry, no double abort.
  h.primary()->Crash();
  auto st = stmt->ExecDirect("UPDATE data SET v = 100 WHERE id = 2");
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
  EXPECT_FALSE(pc->in_transaction());
  EXPECT_EQ(pc->active_endpoint(), "standby");
  EXPECT_EQ(pc->stats().failovers.load(), 1u);
  EXPECT_GE(pc->cluster_epoch(), 2u);

  // The aborted transaction's write is nowhere.
  auto rows = h.QueryAll("SELECT v FROM data WHERE id = 1", "standby");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0].AsInt(), 1);

  // The same virtual session keeps working against the new primary.
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 777 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  rows = h.QueryAll("SELECT v FROM data WHERE id = 1", "standby");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0][0].AsInt(), 777);
}

TEST(PhoenixFailoverTest, CommittedWorkVisibleExactlyOnceOnStandby) {
  ReplHarness h;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE ledger (id INTEGER PRIMARY KEY, "
                       "v INTEGER)"));

  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h.ConnectPhoenix());
  auto* pc = static_cast<phx::PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  constexpr int kCommitted = 25;
  for (int i = 1; i <= kCommitted; ++i) {
    PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO ledger VALUES (" +
                                   std::to_string(i) + ", " +
                                   std::to_string(i * 3) + ")"));
  }
  ASSERT_TRUE(h.WaitCaughtUp());

  // Primary dies; the next (status-tracked) modification fails over and is
  // applied exactly once via the status-table protocol.
  h.primary()->Crash();
  PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO ledger VALUES (100, 1)"));
  EXPECT_EQ(pc->active_endpoint(), "standby");
  EXPECT_EQ(pc->recovery_count(), 1u);
  EXPECT_EQ(pc->stats().failovers.load(), 1u);

  // Every pre-crash commit is visible exactly once on the survivor; nothing
  // is duplicated, nothing is lost (the status-table audit of the issue).
  auto rows = h.QueryAll("SELECT id, v FROM ledger ORDER BY id", "standby");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), static_cast<size_t>(kCommitted) + 1);
  for (int i = 1; i <= kCommitted; ++i) {
    EXPECT_EQ(rows.value()[static_cast<size_t>(i - 1)][0].AsInt(), i);
    EXPECT_EQ(rows.value()[static_cast<size_t>(i - 1)][1].AsInt(), i * 3);
  }
  EXPECT_EQ(rows.value().back()[0].AsInt(), 100);
}

TEST(PhoenixFailoverTest, BundleFailoverAppliesExactlyOnceOnSurvivor) {
  ReplHarness h;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE acct (id INTEGER PRIMARY KEY, "
                       "bal INTEGER)"));
  PHX_ASSERT_OK(h.Exec("INSERT INTO acct VALUES (1, 100), (2, 200)"));
  ASSERT_TRUE(h.WaitCaughtUp());

  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h.ConnectPhoenix());
  auto* pc = static_cast<phx::PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  // The primary dies for good with a bundle pending. The flush rides
  // recovery onto the promoted standby: no completion record exists there,
  // the bundle is replay-safe, so it executes on the survivor — and must
  // land exactly once despite the retry machinery.
  h.primary()->Crash();
  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 1 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 1 WHERE id = 2"));
  PHX_ASSERT_OK(stmt->BundleAdd("SELECT bal FROM acct ORDER BY id"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());

  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  ASSERT_TRUE(results[2].status.ok());
  // A clean replay on the survivor returns real rows, not a lost-result
  // marker — the client never saw a first attempt commit.
  EXPECT_FALSE(results[2].result_lost);
  ASSERT_EQ(results[2].rows.size(), 2u);
  EXPECT_EQ(results[2].rows[0][0].AsInt(), 101);
  EXPECT_EQ(results[2].rows[1][0].AsInt(), 201);

  EXPECT_EQ(pc->active_endpoint(), "standby");
  EXPECT_EQ(pc->stats().failovers.load(), 1u);
  EXPECT_GE(pc->cluster_epoch(), 2u);

  // Survivor state: applied exactly once (101/201, not 102/202).
  auto rows = h.QueryAll("SELECT id, bal FROM acct ORDER BY id", "standby");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][1].AsInt(), 101);
  EXPECT_EQ(rows.value()[1][1].AsInt(), 201);

  // The same virtual session keeps bundling against the new primary.
  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 9 WHERE id = 1"));
  PHX_ASSERT_OK_AND_ASSIGN(auto again, stmt->BundleFlush());
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].status.ok());
  rows = h.QueryAll("SELECT bal FROM acct WHERE id = 1", "standby");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0][0].AsInt(), 110);
}

}  // namespace
}  // namespace phoenix::repl
