#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include "engine/checkpoint.h"
#include "engine/wal.h"
#include "fault/fault.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Schema;
using common::Value;
using common::ValueType;
using phoenix::testing::TempDir;

WalRecord InsertRecord(TxnId txn, const std::string& table, Row row) {
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.txn = txn;
  rec.table_name = table;
  rec.row = std::move(row);
  return rec;
}

TEST(WalRecordTest, AllTypesSerializeRoundTrip) {
  std::vector<WalRecord> records;

  WalRecord begin;
  begin.type = WalRecordType::kBegin;
  begin.txn = 42;
  records.push_back(begin);

  WalRecord create;
  create.type = WalRecordType::kCreateTable;
  create.txn = 42;
  create.table_name = "t";
  create.schema = Schema({{"a", ValueType::kInt, false},
                          {"b", ValueType::kString, true}});
  create.primary_key = {"a"};
  records.push_back(create);

  records.push_back(InsertRecord(42, "t", {Value::Int(1), Value::Null()}));

  WalRecord bulk;
  bulk.type = WalRecordType::kBulkInsert;
  bulk.txn = 42;
  bulk.table_name = "t";
  bulk.rows = {{Value::Int(2), Value::String("x")},
               {Value::Int(3), Value::String("y")}};
  records.push_back(bulk);

  WalRecord update;
  update.type = WalRecordType::kUpdate;
  update.txn = 42;
  update.table_name = "t";
  update.row = {Value::Int(2)};
  update.new_row = {Value::Int(2), Value::String("z")};
  records.push_back(update);

  WalRecord del;
  del.type = WalRecordType::kDelete;
  del.txn = 42;
  del.table_name = "t";
  del.row = {Value::Int(3)};
  records.push_back(del);

  WalRecord proc;
  proc.type = WalRecordType::kCreateProcedure;
  proc.txn = 42;
  proc.table_name = "p";
  proc.proc_params = {{"x", ValueType::kInt}};
  proc.proc_body = "SELECT @x";
  records.push_back(proc);

  WalRecord drop_proc;
  drop_proc.type = WalRecordType::kDropProcedure;
  drop_proc.txn = 42;
  drop_proc.table_name = "p";
  records.push_back(drop_proc);

  WalRecord drop;
  drop.type = WalRecordType::kDropTable;
  drop.txn = 42;
  drop.table_name = "t";
  records.push_back(drop);

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 42;
  records.push_back(commit);

  for (const WalRecord& rec : records) {
    std::vector<uint8_t> bytes = rec.Serialize();
    auto parsed = WalRecord::Deserialize(bytes.data(), bytes.size());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->type, rec.type);
    EXPECT_EQ(parsed->txn, rec.txn);
    EXPECT_EQ(parsed->table_name, rec.table_name);
    EXPECT_EQ(parsed->row, rec.row);
    EXPECT_EQ(parsed->new_row, rec.new_row);
    EXPECT_EQ(parsed->rows, rec.rows);
    EXPECT_EQ(parsed->proc_body, rec.proc_body);
  }
}

TEST(WalFileTest, AppendAndReadBack) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch(
      {InsertRecord(1, "t", {Value::Int(1)}),
       InsertRecord(1, "t", {Value::Int(2)})}));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(2, "t", {Value::Int(3)})}));
  EXPECT_GT(writer.bytes_written(), 0u);

  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[2].row[0].AsInt(), 3);
}

TEST(WalFileTest, MissingFileIsEmptyHistory) {
  auto records = ReadWalFile("/tmp/phx_no_such_wal_file.log");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalFileTest, TornTailIsIgnored) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(2, "t", {Value::Int(2)})}));
  PHX_ASSERT_OK(writer.Close());

  // Truncate mid-way through the second record: replay must keep record 1
  // and stop cleanly.
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  off_t size = ::lseek(fd, 0, SEEK_END);
  ASSERT_EQ(::ftruncate(fd, size - 5), 0);
  ::close(fd);

  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].row[0].AsInt(), 1);
}

TEST(WalFileTest, CorruptPayloadDetectedByCrc) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));
  PHX_ASSERT_OK(writer.Close());

  // Flip a payload byte; CRC check must reject the record.
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::lseek(fd, 12, SEEK_SET), 12);
  uint8_t b;
  ASSERT_EQ(::read(fd, &b, 1), 1);
  b ^= 0xff;
  ASSERT_EQ(::lseek(fd, 12, SEEK_SET), 12);
  ASSERT_EQ(::write(fd, &b, 1), 1);
  ::close(fd);

  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalFileTest, TruncateResets) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));
  PHX_ASSERT_OK(writer.Truncate());
  EXPECT_EQ(writer.bytes_written(), 0u);
  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

// --- Checkpoint ------------------------------------------------------------

TEST(CheckpointTest, RoundTrip) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/checkpoint.phx";

  CheckpointData data;
  CheckpointData::TableSnapshot table;
  table.name = "t";
  table.schema = Schema({{"a", ValueType::kInt, false}});
  table.primary_key = {"a"};
  table.rows = {{Value::Int(1)}, {Value::Int(2)}};
  data.tables.push_back(table);
  StoredProcedure proc;
  proc.name = "p";
  proc.body_sql = "SELECT 1";
  data.procedures.push_back(proc);

  PHX_ASSERT_OK(WriteCheckpoint(path, data));
  auto loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tables.size(), 1u);
  EXPECT_EQ(loaded->tables[0].rows.size(), 2u);
  ASSERT_EQ(loaded->procedures.size(), 1u);
  EXPECT_EQ(loaded->procedures[0].body_sql, "SELECT 1");
}

TEST(CheckpointTest, MissingFileIsFreshDatabase) {
  auto loaded = ReadCheckpoint("/tmp/phx_no_such_checkpoint.phx");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->tables.empty());
}

TEST(CheckpointTest, CorruptFileRejected) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/checkpoint.phx";
  PHX_ASSERT_OK(WriteCheckpoint(path, CheckpointData()));

  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  uint8_t b = 0x99;
  ASSERT_EQ(::write(fd, &b, 1), 1);  // clobber the magic
  ::close(fd);
  EXPECT_FALSE(ReadCheckpoint(path).ok());
}

// ---------------------------------------------------------------------------
// Torn/corrupt tails beyond the final record, and injected write faults
// ---------------------------------------------------------------------------

/// Byte offset of record `index` (0-based) in a WAL file: frames are
/// [u32 len][u32 crc][payload].
uint64_t FrameOffset(const std::string& path, int index) {
  int fd = ::open(path.c_str(), O_RDONLY);
  EXPECT_GE(fd, 0);
  uint64_t off = 0;
  for (int i = 0; i < index; ++i) {
    uint32_t len = 0;
    EXPECT_EQ(::pread(fd, &len, 4, static_cast<off_t>(off)), 4);
    off += 8 + len;
  }
  ::close(fd);
  return off;
}

TEST(WalFileTest, MidRecordCorruptionStopsReplayAtLastValidRecord) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(2, "t", {Value::Int(2)})}));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(3, "t", {Value::Int(3)})}));
  PHX_ASSERT_OK(writer.Close());

  // Flip a payload byte inside the *middle* record: replay must deliver
  // record 1 and stop — record 3 is intact but unreachable, because nothing
  // after a corrupt frame can be trusted to be framed correctly.
  uint64_t off = FrameOffset(path, 1) + 8 + 3;
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  uint8_t b;
  ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(off)), 1);
  b ^= 0xff;
  ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(off)), 1);
  ::close(fd);

  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].row[0].AsInt(), 1);
}

TEST(WalFileTest, InjectedFsyncFailureRollsBackTail) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kSync));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));

  // The second batch reaches the file but its fsync "fails": the commit must
  // fail, and its fully-written bytes must never be replayed.
  PHX_ASSERT_OK(injector.ArmSpec("wal.fsync=error:code=IoError,count=1", 1));
  auto st = writer.AppendBatch({InsertRecord(2, "t", {Value::Int(2)})});
  EXPECT_EQ(st.code(), common::StatusCode::kIoError);

  // Before repair the rolled-back batch is still on disk and would replay.
  auto before = ReadWalFile(path);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 2u) << "precondition: un-repaired tail present";

  // The next commit repairs the tail first, so replay sees records 1 and 3
  // only — the failed commit has vanished.
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(3, "t", {Value::Int(3)})}));
  PHX_ASSERT_OK(writer.Close());
  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].txn, 1u);
  EXPECT_EQ((*records)[1].txn, 3u);
  injector.Clear();
}

TEST(WalFileTest, InjectedTornAppendRepairedByNextCommit) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));

  // Torn write: only a prefix of batch 2 lands on disk and the append fails.
  PHX_ASSERT_OK(injector.ArmSpec("wal.append=torn:count=1", 5));
  EXPECT_FALSE(
      writer.AppendBatch({InsertRecord(2, "t", {Value::Int(2)})}).ok());

  // Replay over the torn tail: record 1 only, no error.
  auto torn = ReadWalFile(path);
  ASSERT_TRUE(torn.ok());
  ASSERT_EQ(torn->size(), 1u);

  // A later commit must first truncate the torn bytes; otherwise the garbage
  // prefix would hide record 3 from every future replay.
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(3, "t", {Value::Int(3)})}));
  PHX_ASSERT_OK(writer.Close());
  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].txn, 1u);
  EXPECT_EQ((*records)[1].txn, 3u);
  injector.Clear();
}

TEST(WalFileTest, AppendBatchesMultiBatchRoundTrip) {
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  // One group-commit force: three transactions' batches in a single append.
  std::vector<WalRecord> b1 = {InsertRecord(1, "t", {Value::Int(1)}),
                               InsertRecord(1, "t", {Value::Int(2)})};
  std::vector<WalRecord> b2 = {InsertRecord(2, "t", {Value::Int(3)})};
  std::vector<WalRecord> b3 = {InsertRecord(3, "t", {Value::Int(4)})};
  PHX_ASSERT_OK(writer.AppendBatches({&b1, &b2, &b3}));
  PHX_ASSERT_OK(writer.Close());

  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);
  EXPECT_EQ((*records)[0].txn, 1u);
  EXPECT_EQ((*records)[1].txn, 1u);
  EXPECT_EQ((*records)[2].txn, 2u);
  EXPECT_EQ((*records)[3].txn, 3u);
}

TEST(WalFileTest, InjectedTornGroupAppendDropsWholeGroup) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kFlush));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));

  // A torn write in the middle of a grouped force: the whole group fails,
  // and no transaction from it may ever replay as committed.
  std::vector<WalRecord> b2 = {InsertRecord(2, "t", {Value::Int(2)})};
  std::vector<WalRecord> b3 = {InsertRecord(3, "t", {Value::Int(3)})};
  PHX_ASSERT_OK(injector.ArmSpec("wal.append=torn:count=1", 5));
  EXPECT_FALSE(writer.AppendBatches({&b2, &b3}).ok());

  // A torn group write can leave a COMPLETE prefix of the group on disk
  // (here: all of txn 2's frame), indistinguishable from a committed one —
  // which is exactly why the group-commit leader repairs the tail eagerly
  // on force failure instead of waiting for the next commit.
  auto torn = ReadWalFile(path);
  ASSERT_TRUE(torn.ok());
  ASSERT_GE(torn->size(), 1u);
  EXPECT_EQ((*torn)[0].txn, 1u);

  // The next force repairs the tail first; only record 1 and the new
  // transaction survive — nothing from the failed group.
  std::vector<WalRecord> b4 = {InsertRecord(4, "t", {Value::Int(4)})};
  PHX_ASSERT_OK(writer.AppendBatches({&b4}));
  PHX_ASSERT_OK(writer.Close());
  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].txn, 1u);
  EXPECT_EQ((*records)[1].txn, 4u);
  injector.Clear();
}

TEST(WalFileTest, InjectedGroupFsyncFailureRepairedByExplicitRepairTail) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/wal.log";

  WalWriter writer;
  PHX_ASSERT_OK(writer.Open(path, WalSyncMode::kSync));
  PHX_ASSERT_OK(writer.AppendBatch({InsertRecord(1, "t", {Value::Int(1)})}));

  // The grouped force's bytes land but the fsync fails: every transaction
  // in the group reports an error, so none of their records may survive.
  std::vector<WalRecord> b2 = {InsertRecord(2, "t", {Value::Int(2)})};
  std::vector<WalRecord> b3 = {InsertRecord(3, "t", {Value::Int(3)})};
  PHX_ASSERT_OK(injector.ArmSpec("wal.fsync=error:code=IoError,count=1", 1));
  EXPECT_EQ(writer.AppendBatches({&b2, &b3}).code(),
            common::StatusCode::kIoError);

  // Un-repaired, the fully-written group is indistinguishable from a
  // committed one on disk.
  auto before = ReadWalFile(path);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 3u) << "precondition: un-repaired tail present";

  // Explicit repair (the group-commit leader runs this on force failure)
  // truncates the rolled-back group without needing another commit.
  PHX_ASSERT_OK(writer.RepairTail());
  PHX_ASSERT_OK(writer.Close());
  auto records = ReadWalFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].txn, 1u);
  injector.Clear();
}

TEST(CheckpointTest, InjectedCheckpointWriteFaultSurfacesCleanly) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  std::string cmd = "mkdir -p " + dir.path();
  std::system(cmd.c_str());
  std::string path = dir.path() + "/checkpoint.phx";

  PHX_ASSERT_OK(injector.ArmSpec("checkpoint.write=error:code=IoError,count=1",
                                 1));
  EXPECT_EQ(WriteCheckpoint(path, CheckpointData()).code(),
            common::StatusCode::kIoError);
  // A failed checkpoint is harmless by design (the WAL still covers all
  // history): the next attempt simply succeeds.
  PHX_ASSERT_OK(WriteCheckpoint(path, CheckpointData()));
  auto loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  injector.Clear();
}

}  // namespace
}  // namespace phoenix::engine
