#include <gtest/gtest.h>

#include <thread>

#include "test_util.h"

namespace phoenix::phx {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::CrashAndRestartAsync;
using phoenix::testing::ServerHarness;

class PhoenixCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE small (id INTEGER PRIMARY KEY, v VARCHAR)"));
    std::string insert = "INSERT INTO small VALUES ";
    for (int i = 1; i <= 20; ++i) {
      if (i > 1) insert += ",";
      insert += "(" + std::to_string(i) + ",'row" + std::to_string(i) + "')";
    }
    PHX_ASSERT_OK(h_.Exec(insert));
  }

  odbc::ConnectionPtr ConnectCached(size_t cache_bytes = 256 * 1024) {
    // This fixture tests the per-statement cache's own budget semantics
    // (the client-drain budget is max(cache, result cache)); pin the
    // cross-statement cache off so a suite-wide PHOENIX_RESULT_CACHE env
    // override cannot inflate the budget under test.
    auto conn = h_.ConnectPhoenix("PHOENIX_CACHE=" +
                                  std::to_string(cache_bytes) +
                                  ";PHOENIX_RETRY_MS=10" +
                                  ";PHOENIX_RESULT_CACHE=0");
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return conn.ok() ? std::move(conn).value() : nullptr;
  }

  ServerHarness h_;
};

TEST_F(PhoenixCacheTest, SmallResultIsCachedNotPersisted) {
  auto conn = ConnectCached();
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small ORDER BY id"));

  auto* phoenix_stmt = static_cast<PhoenixStatement*>(stmt.get());
  EXPECT_TRUE(phoenix_stmt->last_result_was_cached());
  EXPECT_EQ(phoenix_conn->stats().queries_cached.load(), 1u);
  EXPECT_EQ(phoenix_conn->stats().queries_persisted.load(), 0u);
  // No phoenix_rs_* table was created on the server.
  EXPECT_EQ(phoenix_conn->stats().create_table.count.load(), 0u);
}

TEST_F(PhoenixCacheTest, CachedDeliveryIsCompleteAndOrdered) {
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small ORDER BY id"));
  Row row;
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    EXPECT_EQ(row[0].AsInt(), i);
  }
  EXPECT_FALSE(stmt->Fetch(&row).value());
}

TEST_F(PhoenixCacheTest, CrashAfterCacheFillIsInvisible) {
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small ORDER BY id"));
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());

  // Crash with NO restart: the cached result must still deliver fully —
  // the client is isolated from the server (paper Section 4.1).
  h_.server()->Crash();
  int count = 1;
  while (stmt->Fetch(&row).value()) ++count;
  EXPECT_EQ(count, 20);
  EXPECT_EQ(
      static_cast<PhoenixConnection*>(conn.get())->recovery_count(), 0u);
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(PhoenixCacheTest, CrashDuringFillReExecutes) {
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  // Crash before execute; restart arrives while Phoenix retries.
  std::thread restarter = CrashAndRestartAsync(h_.server(), 60);
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small ORDER BY id"));
  restarter.join();
  auto rows = stmt->FetchBlock(100);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);
}

TEST_F(PhoenixCacheTest, OverflowFallsBackToPersistence) {
  PHX_ASSERT_OK(h_.Exec(
      "CREATE TABLE wide (id INTEGER PRIMARY KEY, pad VARCHAR)"));
  std::string insert = "INSERT INTO wide VALUES ";
  std::string pad(300, 'x');
  for (int i = 1; i <= 50; ++i) {
    if (i > 1) insert += ",";
    insert += "(" + std::to_string(i) + ",'" + pad + "')";
  }
  PHX_ASSERT_OK(h_.Exec(insert));

  // Cache far smaller than the ~15 KB result.
  auto conn = ConnectCached(/*cache_bytes=*/2000);
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id, pad FROM wide ORDER BY id"));

  auto* phoenix_stmt = static_cast<PhoenixStatement*>(stmt.get());
  EXPECT_FALSE(phoenix_stmt->last_result_was_cached());
  EXPECT_EQ(phoenix_conn->stats().cache_overflows.load(), 1u);
  EXPECT_EQ(phoenix_conn->stats().queries_persisted.load(), 1u);

  // And the persisted path still delivers everything.
  auto rows = stmt->FetchBlock(100);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 50u);
}

TEST_F(PhoenixCacheTest, OverflowedResultStillSurvivesCrash) {
  PHX_ASSERT_OK(h_.Exec(
      "CREATE TABLE wide2 (id INTEGER PRIMARY KEY, pad VARCHAR)"));
  std::string insert = "INSERT INTO wide2 VALUES ";
  std::string pad(200, 'y');
  for (int i = 1; i <= 60; ++i) {
    if (i > 1) insert += ",";
    insert += "(" + std::to_string(i) + ",'" + pad + "')";
  }
  PHX_ASSERT_OK(h_.Exec(insert));

  auto conn = ConnectCached(/*cache_bytes=*/1500);
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM wide2 ORDER BY id"));
  Row row;
  for (int i = 1; i <= 30; ++i) ASSERT_TRUE(stmt->Fetch(&row).value());

  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  int64_t count = 30;
  while (stmt->Fetch(&row).value()) {
    ++count;
    EXPECT_EQ(row[0].AsInt(), count);
  }
  restarter.join();
  EXPECT_EQ(count, 60);
}

TEST_F(PhoenixCacheTest, UpdatesStillProtectedWithCachingEnabled) {
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  std::thread restarter = CrashAndRestartAsync(h_.server(), 40);
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE small SET v = 'z' WHERE id = 1"));
  restarter.join();
  auto rows = h_.QueryAll("SELECT v FROM small WHERE id = 1");
  EXPECT_EQ((*rows)[0][0].AsString(), "z");
}

TEST_F(PhoenixCacheTest, CacheUsesSingleBlockRead) {
  // The optimization eliminates per-row fetch round trips: the whole
  // result crosses the wire in block reads at execute time.
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small ORDER BY id"));
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  uint64_t fill_count = phoenix_conn->stats().cache_fill.count.load();
  EXPECT_EQ(fill_count, 1u);
  // Fetches after execute are purely client-side: crash-proof (verified in
  // CrashAfterCacheFillIsInvisible) and fast.
}

TEST_F(PhoenixCacheTest, EmptyResultCachedCleanly) {
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small WHERE id > 999"));
  Row row;
  EXPECT_FALSE(stmt->Fetch(&row).value());
}

TEST_F(PhoenixCacheTest, ReExecuteReplacesCache) {
  auto conn = ConnectCached();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small WHERE id <= 5"));
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM small WHERE id > 15"));
  auto rows = stmt->FetchBlock(100);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 16);
}

}  // namespace
}  // namespace phoenix::phx
