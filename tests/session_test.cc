#include <gtest/gtest.h>

#include "engine/session.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::TempDir;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.data_dir = dir_.path();
    options.lock_timeout = std::chrono::milliseconds(200);
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    session_ = std::make_unique<Session>(1, db_.get());
    PHX_ASSERT_OK(
        session_->Execute("CREATE TABLE t (id INTEGER PRIMARY KEY, "
                          "v VARCHAR)")
            .status());
    PHX_ASSERT_OK(
        session_
            ->Execute("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d')")
            .status());
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionTest, QueryOpensCursor) {
  auto result = session_->Execute("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_query);
  EXPECT_EQ(result->schema.num_columns(), 1u);
  EXPECT_EQ(session_->open_cursor_count(), 1u);
}

TEST_F(SessionTest, FetchInBatches) {
  auto result = session_->Execute("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(result.ok());
  auto f1 = session_->Fetch(result->cursor, 3);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1->rows.size(), 3u);
  EXPECT_FALSE(f1->done);
  auto f2 = session_->Fetch(result->cursor, 3);
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(f2->rows.size(), 1u);
  EXPECT_TRUE(f2->done);
  auto f3 = session_->Fetch(result->cursor, 3);
  ASSERT_TRUE(f3.ok());
  EXPECT_TRUE(f3->done);
  EXPECT_TRUE(f3->rows.empty());
}

TEST_F(SessionTest, FetchUnknownCursorFails) {
  EXPECT_FALSE(session_->Fetch(999, 1).ok());
}

TEST_F(SessionTest, CloseCursorFreesIt) {
  auto result = session_->Execute("SELECT id FROM t");
  ASSERT_TRUE(result.ok());
  PHX_ASSERT_OK(session_->CloseCursor(result->cursor));
  EXPECT_EQ(session_->open_cursor_count(), 0u);
  EXPECT_FALSE(session_->Fetch(result->cursor, 1).ok());
}

TEST_F(SessionTest, AdvanceCursorSkipsServerSide) {
  auto result = session_->Execute("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(result.ok());
  auto skipped = session_->AdvanceCursor(result->cursor, 2);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(*skipped, 2u);
  auto fetched = session_->Fetch(result->cursor, 1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->rows[0][0].AsInt(), 3);
}

TEST_F(SessionTest, AdvancePastEndReturnsShortCount) {
  auto result = session_->Execute("SELECT id FROM t");
  ASSERT_TRUE(result.ok());
  auto skipped = session_->AdvanceCursor(result->cursor, 100);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(*skipped, 4u);
}

TEST_F(SessionTest, SysAdvanceCursorProcedure) {
  // The repositioning stored procedure used by Phoenix recovery.
  auto result = session_->Execute("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(result.ok());
  auto advanced = session_->Execute(
      "EXEC sys_advance_cursor " + std::to_string(result->cursor) + ", 3");
  ASSERT_TRUE(advanced.ok());
  EXPECT_EQ(advanced->rows_affected, 3);
  auto fetched = session_->Fetch(result->cursor, 1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->rows[0][0].AsInt(), 4);
}

TEST_F(SessionTest, ExplicitTransactionCommit) {
  PHX_ASSERT_OK(session_->Execute("BEGIN TRANSACTION").status());
  EXPECT_TRUE(session_->in_transaction());
  PHX_ASSERT_OK(
      session_->Execute("INSERT INTO t VALUES (5, 'e')").status());
  PHX_ASSERT_OK(session_->Execute("COMMIT").status());
  EXPECT_FALSE(session_->in_transaction());
  auto q = session_->Execute("SELECT COUNT(*) FROM t");
  auto rows = session_->Fetch(q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 5);
}

TEST_F(SessionTest, ExplicitTransactionRollback) {
  PHX_ASSERT_OK(session_->Execute("BEGIN").status());
  PHX_ASSERT_OK(session_->Execute("DELETE FROM t WHERE id = 1").status());
  PHX_ASSERT_OK(session_->Execute("ROLLBACK").status());
  auto q = session_->Execute("SELECT COUNT(*) FROM t");
  auto rows = session_->Fetch(q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 4);
}

TEST_F(SessionTest, NestedBeginRejected) {
  PHX_ASSERT_OK(session_->Execute("BEGIN").status());
  EXPECT_FALSE(session_->Execute("BEGIN").ok());
}

TEST_F(SessionTest, CommitWithoutTxnRejectedRollbackIdempotent) {
  EXPECT_FALSE(session_->Execute("COMMIT").ok());
  PHX_ASSERT_OK(session_->Execute("ROLLBACK").status());  // no-op
}

TEST_F(SessionTest, StatementErrorAbortsTransaction) {
  PHX_ASSERT_OK(session_->Execute("BEGIN").status());
  PHX_ASSERT_OK(session_->Execute("DELETE FROM t WHERE id = 2").status());
  // Constraint violation aborts the whole transaction.
  EXPECT_FALSE(session_->Execute("INSERT INTO t VALUES (1, 'dup')").ok());
  EXPECT_FALSE(session_->in_transaction());
  // The earlier delete rolled back with it.
  auto q = session_->Execute("SELECT COUNT(*) FROM t");
  auto rows = session_->Fetch(q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 4);
}

TEST_F(SessionTest, BatchExecution) {
  auto result = session_->Execute(
      "BEGIN; INSERT INTO t VALUES (7, 'g'); COMMIT; "
      "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->is_query);
  auto rows = session_->Fetch(result->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 5);
}

TEST_F(SessionTest, CommitClosesTransactionCursors) {
  PHX_ASSERT_OK(session_->Execute("BEGIN").status());
  auto q = session_->Execute("SELECT id FROM t");
  ASSERT_TRUE(q.ok());
  PHX_ASSERT_OK(session_->Execute("COMMIT").status());
  EXPECT_FALSE(session_->Fetch(q->cursor, 1).ok());
}

TEST_F(SessionTest, AutoCommitCursorSurvivesOtherStatements) {
  auto q = session_->Execute("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(q.ok());
  PHX_ASSERT_OK(session_->Execute("INSERT INTO t VALUES (9, 'i')").status());
  auto rows = session_->Fetch(q->cursor, 100);
  ASSERT_TRUE(rows.ok());
  // Materialized snapshot from execute time: 4 rows.
  EXPECT_EQ(rows->rows.size(), 4u);
}

TEST_F(SessionTest, SendBufferCapsLazyExecution) {
  // A small send buffer: Execute should not fully materialize a lazy scan.
  Session small(2, db_.get(), /*send_buffer_bytes=*/64);
  PHX_ASSERT_OK(
      small.Execute("INSERT INTO t VALUES (100, 'zz')").status());
  auto q = small.Execute("SELECT TOP 1000 id, v FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->lazy);
  auto rows = small.Fetch(q->cursor, 1000);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 5u);
}

TEST_F(SessionTest, TempTableDroppedOnSessionEnd) {
  PHX_ASSERT_OK(
      session_->Execute("CREATE TEMP TABLE probe (k INTEGER)").status());
  PHX_ASSERT_OK(
      session_->Execute("SELECT COUNT(*) FROM probe").status());
  session_.reset();  // disconnect
  Session fresh(3, db_.get());
  EXPECT_FALSE(fresh.Execute("SELECT COUNT(*) FROM probe").ok());
}

TEST_F(SessionTest, DestructorRollsBackOpenTransaction) {
  PHX_ASSERT_OK(session_->Execute("BEGIN").status());
  PHX_ASSERT_OK(session_->Execute("DELETE FROM t").status());
  session_.reset();
  Session fresh(3, db_.get());
  auto q = fresh.Execute("SELECT COUNT(*) FROM t");
  auto rows = fresh.Fetch(q->cursor, 1);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 4);
}

TEST_F(SessionTest, LazyCursorStreamsOnDemand) {
  // Scan/limit pipelines are lazy: executing TOP over a big table is cheap
  // and produces rows as fetched.
  for (int i = 10; i < 200; ++i) {
    PHX_ASSERT_OK(session_
                      ->Execute("INSERT INTO t VALUES (" +
                                std::to_string(i) + ", 'x')")
                      .status());
  }
  Session tiny(5, db_.get(), /*send_buffer_bytes=*/128);
  auto q = tiny.Execute("SELECT TOP 150 id FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->lazy);
  size_t total = 0;
  while (true) {
    auto f = tiny.Fetch(q->cursor, 10);
    ASSERT_TRUE(f.ok());
    total += f->rows.size();
    if (f->done) break;
  }
  EXPECT_EQ(total, 150u);
}

}  // namespace
}  // namespace phoenix::engine
