// Chaos soak harness: TPC-C payments, counter increments, and ordered
// delivery under deterministic randomized fault schedules, across fixed
// seeds × one failure family each (injected errors, server crashes, response
// hangs, torn WAL writes, mid-frame connection drops).
//
// Invariants asserted after every soak (same P1-P3 as crash_property_test):
//  P1  rows of a result set are delivered exactly once, in order;
//  P2  an update reported successful is applied exactly once — including
//      updates whose response was lost in flight (the ambiguous window);
//  P3  a final crash + restart over whatever WAL the chaos left behind
//      reproduces exactly the committed state (recovery is idempotent).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fault/chaos.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "tpc/tpcc.h"
#include "wire/tcp.h"

namespace phoenix {
namespace {

using common::Row;
using fault::FaultInjector;
using phoenix::testing::ServerHarness;
using phoenix::testing::TempDir;

class ChaosSoakTest
    : public ::testing::TestWithParam<std::tuple<const char*, uint64_t>> {
 protected:
  void SetUp() override {
    FaultInjector::Global().Clear();
    obs::SetEnabled(true);
  }
  void TearDown() override { FaultInjector::Global().Clear(); }
};

TEST_P(ChaosSoakTest, InvariantsHoldUnderFaultSchedule) {
  const std::string mode = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto& injector = FaultInjector::Global();

  ServerHarness h;
  tpc::TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 20;
  config.items = 50;
  config.initial_orders_per_district = 20;
  tpc::TpccGenerator gen(config);
  ASSERT_TRUE(gen.Load(h.server()).ok());

  constexpr int kCounters = 8;
  PHX_ASSERT_OK(
      h.Exec("CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)"));
  std::string insert = "INSERT INTO counters VALUES ";
  for (int i = 0; i < kCounters; ++i) {
    if (i > 0) insert += ",";
    insert += "(" + std::to_string(i) + ", 0)";
  }
  PHX_ASSERT_OK(h.Exec(insert));
  constexpr int kRows = 100;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE scan_t (id INTEGER PRIMARY KEY)"));
  insert = "INSERT INTO scan_t VALUES ";
  for (int i = 1; i <= kRows; ++i) {
    if (i > 1) insert += ",";
    insert += "(" + std::to_string(i) + ")";
  }
  PHX_ASSERT_OK(h.Exec(insert));

  auto sum = [&](const std::string& sql) {
    auto rows = h.QueryAll(sql);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? (*rows)[0][0].AsDouble() : -1.0;
  };
  double w_before = sum("SELECT SUM(w_ytd) FROM warehouse");
  double d_before = sum("SELECT SUM(d_ytd) FROM district");

  // Connect before arming: the initial connect is not crash-protected (as in
  // the paper — Phoenix guards established virtual sessions). The roundtrip
  // deadline is the failure detector for injected hangs.
  auto conn = h.ConnectPhoenix("PHOENIX_RETRY_MS=5;PHOENIX_RT_TIMEOUT_MS=100");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn.value().get());
  tpc::TpccClient tpcc(conn.value().get(), config, seed);
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());

  uint64_t mttr_before =
      obs::Registry::Global().histogram("phx.recover.mttr_ns")->Snapshot().count;

  int applied[kCounters] = {};
  int committed_payments = 0;
  std::vector<int64_t> delivered;
  {
    // Executes kCrash faults (crash → 20ms pause → restart) off the dispatch
    // path; destroying it drains any in-flight cycle.
    fault::ChaosController controller(h.server(), std::chrono::milliseconds(20));
    for (const fault::FaultRule& rule : fault::MakeChaosSchedule(mode, seed)) {
      injector.Arm(rule);
    }

    // P2 workload: auto-commit counter increments. Outside the torn-WAL
    // family every increment must eventually report success (Phoenix masks
    // the outage); a torn commit legitimately fails the statement, and then
    // it must NOT be applied.
    common::Rng rng(seed * 1315423911ULL + 7);
    for (int i = 0; i < 16; ++i) {
      int target = static_cast<int>(rng.Uniform(0, kCounters - 1));
      auto st = stmt->ExecDirect("UPDATE counters SET n = n + 1 WHERE id = " +
                                 std::to_string(target));
      if (st.ok()) {
        ++applied[target];
      } else {
        EXPECT_NE(mode, "error") << st.ToString();
        EXPECT_NE(mode, "hang") << st.ToString();
        EXPECT_NE(mode, "drop") << st.ToString();
      }
    }

    // TPC-C payments: multi-statement transactions under the same schedule.
    for (int i = 0; i < 8; ++i) {
      auto st = tpcc.RunTransaction(tpc::TpccTxnType::kPayment);
      if (st.ok()) ++committed_payments;
    }

    // P1 workload: ordered scan. The execute may fail while a torn-WAL fault
    // window is open (materializing the result table is itself a commit);
    // retry, then delivery must be seamless.
    common::Status exec_st;
    for (int attempt = 0; attempt < 5; ++attempt) {
      exec_st = stmt->ExecDirect("SELECT id FROM scan_t ORDER BY id");
      if (exec_st.ok()) break;
    }
    PHX_ASSERT_OK(exec_st);
    Row row;
    while (true) {
      auto more = stmt->Fetch(&row);
      ASSERT_TRUE(more.ok())
          << "mode=" << mode << " seed=" << seed << ": "
          << more.status().ToString();
      if (!*more) break;
      delivered.push_back(row[0].AsInt());
    }
    PHX_ASSERT_OK(stmt->CloseCursor());

    // Disarm (waking any orphan sleeper) before the controller drains.
    injector.Clear();
  }
  if (!h.server()->IsUp()) {
    PHX_ASSERT_OK(h.server()->Restart());
  }

  // P1: exactly once, in order.
  ASSERT_EQ(delivered.size(), static_cast<size_t>(kRows))
      << "mode=" << mode << " seed=" << seed;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_EQ(delivered[static_cast<size_t>(i)], i + 1)
        << "mode=" << mode << " seed=" << seed << " index=" << i;
  }

  // P3: one more crash over whatever WAL tail the chaos left, then verify
  // against the durable state only.
  h.server()->Crash();
  PHX_ASSERT_OK(h.server()->Restart());

  // P2: counters match the successes exactly.
  auto rows = h.QueryAll("SELECT id, n FROM counters ORDER BY id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  for (const Row& row : *rows) {
    EXPECT_EQ(row[1].AsInt(), applied[row[0].AsInt()])
        << "counter " << row[0].AsInt() << " mode=" << mode
        << " seed=" << seed;
  }

  // Money conservation across the whole soak: warehouse and district books
  // agree, committed payments are all accounted for.
  double w_delta = sum("SELECT SUM(w_ytd) FROM warehouse") - w_before;
  double d_delta = sum("SELECT SUM(d_ytd) FROM district") - d_before;
  EXPECT_NEAR(w_delta, d_delta, 1e-6)
      << "mode=" << mode << " seed=" << seed
      << " committed=" << committed_payments;

  // Every masked outage contributes one MTTR sample to the obs histogram.
  uint64_t recoveries = phoenix_conn->recovery_count();
  uint64_t mttr_after =
      obs::Registry::Global().histogram("phx.recover.mttr_ns")->Snapshot().count;
  EXPECT_GE(mttr_after - mttr_before, recoveries)
      << "mode=" << mode << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ChaosSoakTest,
    ::testing::Combine(::testing::Values("error", "crash", "hang", "torn",
                                         "drop"),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)),
    [](const ::testing::TestParamInfo<ChaosSoakTest::ParamType>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Acceptance test for timeout-based failure detection over a real socket:
/// a deliberately hung server is detected via the per-roundtrip poll
/// deadline and recovered within the configured budget — the client never
/// blocks indefinitely, and the hung statement is not double-applied.
TEST(ChaosTcpTest, HungServerDetectedAndRecoveredWithinDeadline) {
  auto& injector = FaultInjector::Global();
  injector.Clear();
  obs::SetEnabled(true);

  TempDir dir;
  engine::ServerOptions options;
  options.db.data_dir = dir.path();
  auto server = engine::SimulatedServer::Start(options);
  ASSERT_TRUE(server.ok());
  auto host = wire::TcpServerHost::Start(server->get(), 0);
  ASSERT_TRUE(host.ok());

  odbc::DriverManager dm;
  uint16_t port = host.value()->port();
  auto native = std::make_shared<odbc::NativeDriver>(
      "native", [port](const odbc::ConnectionString&) {
        return std::make_shared<wire::TcpClientTransport>("127.0.0.1", port);
      });
  PHX_ASSERT_OK(dm.RegisterDriver(native));
  PHX_ASSERT_OK(dm.RegisterDriver(
      std::make_shared<phx::PhoenixDriver>("phoenix", native)));
  {
    PHX_ASSERT_OK_AND_ASSIGN(auto setup, dm.Connect("DRIVER=native;UID=u"));
    PHX_ASSERT_OK_AND_ASSIGN(auto stmt, setup->CreateStatement());
    PHX_ASSERT_OK(stmt->ExecDirect(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)"));
    PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO t VALUES (1, 10)"));
  }

  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn,
      dm.Connect("DRIVER=phoenix;UID=u;PHOENIX_DEADLINE_MS=8000;"
                 "PHOENIX_RETRY_MS=20;PHOENIX_RT_TIMEOUT_MS=150"));
  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  // Hang the server for 10s on the next dispatch — far beyond any budget the
  // test tolerates. Detection must come from the client's 150ms deadline.
  PHX_ASSERT_OK(
      injector.ArmSpec("server.execute.pre=hang:delay_ms=10000,count=1", 1));
  auto start = std::chrono::steady_clock::now();
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE t SET v = v + 1 WHERE id = 1"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 3000)
      << "a hung server must be detected by the roundtrip deadline, "
         "not waited out";
  EXPECT_GE(phoenix_conn->recovery_count(), 1u);

  // Exactly-once: the original dispatch is still parked pre-execution inside
  // the injected hang; it must never land. Wipe its session via a restart,
  // then wake it — it finds no session and does nothing.
  {
    PHX_ASSERT_OK_AND_ASSIGN(auto check, dm.Connect("DRIVER=native;UID=u"));
    PHX_ASSERT_OK_AND_ASSIGN(auto cstmt, check->CreateStatement());
    PHX_ASSERT_OK(cstmt->ExecDirect("SELECT v FROM t WHERE id = 1"));
    Row row;
    ASSERT_TRUE(cstmt->Fetch(&row).value());
    EXPECT_EQ(row[0].AsInt(), 11) << "hung statement must apply exactly once";
  }
  server->get()->Crash();
  PHX_ASSERT_OK(server->get()->Restart());
  injector.Clear();  // wakes the parked worker so host Stop() joins promptly

  // The MTTR histogram captured the detection→recovery latency.
  EXPECT_GE(
      obs::Registry::Global().histogram("phx.recover.mttr_ns")->Snapshot().count,
      1u);
  host.value()->Stop();
}

}  // namespace
}  // namespace phoenix
