#ifndef PHOENIX_TESTS_TEST_UTIL_H_
#define PHOENIX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "engine/server.h"
#include "odbc/driver_manager.h"
#include "odbc/native_driver.h"
#include "phoenix/phoenix_driver.h"
#include "wire/in_process.h"

namespace phoenix::testing {

/// ASSERT/EXPECT helpers for Status / Result.
#define PHX_ASSERT_OK(expr)                                        \
  do {                                                             \
    auto _st = (expr);                                             \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (0)

#define PHX_EXPECT_OK(expr)                                        \
  do {                                                             \
    auto _st = (expr);                                             \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                       \
  } while (0)

#define PHX_ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  PHX_ASSERT_OK_AND_ASSIGN_IMPL(                                   \
      PHX_STATUS_CONCAT(_phx_test_res, __LINE__), lhs, expr)
#define PHX_ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)              \
  auto tmp = (expr);                                               \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                \
  lhs = std::move(tmp).value()

/// A fresh data directory under /tmp, removed on destruction.
class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = "/tmp/phx_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1));
    std::string cmd = "rm -rf " + path_;
    std::system(cmd.c_str());
  }
  ~TempDir() {
    std::string cmd = "rm -rf " + path_;
    std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Server + driver-manager harness: a SimulatedServer with the native and
/// Phoenix drivers registered over a zero-latency in-process transport.
class ServerHarness {
 public:
  explicit ServerHarness(
      engine::ServerOptions options = engine::ServerOptions(),
      wire::NetworkModel model = wire::NetworkModel::None()) {
    options.db.data_dir = dir_.path();
    auto server = engine::SimulatedServer::Start(options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();

    auto factory = [this, model](const odbc::ConnectionString&) {
      return std::make_shared<wire::InProcessTransport>(server_.get(), model);
    };
    native_ = std::make_shared<odbc::NativeDriver>("native", factory);
    EXPECT_TRUE(dm_.RegisterDriver(native_).ok());
    EXPECT_TRUE(
        dm_.RegisterDriver(
               std::make_shared<phx::PhoenixDriver>("phoenix", native_))
            .ok());
  }

  engine::SimulatedServer* server() { return server_.get(); }
  odbc::DriverManager& dm() { return dm_; }

  /// Shorthand: native connection with a default user.
  common::Result<odbc::ConnectionPtr> ConnectNative() {
    return dm_.Connect("DRIVER=native;UID=tester");
  }
  /// Phoenix connection; extra attributes appended verbatim.
  common::Result<odbc::ConnectionPtr> ConnectPhoenix(
      const std::string& extra = "") {
    std::string conn = "DRIVER=phoenix;UID=tester;PHOENIX_DEADLINE_MS=8000";
    if (!extra.empty()) conn += ";" + extra;
    return dm_.Connect(conn);
  }

  /// Executes one statement on a fresh native connection (test setup).
  common::Status Exec(const std::string& sql) {
    auto conn = ConnectNative();
    if (!conn.ok()) return conn.status();
    auto stmt = conn.value()->CreateStatement();
    if (!stmt.ok()) return stmt.status();
    return stmt.value()->ExecDirect(sql);
  }

  /// Runs a query on a fresh native connection and returns all rows.
  common::Result<std::vector<common::Row>> QueryAll(const std::string& sql) {
    PHX_ASSIGN_OR_RETURN(odbc::ConnectionPtr conn, ConnectNative());
    PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
    PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));
    return stmt->FetchBlock(1'000'000);
  }

 private:
  TempDir dir_;
  std::unique_ptr<engine::SimulatedServer> server_;
  odbc::DriverManager dm_;
  odbc::DriverPtr native_;
};

/// Crashes the server now and restarts it after `delay_ms` on a background
/// thread. Join before harness destruction via the returned thread.
inline std::thread CrashAndRestartAsync(engine::SimulatedServer* server,
                                        int delay_ms) {
  server->Crash();
  return std::thread([server, delay_ms] {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    server->Restart().ok();
  });
}

}  // namespace phoenix::testing

#endif  // PHOENIX_TESTS_TEST_UTIL_H_
