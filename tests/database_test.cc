#include <gtest/gtest.h>

#include <thread>

#include "engine/database.h"
#include "fault/fault.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Schema;
using common::Value;
using common::ValueType;
using phoenix::testing::TempDir;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.data_dir = dir_.path();
    options.lock_timeout = std::chrono::milliseconds(200);
    auto db = Database::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  /// Crash + recover cycle.
  void Reboot() {
    db_->CrashVolatile();
    PHX_ASSERT_OK(db_->Recover());
  }

  TablePtr MakeTable(const std::string& name, bool temporary = false,
                     SessionId session = 0) {
    Schema schema({{"id", ValueType::kInt, false},
                   {"v", ValueType::kString, true}});
    Transaction* txn = db_->Begin(session);
    EXPECT_TRUE(db_->CreateTable(txn, name, schema, {"id"}, temporary, false,
                                 session)
                    .ok());
    EXPECT_TRUE(db_->Commit(txn).ok());
    return db_->ResolveTable(name, session).value();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CommittedInsertSurvivesCrash) {
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
  PHX_ASSERT_OK(db_->Commit(txn));

  Reboot();

  TablePtr t2 = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(t2->live_row_count(), 1u);
  EXPECT_EQ(t2->GetRow(t2->LookupPk({Value::Int(1)}).value())[1].AsString(),
            "a");
}

TEST_F(DatabaseTest, UncommittedInsertVanishesAtCrash) {
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
  // No commit — crash.
  Reboot();
  TablePtr t2 = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(t2->live_row_count(), 0u);
}

TEST_F(DatabaseTest, RollbackUndoesInsertUpdateDelete) {
  TablePtr t = MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  Transaction* txn = db_->Begin(0);
  RowId id = t->LookupPk({Value::Int(1)}).value();
  PHX_ASSERT_OK(db_->UpdateRow(txn, t, id, {Value::Int(1), Value::String("b")}));
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(2), Value::String("c")}));
  RowId id2 = t->LookupPk({Value::Int(2)}).value();
  PHX_ASSERT_OK(db_->DeleteRow(txn, t, id2));
  PHX_ASSERT_OK(db_->Rollback(txn));

  EXPECT_EQ(t->live_row_count(), 1u);
  EXPECT_EQ(t->GetRow(t->LookupPk({Value::Int(1)}).value())[1].AsString(),
            "a");
}

TEST_F(DatabaseTest, UpdateAndDeleteReplayViaPk) {
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(2), Value::String("b")}));
  PHX_ASSERT_OK(db_->Commit(txn));

  txn = db_->Begin(0);
  RowId id1 = t->LookupPk({Value::Int(1)}).value();
  PHX_ASSERT_OK(db_->UpdateRow(txn, t, id1, {Value::Int(1), Value::String("z")}));
  RowId id2 = t->LookupPk({Value::Int(2)}).value();
  PHX_ASSERT_OK(db_->DeleteRow(txn, t, id2));
  PHX_ASSERT_OK(db_->Commit(txn));

  Reboot();

  TablePtr t2 = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(t2->live_row_count(), 1u);
  EXPECT_EQ(t2->GetRow(t2->LookupPk({Value::Int(1)}).value())[1].AsString(),
            "z");
  EXPECT_FALSE(t2->LookupPk({Value::Int(2)}).ok());
}

TEST_F(DatabaseTest, TempTablesAreNotDurable) {
  MakeTable("session_tmp", /*temporary=*/true, /*session=*/7);
  EXPECT_TRUE(db_->ResolveTable("session_tmp", 7).ok());
  Reboot();
  EXPECT_FALSE(db_->ResolveTable("session_tmp", 7).ok());
}

TEST_F(DatabaseTest, DropTableSurvivesCrash) {
  MakeTable("t");
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->DropTable(txn, "t", false, 0));
  PHX_ASSERT_OK(db_->Commit(txn));
  Reboot();
  EXPECT_FALSE(db_->ResolveTable("t", 0).ok());
}

TEST_F(DatabaseTest, DropTableRollbackRestores) {
  TablePtr t = MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->DropTable(txn, "t", false, 0));
  PHX_ASSERT_OK(db_->Rollback(txn));
  auto restored = db_->ResolveTable("t", 0);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->live_row_count(), 1u);
}

TEST_F(DatabaseTest, ProceduresAreDurable) {
  Transaction* txn = db_->Begin(0);
  StoredProcedure proc;
  proc.name = "p";
  proc.body_sql = "SELECT 1";
  PHX_ASSERT_OK(db_->CreateProcedure(txn, proc));
  PHX_ASSERT_OK(db_->Commit(txn));
  Reboot();
  EXPECT_TRUE(db_->GetProcedure("p").ok());
}

TEST_F(DatabaseTest, CheckpointTruncatesWalAndPreservesData) {
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  for (int i = 0; i < 100; ++i) {
    PHX_ASSERT_OK(
        db_->InsertRow(txn, t, {Value::Int(i), Value::String("r")}));
  }
  PHX_ASSERT_OK(db_->Commit(txn));
  EXPECT_GT(db_->wal_bytes_written(), 0u);
  PHX_ASSERT_OK(db_->Checkpoint());
  EXPECT_EQ(db_->wal_bytes_written(), 0u);

  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 100u);
}

TEST_F(DatabaseTest, CheckpointRequiresWriteQuiescence) {
  TablePtr t = MakeTable("t");
  // A read-only active transaction does not block checkpoint (MVCC readers
  // may run arbitrarily long; the image is the newest committed state).
  Transaction* reader = db_->Begin(0);
  PHX_ASSERT_OK(db_->Checkpoint());

  // A transaction that wrote anything does.
  Transaction* writer = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(writer, t, {Value::Int(1), Value::String("a")}));
  EXPECT_FALSE(db_->Checkpoint().ok());
  PHX_ASSERT_OK(db_->Rollback(writer));
  PHX_ASSERT_OK(db_->Checkpoint());
  PHX_ASSERT_OK(db_->Rollback(reader));
}

// Regression for the checkpoint/commit lost-transaction race: a commit that
// lands while Checkpoint() is writing its snapshot used to be durably lost —
// the snapshot predated the commit and the WAL truncate wiped its record.
// Checkpoint must hold the commit path (and Begin) across snapshot+truncate.
TEST_F(DatabaseTest, CheckpointWindowCannotLoseACommit) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TablePtr t = MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }

  // Stall the checkpoint's snapshot write long enough for a commit to aim at
  // the snapshot → truncate window.
  PHX_ASSERT_OK(
      injector.ArmSpec("checkpoint.write=delay:delay_ms=150,count=1", 3));
  common::Status ckpt_status;
  std::thread checkpointer([&] { ckpt_status = db_->Checkpoint(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(2), Value::String("b")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  checkpointer.join();
  injector.Clear();
  PHX_ASSERT_OK(ckpt_status);

  Reboot();
  TablePtr t2 = db_->ResolveTable("t", 0).value();
  EXPECT_TRUE(t2->LookupPk({Value::Int(1)}).ok());
  EXPECT_TRUE(t2->LookupPk({Value::Int(2)}).ok())
      << "commit during the checkpoint window was durably lost";
  EXPECT_EQ(t2->live_row_count(), 2u);
}

// Regression for the checkpoint/DDL race: DDL mutates the catalog eagerly
// (before commit), so the write-quiescence check alone cannot exclude it —
// an already-active, so-far read-only transaction used to be able to run
// CREATE/DROP TABLE inside the snapshot → truncate window. A rolled-back
// CREATE then persisted as a phantom table (or a committed one made replay
// fail with already-exists), and a rolled-back DROP durably lost the
// table's committed rows. The DDL fence must hold such DDL out of the
// window entirely.
TEST_F(DatabaseTest, CheckpointWindowExcludesUncommittedDdl) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TablePtr t = MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }

  // Both transactions are active (and unwritten) before the checkpoint
  // starts, so the Begin freeze does not stop them and the quiescence check
  // passes.
  Transaction* rollback_ddl = db_->Begin(0);
  Transaction* commit_ddl = db_->Begin(0);

  // Hold the checkpoint open between its quiescence check and the snapshot.
  const uint64_t fires_before = injector.fires("checkpoint.ddl_window");
  PHX_ASSERT_OK(injector.ArmSpec(
      "checkpoint.ddl_window=delay:delay_ms=300,count=1", 7));
  common::Status ckpt_status;
  std::thread checkpointer([&] { ckpt_status = db_->Checkpoint(); });
  while (injector.fires("checkpoint.ddl_window") == fires_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Mid-window DDL from both transactions. With the fence each statement
  // blocks until the image and the WAL truncate are done, then lands in the
  // post-truncate log (or is undone in memory only, for the rollback).
  Schema schema({{"id", ValueType::kInt, false}});
  std::thread roller([&] {
    EXPECT_TRUE(db_->CreateTable(rollback_ddl, "mid_rb", schema, {"id"},
                                 false, false, 0)
                    .ok());
    EXPECT_TRUE(db_->DropTable(rollback_ddl, "t", false, 0).ok());
    EXPECT_TRUE(db_->Rollback(rollback_ddl).ok());
  });
  std::thread committer([&] {
    EXPECT_TRUE(db_->CreateTable(commit_ddl, "mid_cm", schema, {"id"},
                                 false, false, 0)
                    .ok());
    EXPECT_TRUE(db_->Commit(commit_ddl).ok());
  });
  roller.join();
  committer.join();
  checkpointer.join();
  injector.Clear();
  PHX_ASSERT_OK(ckpt_status);

  Reboot();
  EXPECT_FALSE(db_->ResolveTable("mid_rb", 0).ok())
      << "rolled-back CREATE TABLE leaked into the checkpoint image";
  auto survived = db_->ResolveTable("t", 0);
  ASSERT_TRUE(survived.ok())
      << "rolled-back DROP TABLE durably lost the table";
  EXPECT_EQ(survived.value()->live_row_count(), 1u);
  EXPECT_TRUE(db_->ResolveTable("mid_cm", 0).ok())
      << "committed mid-window CREATE TABLE lost (or replay failed)";
}

// Regression: a commit whose WAL force failed is rolled back and reported
// failed — its batch (including the kCommit record) must not linger on disk
// to be replayed as committed by the next recovery.
TEST_F(DatabaseTest, FailedCommitNeverResurrects) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  // Separate kSync database: the failure is injected at the fsync, after the
  // full batch hit the file.
  TempDir dir;
  DatabaseOptions options;
  options.data_dir = dir.path();
  options.sync_mode = WalSyncMode::kSync;
  auto opened = Database::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(opened).value();

  Schema schema({{"id", ValueType::kInt, false}});
  {
    Transaction* txn = db->Begin(0);
    PHX_ASSERT_OK(db->CreateTable(txn, "t", schema, {"id"}, false, false, 0));
    PHX_ASSERT_OK(db->Commit(txn));
  }
  TablePtr t = db->ResolveTable("t", 0).value();
  {
    Transaction* txn = db->Begin(0);
    PHX_ASSERT_OK(db->InsertRow(txn, t, {Value::Int(1)}));
    PHX_ASSERT_OK(db->Commit(txn));
  }

  PHX_ASSERT_OK(injector.ArmSpec("wal.fsync=error:code=IoError,count=1", 1));
  {
    Transaction* txn = db->Begin(0);
    PHX_ASSERT_OK(db->InsertRow(txn, t, {Value::Int(2)}));
    EXPECT_FALSE(db->Commit(txn).ok());
  }
  injector.Clear();

  // Crash with NO intervening append: nothing may lazily repair the tail on
  // the next write — the commit path itself must have already truncated the
  // failed batch.
  db->CrashVolatile();
  PHX_ASSERT_OK(db->Recover());
  TablePtr t2 = db->ResolveTable("t", 0).value();
  EXPECT_TRUE(t2->LookupPk({Value::Int(1)}).ok());
  EXPECT_FALSE(t2->LookupPk({Value::Int(2)}).ok())
      << "failed commit was replayed as committed after crash";
  EXPECT_EQ(t2->live_row_count(), 1u);
}

TEST_F(DatabaseTest, WorkAfterCheckpointAlsoRecovers) {
  TablePtr t = MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  PHX_ASSERT_OK(db_->Checkpoint());
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(2), Value::String("b")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 2u);
}

TEST_F(DatabaseTest, RecoverIsIdempotent) {
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
  PHX_ASSERT_OK(db_->Commit(txn));

  Reboot();
  Reboot();  // second crash immediately after recovery
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 1u);
}

TEST_F(DatabaseTest, InterleavedTransactionsRecoverOnlyCommitted) {
  TablePtr t = MakeTable("t");
  Transaction* committed = db_->Begin(0);
  Transaction* abandoned = db_->Begin(0);
  PHX_ASSERT_OK(
      db_->InsertRow(committed, t, {Value::Int(1), Value::String("c")}));
  PHX_ASSERT_OK(
      db_->InsertRow(abandoned, t, {Value::Int(2), Value::String("a")}));
  PHX_ASSERT_OK(db_->Commit(committed));
  // `abandoned` never commits — crash.
  Reboot();
  TablePtr t2 = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(t2->live_row_count(), 1u);
  EXPECT_TRUE(t2->LookupPk({Value::Int(1)}).ok());
}

TEST_F(DatabaseTest, InsertBulkLogsSingleRecordAndRecovers) {
  TablePtr t = MakeTable("t");
  std::vector<Row> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({Value::Int(i), Value::String("bulk")});
  }
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertBulk(txn, t, std::move(rows)));
  PHX_ASSERT_OK(db_->Commit(txn));
  Reboot();
  EXPECT_EQ(db_->ResolveTable("t", 0).value()->live_row_count(), 50u);
}

TEST_F(DatabaseTest, LockConflictTimesOut) {
  TablePtr t = MakeTable("t");
  Transaction* writer = db_->Begin(0);
  PHX_ASSERT_OK(
      db_->InsertRow(writer, t, {Value::Int(1), Value::String("a")}));
  // A second writer on the same key must time out.
  Transaction* blocked = db_->Begin(0);
  auto st = db_->InsertRow(blocked, t, {Value::Int(1), Value::String("b")});
  EXPECT_EQ(st.code(), common::StatusCode::kAborted);
  PHX_ASSERT_OK(db_->Rollback(blocked));
  PHX_ASSERT_OK(db_->Commit(writer));
}

TEST_F(DatabaseTest, CommitReleasesLocks) {
  TablePtr t = MakeTable("t");
  Transaction* first = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(first, t, {Value::Int(1), Value::String("a")}));
  PHX_ASSERT_OK(db_->Commit(first));
  Transaction* second = db_->Begin(0);
  PHX_ASSERT_OK(db_->LockTableExclusive(second, t));
  PHX_ASSERT_OK(db_->Rollback(second));
}

TEST_F(DatabaseTest, DropAndRecreateWithNewSchemaRecovers) {
  // A WAL sequence of CREATE/DROP/CREATE-with-different-schema must replay
  // to the final schema.
  MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->DropTable(txn, "t", false, 0));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  {
    Schema wider({{"id", ValueType::kInt, false},
                  {"v", ValueType::kString, true},
                  {"extra", ValueType::kDouble, true}});
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(
        db_->CreateTable(txn, "t", wider, {"id"}, false, false, 0));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  {
    TablePtr t = db_->ResolveTable("t", 0).value();
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(
        txn, t, {Value::Int(1), Value::String("x"), Value::Double(2.5)}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  Reboot();
  TablePtr recovered = db_->ResolveTable("t", 0).value();
  EXPECT_EQ(recovered->schema().num_columns(), 3u);
  EXPECT_EQ(recovered->live_row_count(), 1u);
}

TEST_F(DatabaseTest, ProcedureDropAndRecreateRecovers) {
  {
    Transaction* txn = db_->Begin(0);
    StoredProcedure proc;
    proc.name = "p";
    proc.body_sql = "SELECT 1";
    PHX_ASSERT_OK(db_->CreateProcedure(txn, proc));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->DropProcedure(txn, "p", false));
    StoredProcedure proc;
    proc.name = "p";
    proc.body_sql = "SELECT 2";
    PHX_ASSERT_OK(db_->CreateProcedure(txn, proc));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  Reboot();
  auto proc = db_->GetProcedure("p");
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(proc->body_sql, "SELECT 2");
}

TEST_F(DatabaseTest, ReadCommittedReleasesReadLocksAtStatementEnd) {
  TablePtr t = MakeTable("t");
  {
    Transaction* txn = db_->Begin(0);
    PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(1), Value::String("a")}));
    PHX_ASSERT_OK(db_->Commit(txn));
  }
  // Reader takes a table-S lock, then releases shared locks (statement end).
  Transaction* reader = db_->Begin(0);
  PHX_ASSERT_OK(db_->LockTableShared(reader, t));
  db_->ReleaseSharedLocks(reader);
  // A writer can now proceed even though the reader's txn is still open.
  Transaction* writer = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(writer, t, {Value::Int(2), Value::String("b")}));
  PHX_ASSERT_OK(db_->Commit(writer));
  PHX_ASSERT_OK(db_->Commit(reader));
}

TEST_F(DatabaseTest, ReleaseSharedKeepsWriteLocks) {
  TablePtr t = MakeTable("t");
  Transaction* writer = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(writer, t, {Value::Int(1), Value::String("a")}));
  db_->ReleaseSharedLocks(writer);  // must NOT drop the IX/X locks
  Transaction* blocked = db_->Begin(0);
  EXPECT_FALSE(
      db_->InsertRow(blocked, t, {Value::Int(1), Value::String("b")}).ok());
  PHX_ASSERT_OK(db_->Rollback(blocked));
  PHX_ASSERT_OK(db_->Commit(writer));
}

TEST_F(DatabaseTest, DurabilityAcrossProcessReopen) {
  // Simulates a full process restart: close the Database object entirely
  // and open a new one over the same directory.
  TablePtr t = MakeTable("t");
  Transaction* txn = db_->Begin(0);
  PHX_ASSERT_OK(db_->InsertRow(txn, t, {Value::Int(9), Value::String("z")}));
  PHX_ASSERT_OK(db_->Commit(txn));
  t.reset();
  db_.reset();

  DatabaseOptions options;
  options.data_dir = dir_.path();
  auto reopened = Database::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->ResolveTable("t", 0).value()->live_row_count(), 1u);
}

}  // namespace
}  // namespace phoenix::engine
