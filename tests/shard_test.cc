// Tests for the in-process scatter-gather sharding layer (DESIGN.md §20):
// the ShardRouter's placement rules and stable hash, single-shard fast-path
// routing (trip counts asserted at the shard dispatch counters), cross-shard
// merge determinism, PHOENIX_SHARDS=1 equivalence with the unsharded engine,
// and partition-aware Phoenix recovery scoped to the crashed shard.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/shard_router.h"
#include "obs/metrics.h"
#include "sql/parser.h"
#include "test_util.h"

namespace phoenix::testing {
namespace {

using common::Row;
using common::Value;
using engine::ShardRouter;
using engine::ShardTableClass;
using engine::ShardTableInfo;

// --- Router placement + hash ------------------------------------------------

TEST(ShardRouterTest, KeyHashIsStableAndSpreads) {
  std::set<int> seen;
  for (int64_t i = 0; i < 64; ++i) {
    int first = ShardRouter::ShardForKey({Value::Int(i)}, 4);
    int second = ShardRouter::ShardForKey({Value::Int(i)}, 4);
    EXPECT_EQ(first, second) << "key " << i;
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 4);
    seen.insert(first);
  }
  // crc32 over 64 consecutive keys must not degenerate to one bucket.
  EXPECT_GE(seen.size(), 3u);
  // Numeric canonicalization: INT 3 and DOUBLE 3.0 are the same key, so an
  // INSERT literal and a WHERE literal of different numeric kinds route to
  // the same shard.
  EXPECT_EQ(ShardRouter::ShardForKey({Value::Int(3)}, 4),
            ShardRouter::ShardForKey({Value::Double(3.0)}, 4));
  // Composite keys hash all components.
  EXPECT_EQ(ShardRouter::ShardForKey({Value::Int(1), Value::Int(2)}, 4),
            ShardRouter::ShardForKey({Value::Int(1), Value::Int(2)}, 4));
}

TEST(ShardRouterTest, NameHashIsStable) {
  for (const char* name : {"kv", "phoenix_status", "some_longer_table"}) {
    int first = ShardRouter::ShardForName(name, 8);
    EXPECT_EQ(first, ShardRouter::ShardForName(name, 8)) << name;
    EXPECT_GE(first, 0);
    EXPECT_LT(first, 8);
  }
}

const sql::CreateTableStmt& ParseCreate(const std::string& ddl,
                                        sql::StatementPtr* keep) {
  auto parsed = sql::ParseStatement(ddl);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  *keep = std::move(parsed).value();
  return static_cast<const sql::CreateTableStmt&>(**keep);
}

TEST(ShardRouterTest, RegisterCreateAssignsPlacementClasses) {
  ShardRouter router(4);
  sql::StatementPtr keep;

  // Declared SHARD KEY wins over the PK.
  router.RegisterCreate(ParseCreate(
      "CREATE TABLE a (x INTEGER PRIMARY KEY, w INTEGER, v VARCHAR(8)) "
      "SHARD KEY (w)",
      &keep));
  ShardTableInfo info;
  ASSERT_TRUE(router.Lookup("a", &info));
  EXPECT_EQ(info.cls, ShardTableClass::kHash);
  ASSERT_EQ(info.key_columns.size(), 1u);
  EXPECT_EQ(info.key_columns[0], "w");

  // REPLICATED is a full copy everywhere.
  router.RegisterCreate(ParseCreate(
      "CREATE TABLE b (x INTEGER PRIMARY KEY, v VARCHAR(8)) REPLICATED",
      &keep));
  ASSERT_TRUE(router.Lookup("b", &info));
  EXPECT_EQ(info.cls, ShardTableClass::kReplicated);

  // No SHARD KEY: the PK is the default partitioning key.
  router.RegisterCreate(ParseCreate(
      "CREATE TABLE c (x INTEGER, y INTEGER, PRIMARY KEY (x, y))", &keep));
  ASSERT_TRUE(router.Lookup("c", &info));
  EXPECT_EQ(info.cls, ShardTableClass::kHash);
  ASSERT_EQ(info.key_columns.size(), 2u);
  EXPECT_EQ(info.key_columns[0], "x");
  EXPECT_EQ(info.key_columns[1], "y");

  // No PK and no SHARD KEY: pinned whole-table by name hash.
  router.RegisterCreate(
      ParseCreate("CREATE TABLE d (x INTEGER, v VARCHAR(8))", &keep));
  ASSERT_TRUE(router.Lookup("d", &info));
  EXPECT_EQ(info.cls, ShardTableClass::kPinned);
  EXPECT_EQ(info.pinned_shard, ShardRouter::ShardForName("d", 4));

  EXPECT_FALSE(router.Lookup("nope", &info));
}

// --- Sharded server routing -------------------------------------------------

int PopCount(uint64_t mask) {
  int n = 0;
  for (; mask != 0; mask &= mask - 1) ++n;
  return n;
}

uint64_t ShardStatementTotal(int shards) {
  uint64_t total = 0;
  for (int i = 0; i < shards; ++i) {
    total += obs::Registry::Global()
                 .counter("engine.shard." + std::to_string(i) + ".statements")
                 ->Value();
  }
  return total;
}

engine::ServerOptions ShardedOptions(int shards) {
  engine::ServerOptions options;
  options.shards = shards;
  return options;
}

TEST(ShardServerTest, SingleShardPkRoutingTakesOneDispatch) {
  ServerHarness harness(ShardedOptions(4));
  PHX_ASSERT_OK(
      harness.Exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, v VARCHAR(16))"));

  PHX_ASSERT_OK_AND_ASSIGN(odbc::ConnectionPtr conn, harness.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(odbc::StatementPtr stmt, conn->CreateStatement());

  uint64_t union_mask = 0;
  for (int i = 0; i < 32; ++i) {
    PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO kv VALUES (" +
                                   std::to_string(i) + ", 'v" +
                                   std::to_string(i) + "')"));
    // A single-row insert with a bound key is the fast path: exactly one
    // shard participates.
    EXPECT_EQ(PopCount(stmt->LastShardMask()), 1) << "insert " << i;
    union_mask |= stmt->LastShardMask();
  }
  // 32 consecutive keys must land on more than one shard.
  EXPECT_GE(PopCount(union_mask), 2);

  // A PK point SELECT dispatches to exactly one shard — one engine-side
  // statement in total, not one per shard.
  uint64_t before = ShardStatementTotal(4);
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM kv WHERE id = 7"));
  EXPECT_EQ(ShardStatementTotal(4) - before, 1u);
  EXPECT_EQ(PopCount(stmt->LastShardMask()), 1);
  PHX_ASSERT_OK_AND_ASSIGN(std::vector<Row> rows, stmt->FetchBlock(10));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "v7");

  // An unbounded scan fans out to all four shards.
  before = ShardStatementTotal(4);
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM kv"));
  EXPECT_EQ(ShardStatementTotal(4) - before, 4u);
  EXPECT_EQ(PopCount(stmt->LastShardMask()), 4);
  PHX_ASSERT_OK_AND_ASSIGN(rows, stmt->FetchBlock(1000));
  EXPECT_EQ(rows.size(), 32u);
}

std::vector<Row> RunScatter(ServerHarness* harness, const std::string& sql) {
  auto rows = harness->QueryAll(sql);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? std::move(rows).value() : std::vector<Row>{};
}

TEST(ShardServerTest, CrossShardMergeOrderIsDeterministic) {
  auto populate = [](ServerHarness* harness) {
    PHX_ASSERT_OK(harness->Exec(
        "CREATE TABLE kv (id INTEGER PRIMARY KEY, v VARCHAR(16))"));
    for (int i = 0; i < 40; ++i) {
      PHX_ASSERT_OK(harness->Exec("INSERT INTO kv VALUES (" +
                                  std::to_string(i) + ", 'v" +
                                  std::to_string(i) + "')"));
    }
  };
  ServerHarness first(ShardedOptions(4));
  populate(&first);
  ServerHarness second(ShardedOptions(4));
  populate(&second);

  // The fanout merge must produce one canonical order: repeated runs on one
  // server and runs on an identically-loaded twin return the same sequence.
  std::vector<Row> a1 = RunScatter(&first, "SELECT id, v FROM kv");
  std::vector<Row> a2 = RunScatter(&first, "SELECT id, v FROM kv");
  std::vector<Row> b1 = RunScatter(&second, "SELECT id, v FROM kv");
  ASSERT_EQ(a1.size(), 40u);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1, b1);

  // Ordered fanouts merge to the global order.
  std::vector<Row> ordered =
      RunScatter(&first, "SELECT id FROM kv ORDER BY id DESC");
  ASSERT_EQ(ordered.size(), 40u);
  for (size_t i = 0; i < ordered.size(); ++i) {
    EXPECT_EQ(ordered[i][0].AsInt(), static_cast<int64_t>(39 - i));
  }

  // Fanout aggregates combine across shards.
  std::vector<Row> agg = RunScatter(&first, "SELECT COUNT(*) FROM kv");
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_EQ(agg[0][0].AsInt(), 40);
}

void RunMixedWorkload(ServerHarness* harness) {
  PHX_ASSERT_OK(harness->Exec(
      "CREATE TABLE kv (id INTEGER PRIMARY KEY, v VARCHAR(16))"));
  PHX_ASSERT_OK(harness->Exec("CREATE TABLE logline (msg VARCHAR(32))"));
  PHX_ASSERT_OK_AND_ASSIGN(odbc::ConnectionPtr conn,
                           harness->ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(odbc::StatementPtr stmt, conn->CreateStatement());
  for (int i = 0; i < 20; ++i) {
    PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO kv VALUES (" +
                                   std::to_string(i) + ", 'x')"));
  }
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE kv SET v = 'y' WHERE id = 3"));
  PHX_ASSERT_OK(stmt->ExecDirect("INSERT INTO logline VALUES ('committed')"));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("DELETE FROM kv WHERE id = 5"));
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE kv SET v = 'z' WHERE id < 4"));
}

uint32_t TableDigest(engine::SimulatedServer* server,
                     const std::string& name) {
  auto table = server->database()->ResolveTable(name, 0);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return table.ok() ? table.value()->ContentDigest() : 0;
}

TEST(ShardServerTest, ShardsOneIsByteIdenticalToUnsharded) {
  // PHOENIX_SHARDS=1 must run EXACTLY the unsharded code path: same engine,
  // same slot layout, same digests — the coordinator stays dark.
  ServerHarness unsharded;  // default options (shards knob unset -> 1)
  RunMixedWorkload(&unsharded);
  ServerHarness one_shard(ShardedOptions(1));
  RunMixedWorkload(&one_shard);

  EXPECT_EQ(one_shard.server()->shard_count(), 1);
  EXPECT_EQ(one_shard.server()->router(), nullptr);
  for (const char* table : {"kv", "logline"}) {
    EXPECT_EQ(TableDigest(unsharded.server(), table),
              TableDigest(one_shard.server(), table))
        << table;
  }
}

// --- Partition-aware Phoenix recovery ---------------------------------------

// Maps each key in [0, n) to its shard by inserting it and reading back the
// statement's shard mask (ground truth from the coordinator, not recomputed).
std::map<int, int> InsertAndMapShards(odbc::Statement* stmt, int n) {
  std::map<int, int> shard_of;
  for (int i = 0; i < n; ++i) {
    auto st = stmt->ExecDirect("INSERT INTO kv VALUES (" + std::to_string(i) +
                               ", 'v" + std::to_string(i) + "')");
    EXPECT_TRUE(st.ok()) << st.ToString();
    uint64_t mask = stmt->LastShardMask();
    EXPECT_EQ(PopCount(mask), 1);
    int shard = 0;
    while ((mask & 1) == 0 && shard < 64) {
      mask >>= 1;
      ++shard;
    }
    shard_of[i] = shard;
  }
  return shard_of;
}

TEST(ShardRecoveryTest, CrashedShardRecoversScopedAndOthersObserveNothing) {
  ServerHarness harness(ShardedOptions(4));
  PHX_ASSERT_OK(
      harness.Exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, v VARCHAR(16))"));
  PHX_ASSERT_OK_AND_ASSIGN(odbc::ConnectionPtr setup,
                           harness.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(odbc::StatementPtr setup_stmt,
                           setup->CreateStatement());
  std::map<int, int> shard_of = InsertAndMapShards(setup_stmt.get(), 32);

  // Pick a victim shard != 0 (shard 0 hosts every session's probe temp
  // table, so crashing it touches ALL sessions by design) and a bystander
  // key on a different shard.
  int victim_shard = -1, victim_key = -1, bystander_key = -1;
  for (const auto& [key, shard] : shard_of) {
    if (shard != 0 && victim_shard < 0) {
      victim_shard = shard;
      victim_key = key;
    }
  }
  ASSERT_GE(victim_shard, 0) << "no key landed off shard 0";
  for (const auto& [key, shard] : shard_of) {
    if (shard != victim_shard) {
      bystander_key = key;
      break;
    }
  }
  ASSERT_GE(bystander_key, 0);

  auto point_select = [](odbc::Statement* stmt, int key) {
    common::Status st = stmt->ExecDirect("SELECT v FROM kv WHERE id = " +
                                         std::to_string(key));
    if (!st.ok()) return st;
    auto rows = stmt->FetchBlock(10);
    if (!rows.ok()) return rows.status();
    EXPECT_EQ(rows.value().size(), 1u);
    return common::Status::OK();
  };

  PHX_ASSERT_OK_AND_ASSIGN(odbc::ConnectionPtr touched,
                           harness.ConnectPhoenix("PHOENIX_RETRY_MS=5"));
  PHX_ASSERT_OK_AND_ASSIGN(odbc::ConnectionPtr untouched,
                           harness.ConnectPhoenix("PHOENIX_RETRY_MS=5"));
  PHX_ASSERT_OK_AND_ASSIGN(odbc::StatementPtr touched_stmt,
                           touched->CreateStatement());
  PHX_ASSERT_OK_AND_ASSIGN(odbc::StatementPtr untouched_stmt,
                           untouched->CreateStatement());
  PHX_ASSERT_OK(point_select(touched_stmt.get(), victim_key));
  PHX_ASSERT_OK(point_select(untouched_stmt.get(), bystander_key));

  auto* touched_conn = static_cast<phx::PhoenixConnection*>(touched.get());
  auto* untouched_conn = static_cast<phx::PhoenixConnection*>(untouched.get());

  harness.server()->CrashShard(victim_shard);
  std::thread restarter([&harness, victim_shard] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    PHX_EXPECT_OK(harness.server()->RestartShard(victim_shard));
  });

  // The bystander keeps working THROUGH the outage — no error, no recovery.
  PHX_EXPECT_OK(point_select(untouched_stmt.get(), bystander_key));

  // The touched session rides scoped recovery: the driver waits out the
  // shard restart and replays only against the crashed partition.
  PHX_EXPECT_OK(point_select(touched_stmt.get(), victim_key));
  restarter.join();

  EXPECT_EQ(touched_conn->recovery_count(), 1u);
  EXPECT_EQ(touched_conn->stats().shard_recoveries.load(), 1u);
  EXPECT_EQ(untouched_conn->recovery_count(), 0u);
  EXPECT_EQ(untouched_conn->stats().shard_recoveries.load(), 0u);

  // Post-recovery both sessions see consistent data everywhere.
  PHX_EXPECT_OK(point_select(touched_stmt.get(), bystander_key));
  PHX_EXPECT_OK(point_select(untouched_stmt.get(), victim_key));
}

TEST(ShardRecoveryTest, WholeServerCrashStillRecoversWhenSharded) {
  ServerHarness harness(ShardedOptions(4));
  PHX_ASSERT_OK(
      harness.Exec("CREATE TABLE kv (id INTEGER PRIMARY KEY, v VARCHAR(16))"));
  PHX_ASSERT_OK(harness.Exec("INSERT INTO kv VALUES (1, 'one')"));

  PHX_ASSERT_OK_AND_ASSIGN(odbc::ConnectionPtr conn,
                           harness.ConnectPhoenix("PHOENIX_RETRY_MS=5"));
  PHX_ASSERT_OK_AND_ASSIGN(odbc::StatementPtr stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM kv WHERE id = 1"));

  std::thread restarter = CrashAndRestartAsync(harness.server(), 100);
  PHX_EXPECT_OK(stmt->ExecDirect("SELECT v FROM kv WHERE id = 1"));
  restarter.join();

  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn.get());
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
  // A full-server loss is a FULL recovery, not a scoped one.
  EXPECT_EQ(phoenix_conn->stats().shard_recoveries.load(), 0u);
}

}  // namespace
}  // namespace phoenix::testing
