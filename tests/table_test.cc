#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "engine/key_encoding.h"
#include "engine/table.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Schema;
using common::Value;
using common::ValueType;

Schema TwoColSchema() {
  return Schema({{"id", ValueType::kInt, false},
                 {"name", ValueType::kString, true}});
}

TEST(TableTest, InsertAndRead) {
  Table t("t", TwoColSchema(), {"id"}, false);
  auto id = t.Insert({Value::Int(1), Value::String("a")});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(t.IsLive(*id));
  EXPECT_EQ(t.GetRow(*id)[1].AsString(), "a");
  EXPECT_EQ(t.live_row_count(), 1u);
}

TEST(TableTest, PkUniquenessEnforced) {
  Table t("t", TwoColSchema(), {"id"}, false);
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a")}).ok());
  auto dup = t.Insert({Value::Int(1), Value::String("b")});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), common::StatusCode::kConstraintViolation);
}

TEST(TableTest, DeleteTombstones) {
  Table t("t", TwoColSchema(), {"id"}, false);
  RowId id = t.Insert({Value::Int(1), Value::String("a")}).value();
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_FALSE(t.IsLive(id));
  EXPECT_EQ(t.live_row_count(), 0u);
  EXPECT_EQ(t.slot_count(), 1u);  // slot is not reused
  // Double delete fails.
  EXPECT_FALSE(t.Delete(id).ok());
}

TEST(TableTest, DeleteFreesPkForReinsert) {
  Table t("t", TwoColSchema(), {"id"}, false);
  RowId id = t.Insert({Value::Int(1), Value::String("a")}).value();
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::String("b")}).ok());
}

// Regression: Undelete must not steal a key's index entry from another
// slot's lineage, even a dead one — snapshot readers reach that lineage's
// committed versions through the entry, and repointing it would orphan them.
TEST(TableTest, UndeleteRefusesWhenKeyLineageLivesInAnotherSlot) {
  Table t("t", TwoColSchema(), {"id"}, false);
  RowId first = t.Insert({Value::Int(1), Value::String("a")}).value();
  ASSERT_TRUE(t.Delete(first).ok());
  RowId second = t.Insert({Value::Int(2), Value::String("b")}).value();
  // Key-moving update re-homes key 1's index entry onto `second`, leaving
  // `first` a tombstone whose row still encodes key 1.
  ASSERT_TRUE(t.Update(second, {Value::Int(1), Value::String("b")}).ok());
  ASSERT_TRUE(t.Delete(second).ok());

  // Undelete of `first` would have to overwrite the (dead) lineage at
  // `second` in the index — refuse rather than orphan it.
  auto stolen = t.Undelete(first);
  ASSERT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.code(), common::StatusCode::kConstraintViolation);
  EXPECT_FALSE(t.IsLive(first));

  // The slot that owns the entry revives cleanly.
  ASSERT_TRUE(t.Undelete(second).ok());
  EXPECT_EQ(t.LookupPk({Value::Int(1)}).value(), second);
  EXPECT_EQ(t.GetRow(second)[1].AsString(), "b");
}

TEST(TableTest, UpdateInPlace) {
  Table t("t", TwoColSchema(), {"id"}, false);
  RowId id = t.Insert({Value::Int(1), Value::String("a")}).value();
  ASSERT_TRUE(t.Update(id, {Value::Int(1), Value::String("z")}).ok());
  EXPECT_EQ(t.GetRow(id)[1].AsString(), "z");
}

TEST(TableTest, UpdateMovesPkIndex) {
  Table t("t", TwoColSchema(), {"id"}, false);
  RowId id = t.Insert({Value::Int(1), Value::String("a")}).value();
  ASSERT_TRUE(t.Update(id, {Value::Int(2), Value::String("a")}).ok());
  EXPECT_FALSE(t.LookupPk({Value::Int(1)}).ok());
  EXPECT_EQ(t.LookupPk({Value::Int(2)}).value(), id);
}

TEST(TableTest, UpdateToDuplicatePkRejected) {
  Table t("t", TwoColSchema(), {"id"}, false);
  t.Insert({Value::Int(1), Value::String("a")}).value();
  RowId second = t.Insert({Value::Int(2), Value::String("b")}).value();
  auto st = t.Update(second, {Value::Int(1), Value::String("b")});
  EXPECT_EQ(st.code(), common::StatusCode::kConstraintViolation);
}

TEST(TableTest, CompositePkLookup) {
  Schema schema({{"a", ValueType::kInt, false},
                 {"b", ValueType::kInt, false},
                 {"v", ValueType::kString, true}});
  Table t("t", schema, {"a", "b"}, false);
  t.Insert({Value::Int(1), Value::Int(10), Value::String("x")}).value();
  RowId id2 =
      t.Insert({Value::Int(1), Value::Int(20), Value::String("y")}).value();
  auto found = t.LookupPk({Value::Int(1), Value::Int(20)});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, id2);
  EXPECT_FALSE(t.LookupPk({Value::Int(2), Value::Int(10)}).ok());
}

TEST(TableTest, NoPkLookupFails) {
  Table t("t", TwoColSchema(), {}, false);
  EXPECT_FALSE(t.has_primary_key());
  EXPECT_FALSE(t.LookupPk({Value::Int(1)}).ok());
}

TEST(TableTest, SchemaValidationOnInsert) {
  Table t("t", TwoColSchema(), {"id"}, false);
  EXPECT_FALSE(t.Insert({Value::String("wrong"), Value::String("a")}).ok());
  EXPECT_FALSE(t.Insert({Value::Int(1)}).ok());  // arity
  EXPECT_FALSE(t.Insert({Value::Null(), Value::String("a")}).ok());  // NOT NULL
}

TEST(TableTest, SnapshotSkipsTombstones) {
  Table t("t", TwoColSchema(), {"id"}, false);
  for (int i = 0; i < 10; ++i) {
    t.Insert({Value::Int(i), Value::String("r")}).value();
  }
  t.Delete(3).ok();
  t.Delete(7).ok();
  auto rows = t.SnapshotRows();
  EXPECT_EQ(rows.size(), 8u);
}

TEST(TableTest, InsertBulkStopsAtBadRow) {
  Table t("t", TwoColSchema(), {"id"}, false);
  std::vector<Row> rows = {{Value::Int(1), Value::String("a")},
                           {Value::Int(1), Value::String("dup")}};
  EXPECT_FALSE(t.InsertBulk(std::move(rows)).ok());
  EXPECT_EQ(t.live_row_count(), 1u);
}

// --- Ordered key encoding ----------------------------------------------------

std::string Enc(const Value& v) {
  std::string out;
  AppendOrderedKey(v, &out);
  return out;
}

TEST(KeyEncodingTest, IntegersOrderLikeValues) {
  int64_t samples[] = {INT64_MIN / 4, -1000, -1, 0, 1, 7, 1000,
                       INT64_MAX / 4};
  for (size_t i = 1; i < sizeof(samples) / sizeof(samples[0]); ++i) {
    EXPECT_LT(Enc(Value::Int(samples[i - 1])), Enc(Value::Int(samples[i])))
        << samples[i - 1] << " vs " << samples[i];
  }
}

TEST(KeyEncodingTest, DoublesOrderLikeValues) {
  double samples[] = {-1e9, -2.5, -0.25, 0.0, 0.25, 2.5, 1e9};
  for (size_t i = 1; i < sizeof(samples) / sizeof(samples[0]); ++i) {
    EXPECT_LT(Enc(Value::Double(samples[i - 1])),
              Enc(Value::Double(samples[i])));
  }
}

TEST(KeyEncodingTest, CrossNumericEqualityMatchesSqlEquals) {
  EXPECT_EQ(Enc(Value::Int(3)), Enc(Value::Double(3.0)));
  EXPECT_NE(Enc(Value::Int(3)), Enc(Value::Double(3.5)));
}

TEST(KeyEncodingTest, StringsOrderLexicographically) {
  EXPECT_LT(Enc(Value::String("a")), Enc(Value::String("ab")));
  EXPECT_LT(Enc(Value::String("ab")), Enc(Value::String("b")));
  EXPECT_LT(Enc(Value::String("")), Enc(Value::String("a")));
}

TEST(KeyEncodingTest, EmbeddedNulCharactersPreserved) {
  std::string with_nul("a\0b", 3);
  EXPECT_NE(Enc(Value::String(with_nul)), Enc(Value::String("a")));
  EXPECT_LT(Enc(Value::String("a")), Enc(Value::String(with_nul)));
}

TEST(KeyEncodingTest, NullSortsFirst) {
  EXPECT_LT(Enc(Value::Null()), Enc(Value::Int(INT64_MIN / 4)));
  EXPECT_LT(Enc(Value::Null()), Enc(Value::String("")));
}

TEST(KeyEncodingTest, CompositeKeysSelfDelimit) {
  // ("ab", "c") must differ from ("a", "bc") — string terminators prevent
  // concatenation ambiguity.
  std::string k1 = EncodeOrderedKey(
      std::vector<Value>{Value::String("ab"), Value::String("c")});
  std::string k2 = EncodeOrderedKey(
      std::vector<Value>{Value::String("a"), Value::String("bc")});
  EXPECT_NE(k1, k2);
}

// --- PK prefix scans -----------------------------------------------------------

TEST(TableTest, ScanPkPrefixReturnsMatchesInKeyOrder) {
  Schema schema({{"w", ValueType::kInt, false},
                 {"d", ValueType::kInt, false},
                 {"o", ValueType::kInt, false},
                 {"v", ValueType::kString, true}});
  Table t("orders", schema, {"w", "d", "o"}, false);
  for (int w = 1; w <= 2; ++w) {
    for (int d = 1; d <= 3; ++d) {
      for (int o = 5; o >= 1; --o) {  // insert out of order
        t.Insert({Value::Int(w), Value::Int(d), Value::Int(o),
                  Value::String("x")})
            .value();
      }
    }
  }
  auto district = t.ScanPkPrefix({Value::Int(1), Value::Int(2)});
  ASSERT_TRUE(district.ok());
  ASSERT_EQ(district->size(), 5u);
  for (size_t i = 0; i < district->size(); ++i) {
    const Row& row = t.GetRow((*district)[i]);
    EXPECT_EQ(row[0].AsInt(), 1);
    EXPECT_EQ(row[1].AsInt(), 2);
    EXPECT_EQ(row[2].AsInt(), static_cast<int64_t>(i + 1));  // key order
  }
  auto warehouse = t.ScanPkPrefix({Value::Int(2)});
  ASSERT_TRUE(warehouse.ok());
  EXPECT_EQ(warehouse->size(), 15u);
  auto none = t.ScanPkPrefix({Value::Int(9)});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(TableTest, ScanPkPrefixSkipsDeletedAndValidatesArity) {
  Schema schema({{"a", ValueType::kInt, false},
                 {"b", ValueType::kInt, false}});
  Table t("t", schema, {"a", "b"}, false);
  RowId id = t.Insert({Value::Int(1), Value::Int(1)}).value();
  t.Insert({Value::Int(1), Value::Int(2)}).value();
  t.Delete(id).ok();
  auto rows = t.ScanPkPrefix({Value::Int(1)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  EXPECT_FALSE(t.ScanPkPrefix({}).ok());
  EXPECT_FALSE(
      t.ScanPkPrefix({Value::Int(1), Value::Int(1), Value::Int(1)}).ok());
}

TEST(TableTest, ScanPkPrefixNoFalseMatchesAcrossAdjacentKeys) {
  // Prefix (1) must not match keys starting with 10 or 11.
  Schema schema({{"a", ValueType::kInt, false},
                 {"b", ValueType::kInt, false}});
  Table t("t", schema, {"a", "b"}, false);
  t.Insert({Value::Int(1), Value::Int(1)}).value();
  t.Insert({Value::Int(10), Value::Int(1)}).value();
  t.Insert({Value::Int(11), Value::Int(1)}).value();
  auto rows = t.ScanPkPrefix({Value::Int(1)});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

// --- Catalog ---------------------------------------------------------------

TEST(CatalogTest, CreateResolveDrop) {
  Catalog catalog;
  auto t = catalog.CreateTable("T1", TwoColSchema(), {"id"}, false, 0);
  ASSERT_TRUE(t.ok());
  // Case-insensitive resolution.
  EXPECT_TRUE(catalog.Resolve("t1", 1).ok());
  EXPECT_TRUE(catalog.Resolve("T1", 99).ok());
  ASSERT_TRUE(catalog.DropTable("t1", 1).ok());
  EXPECT_FALSE(catalog.Resolve("t1", 1).ok());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TwoColSchema(), {}, false, 0).ok());
  auto dup = catalog.CreateTable("T", TwoColSchema(), {}, false, 0);
  EXPECT_EQ(dup.status().code(), common::StatusCode::kAlreadyExists);
}

TEST(CatalogTest, BadPkColumnRejected) {
  Catalog catalog;
  auto bad = catalog.CreateTable("t", TwoColSchema(), {"missing"}, false, 0);
  EXPECT_FALSE(bad.ok());
}

TEST(CatalogTest, TempTablesScopedToSession) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("probe", TwoColSchema(), {}, true, 7).ok());
  EXPECT_TRUE(catalog.Resolve("probe", 7).ok());
  EXPECT_FALSE(catalog.Resolve("probe", 8).ok());  // other session blind
}

TEST(CatalogTest, TempShadowsPersistentForOwner) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", TwoColSchema(), {}, false, 0).ok());
  ASSERT_TRUE(catalog.CreateTable("t", TwoColSchema(), {}, true, 7).ok());
  auto for_owner = catalog.Resolve("t", 7);
  ASSERT_TRUE(for_owner.ok());
  EXPECT_TRUE((*for_owner)->temporary());
  auto for_other = catalog.Resolve("t", 8);
  ASSERT_TRUE(for_other.ok());
  EXPECT_FALSE((*for_other)->temporary());
}

TEST(CatalogTest, TempTableRequiresSession) {
  Catalog catalog;
  EXPECT_FALSE(catalog.CreateTable("t", TwoColSchema(), {}, true, 0).ok());
}

TEST(CatalogTest, DropSessionTempTables) {
  Catalog catalog;
  catalog.CreateTable("a", TwoColSchema(), {}, true, 7).value();
  catalog.CreateTable("b", TwoColSchema(), {}, true, 7).value();
  catalog.DropSessionTempTables(7);
  EXPECT_FALSE(catalog.Resolve("a", 7).ok());
  EXPECT_FALSE(catalog.Resolve("b", 7).ok());
}

TEST(CatalogTest, ProcedureLifecycle) {
  Catalog catalog;
  StoredProcedure proc;
  proc.name = "LoadIt";
  proc.body_sql = "SELECT 1";
  ASSERT_TRUE(catalog.CreateProcedure(proc).ok());
  EXPECT_TRUE(catalog.GetProcedure("loadit").ok());
  EXPECT_FALSE(catalog.CreateProcedure(proc).ok());  // duplicate
  ASSERT_TRUE(catalog.DropProcedure("LOADIT").ok());
  EXPECT_FALSE(catalog.GetProcedure("loadit").ok());
}

TEST(CatalogTest, AdoptRestoresDroppedTable) {
  Catalog catalog;
  TablePtr t = catalog.CreateTable("t", TwoColSchema(), {}, false, 0).value();
  catalog.DropTable("t", 0).ok();
  ASSERT_TRUE(catalog.AdoptTable(t, 0).ok());
  EXPECT_TRUE(catalog.Resolve("t", 0).ok());
}

TEST(CatalogTest, ClearWipesEverything) {
  Catalog catalog;
  catalog.CreateTable("t", TwoColSchema(), {}, false, 0).value();
  catalog.CreateTable("tmp", TwoColSchema(), {}, true, 7).value();
  StoredProcedure proc;
  proc.name = "p";
  catalog.CreateProcedure(proc).ok();
  catalog.Clear();
  EXPECT_FALSE(catalog.Resolve("t", 0).ok());
  EXPECT_FALSE(catalog.Resolve("tmp", 7).ok());
  EXPECT_FALSE(catalog.GetProcedure("p").ok());
}

}  // namespace
}  // namespace phoenix::engine
