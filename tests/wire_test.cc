#include <gtest/gtest.h>

#include "test_util.h"
#include "wire/tcp.h"

namespace phoenix::wire {
namespace {

using common::Value;
using engine::ServerOptions;
using engine::SimulatedServer;
using phoenix::testing::TempDir;

TEST(MessagesTest, RequestRoundTrip) {
  Request request;
  request.type = RequestType::kExecute;
  request.session = 42;
  request.cursor = 7;
  request.count = 100;
  request.sql = "SELECT 1";
  request.user = "u";
  auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, RequestType::kExecute);
  EXPECT_EQ(parsed->session, 42u);
  EXPECT_EQ(parsed->sql, "SELECT 1");
}

TEST(MessagesTest, ResponseRoundTripWithRows) {
  Response response;
  response.code = common::StatusCode::kOk;
  response.is_query = true;
  response.cursor = 3;
  response.schema = common::Schema({{"a", common::ValueType::kInt, true}});
  response.rows = {{Value::Int(1)}, {Value::Int(2)}};
  response.done = true;
  auto bytes = response.Serialize();
  auto parsed = Response::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_query);
  EXPECT_EQ(parsed->rows.size(), 2u);
  EXPECT_TRUE(parsed->done);
}

TEST(MessagesTest, ErrorResponseCarriesStatus) {
  Response response;
  response.code = common::StatusCode::kNotFound;
  response.error_message = "no such table";
  auto bytes = response.Serialize();
  auto parsed = Response::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->ToStatus().code(), common::StatusCode::kNotFound);
}

TEST(MessagesTest, TruncatedResponseRejected) {
  Response response;
  response.rows = {{Value::String("payload")}};
  auto bytes = response.Serialize();
  // Cut mid-field: removing a whole optional trailing group would be a
  // legitimate older frame, but a partial field can only be corruption.
  bytes.resize(bytes.size() - 2);
  EXPECT_FALSE(Response::Deserialize(bytes.data(), bytes.size()).ok());
}

TEST(MessagesTest, RequestRoundTripWithFirstBatch) {
  Request request;
  request.type = RequestType::kExecute;
  request.session = 9;
  request.sql = "SELECT 1";
  request.first_batch = 64;
  auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first_batch, 64u);
}

TEST(MessagesTest, LegacyRequestLayoutsStillParse) {
  // Frames from older clients end early: the trace header and the
  // first-batch hint are optional trailing fields. Hand-build both vintages
  // and check they deserialize with the extras defaulted to zero.
  auto base = [] {
    common::BinaryWriter w;
    w.PutU8(static_cast<uint8_t>(RequestType::kExecute));
    w.PutU64(42);  // session
    w.PutU64(0);   // cursor
    w.PutU64(0);   // count
    w.PutString("SELECT 1");
    w.PutString("u");
    w.PutString("");
    w.PutString("");
    return w;
  };

  // Pre-obs layout: stops after the string block.
  auto pre_obs = base().TakeData();
  auto parsed = Request::Deserialize(pre_obs.data(), pre_obs.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->session, 42u);
  EXPECT_EQ(parsed->sql, "SELECT 1");
  EXPECT_EQ(parsed->trace_id, 0u);
  EXPECT_EQ(parsed->first_batch, 0u);

  // Obs-era layout: trace header present, first-batch hint absent.
  common::BinaryWriter with_trace = base();
  with_trace.PutU64(0xabc);  // trace_id
  with_trace.PutU64(0xdef);  // span_id
  auto obs_era = with_trace.TakeData();
  parsed = Request::Deserialize(obs_era.data(), obs_era.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace_id, 0xabcu);
  EXPECT_EQ(parsed->span_id, 0xdefu);
  EXPECT_EQ(parsed->first_batch, 0u);
}

TEST(MessagesTest, ResponseSerializeReuseMatchesFresh) {
  // The buffer-reuse overload must produce byte-identical frames; the old
  // Response layout is unchanged (piggybacked rows ride in existing fields).
  Response response;
  response.is_query = true;
  response.cursor = 5;
  response.schema = common::Schema({{"a", common::ValueType::kInt, true}});
  response.rows = {{Value::Int(7)}, {Value::Int(8)}};
  response.done = true;
  auto fresh = response.Serialize();
  std::vector<uint8_t> scratch(256, 0xee);
  auto reused = response.Serialize(std::move(scratch));
  EXPECT_EQ(reused, fresh);
  auto parsed = Response::Deserialize(reused.data(), reused.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows.size(), 2u);
}

TEST(MessagesTest, ExecuteBundleRequestRoundTrip) {
  Request request;
  request.type = RequestType::kExecuteBundle;
  request.session = 11;
  request.first_batch = 64;
  request.bundle = {"BEGIN TRANSACTION", "INSERT INTO t VALUES (1)",
                    "SELECT a FROM t", "COMMIT"};
  auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, RequestType::kExecuteBundle);
  EXPECT_EQ(parsed->session, 11u);
  EXPECT_EQ(parsed->first_batch, 64u);
  ASSERT_EQ(parsed->bundle.size(), 4u);
  EXPECT_EQ(parsed->bundle[0], "BEGIN TRANSACTION");
  EXPECT_EQ(parsed->bundle[3], "COMMIT");
}

TEST(MessagesTest, BundleResponseRoundTrip) {
  Response response;
  BundleItem mod;
  mod.rows_affected = 3;
  mod.write_tables = {"t"};
  BundleItem query;
  query.is_query = true;
  query.schema = common::Schema({{"a", common::ValueType::kInt, true}});
  query.rows = {{Value::Int(1)}, {Value::Int(2)}};
  query.done = true;
  query.snapshot_ts = 99;
  query.cacheable = true;
  query.read_tables = {"t", "u"};
  BundleItem failed;
  failed.code = common::StatusCode::kConstraintViolation;
  failed.error_message = "duplicate key";
  response.bundle_results = {mod, query, failed};
  auto bytes = response.Serialize();
  auto parsed = Response::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->bundle_results.size(), 3u);
  EXPECT_EQ(parsed->bundle_results[0].rows_affected, 3);
  ASSERT_EQ(parsed->bundle_results[0].write_tables.size(), 1u);
  EXPECT_TRUE(parsed->bundle_results[1].is_query);
  ASSERT_EQ(parsed->bundle_results[1].rows.size(), 2u);
  EXPECT_EQ(parsed->bundle_results[1].rows[1][0].AsInt(), 2);
  EXPECT_TRUE(parsed->bundle_results[1].done);
  EXPECT_EQ(parsed->bundle_results[1].snapshot_ts, 99u);
  ASSERT_EQ(parsed->bundle_results[1].read_tables.size(), 2u);
  EXPECT_FALSE(parsed->bundle_results[2].ok());
  EXPECT_EQ(parsed->bundle_results[2].ToStatus().code(),
            common::StatusCode::kConstraintViolation);
  EXPECT_EQ(parsed->bundle_results[2].error_message, "duplicate key");
}

TEST(MessagesTest, PreBundleFramesStillParse) {
  // Older peers end their frames before the optional trailing groups: a
  // pre-bundle request stops before the statement-pipeline group (its last
  // 4 bytes here, the empty bundle count), and a pre-bundle response stops
  // before both the pipeline group (4 bytes) and the shard-routing group
  // that now follows it (12 bytes: mask + empty mask count). Both must
  // still parse with the missing fields defaulted.
  Request request;
  request.type = RequestType::kExecute;
  request.session = 5;
  request.sql = "SELECT 1";
  auto req_bytes = request.Serialize();
  req_bytes.resize(req_bytes.size() - 4);  // drop the empty bundle count
  auto req = Request::Deserialize(req_bytes.data(), req_bytes.size());
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->sql, "SELECT 1");
  EXPECT_TRUE(req->bundle.empty());

  Response response;
  response.is_query = true;
  response.rows = {{Value::Int(7)}};
  auto resp_bytes = response.Serialize();
  resp_bytes.resize(resp_bytes.size() - 16);  // drop shard group + bundle count
  auto resp = Response::Deserialize(resp_bytes.data(), resp_bytes.size());
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->rows.size(), 1u);
  EXPECT_TRUE(resp->bundle_results.empty());
  EXPECT_EQ(resp->shard_mask, 0u);
}

TEST(MessagesTest, PreShardResponsesStillParse) {
  // A response from a pre-shard peer ends right after the statement-pipeline
  // group: the shard-routing group must default (mask 0, no per-item masks)
  // while everything before it — including bundle results — parses intact.
  Response response;
  response.is_query = false;
  response.rows_affected = 2;
  BundleItem item;
  item.code = common::StatusCode::kOk;
  item.rows_affected = 2;
  response.bundle_results.push_back(item);
  auto bytes = response.Serialize();
  bytes.resize(bytes.size() - 12);  // drop the empty shard-routing group
  auto parsed = Response::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->bundle_results.size(), 1u);
  EXPECT_EQ(parsed->bundle_results[0].rows_affected, 2);
  EXPECT_EQ(parsed->shard_mask, 0u);
  EXPECT_TRUE(parsed->bundle_shard_masks.empty());

  // A torn shard group (mask present, count cut off) is a framing error,
  // not an older peer — it must be rejected, not defaulted.
  auto torn = response.Serialize();
  torn.resize(torn.size() - 4);
  auto bad = Response::Deserialize(torn.data(), torn.size());
  EXPECT_FALSE(bad.ok());
}

TEST(MessagesTest, OversizedBundleCountRejected) {
  // A hostile frame claiming more bundled statements than the frame could
  // possibly hold must fail cleanly instead of reserving gigabytes.
  Request request;
  request.type = RequestType::kExecuteBundle;
  request.session = 1;
  auto bytes = request.Serialize();
  // Patch the trailing (empty) bundle count to a huge value.
  bytes[bytes.size() - 4] = 0xff;
  bytes[bytes.size() - 3] = 0xff;
  bytes[bytes.size() - 2] = 0xff;
  bytes[bytes.size() - 1] = 0x7f;
  EXPECT_FALSE(Request::Deserialize(bytes.data(), bytes.size()).ok());
}

TEST(NetworkModelTest, TransferTime) {
  NetworkModel model;
  model.bytes_per_second = 1'000'000;
  EXPECT_EQ(model.TransferMicros(1'000'000), 1'000'000u);
  EXPECT_EQ(NetworkModel::None().TransferMicros(12345), 0u);
}

class InProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.db.data_dir = dir_.path();
    auto server = SimulatedServer::Start(options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(server).value();
    transport_ = std::make_unique<InProcessTransport>(
        server_.get(), NetworkModel::None());
  }

  common::Result<Response> Send(const Request& request) {
    return transport_->Roundtrip(request);
  }

  engine::SessionId Connect() {
    Request request;
    request.type = RequestType::kConnect;
    request.user = "u";
    auto response = Send(request);
    EXPECT_TRUE(response.ok());
    return response->session;
  }

  TempDir dir_;
  std::unique_ptr<SimulatedServer> server_;
  std::unique_ptr<InProcessTransport> transport_;
};

TEST_F(InProcessTest, FullQueryCycle) {
  engine::SessionId sid = Connect();

  Request create;
  create.type = RequestType::kExecute;
  create.session = sid;
  create.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(create).status());

  Request insert = create;
  insert.sql = "INSERT INTO t VALUES (1), (2), (3)";
  auto ins = Send(insert);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->rows_affected, 3);

  Request query = create;
  query.sql = "SELECT a FROM t ORDER BY a DESC";
  auto q = Send(query);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);

  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto rows = Send(fetch);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rows->done);
}

TEST_F(InProcessTest, StatementErrorsTravelInBand) {
  engine::SessionId sid = Connect();
  Request bad;
  bad.type = RequestType::kExecute;
  bad.session = sid;
  bad.sql = "SELECT * FROM missing_table";
  auto response = Send(bad);
  ASSERT_TRUE(response.ok());  // transport succeeded
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->code, common::StatusCode::kNotFound);
}

TEST_F(InProcessTest, ServerDownIsTransportError) {
  engine::SessionId sid = Connect();
  server_->Crash();
  Request ping;
  ping.type = RequestType::kPing;
  ping.session = sid;
  auto response = Send(ping);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsConnectionLevel());
}

TEST_F(InProcessTest, StatsCountTraffic) {
  Connect();
  EXPECT_EQ(transport_->stats().round_trips.load(), 1u);
  EXPECT_GT(transport_->stats().bytes_sent.load(), 0u);
  EXPECT_GT(transport_->stats().bytes_received.load(), 0u);
}

TEST_F(InProcessTest, AdvanceCursorOverWire) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3), (4)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "SELECT a FROM t ORDER BY a";
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());

  Request advance;
  advance.type = RequestType::kAdvanceCursor;
  advance.session = sid;
  advance.cursor = q->cursor;
  advance.count = 3;
  auto skipped = Send(advance);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->rows_affected, 3);

  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto rows = Send(fetch);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 4);
}

TEST_F(InProcessTest, ExecutePiggybacksFirstBatch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(Send(exec).status());

  // The whole result rides back on the execute response: done in one trip.
  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 10;
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);
  ASSERT_EQ(q->rows.size(), 3u);
  EXPECT_EQ(q->rows[0][0].AsInt(), 1);
  EXPECT_TRUE(q->done);

  // done on the execute response means the server freed the cursor too —
  // the result really did complete in one round trip, cleanup included.
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 1;
  auto after = Send(fetch);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, common::StatusCode::kNotFound);
}

TEST_F(InProcessTest, ExecutePiggybackPartialBatchThenFetch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(Send(exec).status());

  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 2;
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->rows.size(), 2u);
  EXPECT_FALSE(q->done);

  // The cursor picks up exactly where the piggybacked batch stopped.
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto rest = Send(fetch);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->rows.size(), 1u);
  EXPECT_EQ(rest->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rest->done);
}

TEST_F(InProcessTest, ExecuteWithoutFirstBatchKeepsLegacyShape) {
  // first_batch == 0 (or a pre-piggyback client omitting the field) gets
  // the classic empty execute response; rows flow only through kFetch.
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "SELECT 1 + 1";
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);
  EXPECT_TRUE(q->rows.empty());
  EXPECT_FALSE(q->done);
}

TEST_F(InProcessTest, AsyncRoundtripPipelinesFetch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3), (4)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 2;
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());

  uint64_t before = transport_->stats().round_trips.load();
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  PendingResponsePtr pending = transport_->AsyncRoundtrip(fetch);
  ASSERT_NE(pending, nullptr);
  auto rows = pending->Wait();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rows->done);
  EXPECT_EQ(transport_->stats().round_trips.load(), before + 1);
}

TEST_F(InProcessTest, DroppedPendingResponseDrainsBeforeNextRequest) {
  engine::SessionId sid = Connect();
  Request ping;
  ping.type = RequestType::kPing;
  ping.session = sid;
  {
    PendingResponsePtr pending = transport_->AsyncRoundtrip(ping);
    // Abandoned without Wait(): the destructor must drain the in-flight
    // request so the next call observes a quiet wire.
  }
  auto again = Send(ping);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok());
  EXPECT_GE(transport_->stats().round_trips.load(), 3u);  // connect + 2 pings
}

TEST_F(InProcessTest, ExecuteBundleRunsAllStatementsInOneDispatch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER PRIMARY KEY)";
  PHX_ASSERT_OK(Send(exec).status());

  uint64_t before = transport_->stats().round_trips.load();
  Request bundle;
  bundle.type = RequestType::kExecuteBundle;
  bundle.session = sid;
  bundle.first_batch = 64;
  bundle.bundle = {"INSERT INTO t VALUES (1), (2)", "INSERT INTO t VALUES (3)",
                   "SELECT a FROM t ORDER BY a"};
  auto r = Send(bundle);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->ok()) << r->error_message;
  EXPECT_EQ(transport_->stats().round_trips.load(), before + 1);

  ASSERT_EQ(r->bundle_results.size(), 3u);
  EXPECT_EQ(r->bundle_results[0].rows_affected, 2);
  EXPECT_EQ(r->bundle_results[1].rows_affected, 1);
  ASSERT_TRUE(r->bundle_results[2].is_query);
  ASSERT_EQ(r->bundle_results[2].rows.size(), 3u);
  EXPECT_EQ(r->bundle_results[2].rows[2][0].AsInt(), 3);
  // The query result arrives complete: no cursor left to fetch from.
  EXPECT_TRUE(r->bundle_results[2].done);
}

TEST_F(InProcessTest, ExecuteBundleStopsAtFirstFailureAtomically) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER PRIMARY KEY)";
  PHX_ASSERT_OK(Send(exec).status());

  // Autocommit bundle of plain DML with a modification: the server wraps it
  // in one transaction, so the mid-bundle failure must leave NOTHING applied
  // — the prefix INSERT included. The response reports the prefix's results
  // plus the failing entry, and the trailing statement never ran.
  Request bundle;
  bundle.type = RequestType::kExecuteBundle;
  bundle.session = sid;
  bundle.bundle = {"INSERT INTO t VALUES (1)", "INSERT INTO missing VALUES (2)",
                   "INSERT INTO t VALUES (3)"};
  auto r = Send(bundle);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->bundle_results.size(), 2u);
  EXPECT_TRUE(r->bundle_results[0].ok());
  EXPECT_FALSE(r->bundle_results[1].ok());
  EXPECT_EQ(r->bundle_results[1].ToStatus().code(),
            common::StatusCode::kNotFound);

  exec.sql = "SELECT COUNT(*) FROM t";
  exec.first_batch = 1;
  auto count = Send(exec);
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(count->rows.size(), 1u);
  EXPECT_EQ(count->rows[0][0].AsInt(), 0) << "mid-bundle failure must roll "
                                             "back the whole wrapped bundle";
}

TEST_F(InProcessTest, ExecuteBundleWithExplicitTxnControlIsNotRewrapped) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER PRIMARY KEY)";
  PHX_ASSERT_OK(Send(exec).status());

  // A bundle carrying its own BEGIN/COMMIT manages transactions itself; the
  // server must execute it verbatim and the commit must stick.
  Request bundle;
  bundle.type = RequestType::kExecuteBundle;
  bundle.session = sid;
  bundle.bundle = {"BEGIN TRANSACTION", "INSERT INTO t VALUES (1)",
                   "INSERT INTO t VALUES (2)", "COMMIT"};
  auto r = Send(bundle);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->bundle_results.size(), 4u);
  for (const BundleItem& item : r->bundle_results) {
    EXPECT_TRUE(item.ok()) << item.error_message;
  }

  exec.sql = "SELECT COUNT(*) FROM t";
  exec.first_batch = 1;
  auto count = Send(exec);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 2);
}

TEST_F(InProcessTest, ExecuteBundleQueryResultsSurviveInBundleCommit) {
  // A query's result is drained before later statements run: the COMMIT at
  // the end of the bundle (which closes the transaction's cursors) must not
  // truncate the already-collected rows of an earlier SELECT.
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER PRIMARY KEY)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(Send(exec).status());

  Request bundle;
  bundle.type = RequestType::kExecuteBundle;
  bundle.session = sid;
  bundle.bundle = {"BEGIN TRANSACTION", "SELECT a FROM t ORDER BY a",
                   "UPDATE t SET a = 10 WHERE a = 1", "COMMIT"};
  auto r = Send(bundle);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->bundle_results.size(), 4u);
  ASSERT_TRUE(r->bundle_results[1].is_query);
  ASSERT_EQ(r->bundle_results[1].rows.size(), 3u);
  EXPECT_TRUE(r->bundle_results[1].done);
}

// --- TCP ---------------------------------------------------------------------

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.db.data_dir = dir_.path();
    auto server = SimulatedServer::Start(options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(server).value();
    auto host = TcpServerHost::Start(server_.get(), 0);
    ASSERT_TRUE(host.ok()) << host.status().ToString();
    host_ = std::move(host).value();
  }

  TempDir dir_;
  std::unique_ptr<SimulatedServer> server_;
  std::unique_ptr<TcpServerHost> host_;
};

TEST_F(TcpTest, QueryOverRealSocket) {
  TcpClientTransport client("127.0.0.1", host_->port());
  Request connect;
  connect.type = RequestType::kConnect;
  connect.user = "u";
  auto session = client.Roundtrip(connect);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = session->session;
  exec.sql = "SELECT 1 + 1";
  auto q = client.Roundtrip(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);

  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = session->session;
  fetch.cursor = q->cursor;
  fetch.count = 1;
  auto rows = client.Roundtrip(fetch);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 2);
}

TEST_F(TcpTest, PiggybackAndAsyncFetchOverRealSocket) {
  TcpClientTransport client("127.0.0.1", host_->port());
  Request connect;
  connect.type = RequestType::kConnect;
  connect.user = "u";
  auto session = client.Roundtrip(connect);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = session->session;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(client.Roundtrip(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(client.Roundtrip(exec).status());

  // Piggybacked partial first batch over a real socket...
  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 2;
  auto q = client.Roundtrip(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->rows.size(), 2u);
  EXPECT_FALSE(q->done);

  // ...then the remainder via a pipelined fetch on the same socket.
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = session->session;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto pending = client.AsyncRoundtrip(fetch);
  ASSERT_NE(pending, nullptr);
  auto rows = pending->Wait();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rows->done);
}

TEST_F(TcpTest, CrashDropsTcpConnections) {
  TcpClientTransport client("127.0.0.1", host_->port());
  Request connect;
  connect.type = RequestType::kConnect;
  connect.user = "u";
  ASSERT_TRUE(client.Roundtrip(connect).ok());

  server_->Crash();
  Request ping;
  ping.type = RequestType::kPing;
  auto response = client.Roundtrip(ping);
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsConnectionLevel());

  // After restart, a reconnect (new Roundtrip) works again.
  PHX_ASSERT_OK(server_->Restart());
  auto again = client.Roundtrip(connect);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(TcpTest, ConnectionRefusedWhenHostStopped) {
  uint16_t port = host_->port();
  host_->Stop();
  TcpClientTransport client("127.0.0.1", port);
  Request ping;
  ping.type = RequestType::kPing;
  auto response = client.Roundtrip(ping);
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsConnectionLevel());
}

}  // namespace
}  // namespace phoenix::wire
