#include <gtest/gtest.h>

#include "test_util.h"
#include "wire/tcp.h"

namespace phoenix::wire {
namespace {

using common::Value;
using engine::ServerOptions;
using engine::SimulatedServer;
using phoenix::testing::TempDir;

TEST(MessagesTest, RequestRoundTrip) {
  Request request;
  request.type = RequestType::kExecute;
  request.session = 42;
  request.cursor = 7;
  request.count = 100;
  request.sql = "SELECT 1";
  request.user = "u";
  auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, RequestType::kExecute);
  EXPECT_EQ(parsed->session, 42u);
  EXPECT_EQ(parsed->sql, "SELECT 1");
}

TEST(MessagesTest, ResponseRoundTripWithRows) {
  Response response;
  response.code = common::StatusCode::kOk;
  response.is_query = true;
  response.cursor = 3;
  response.schema = common::Schema({{"a", common::ValueType::kInt, true}});
  response.rows = {{Value::Int(1)}, {Value::Int(2)}};
  response.done = true;
  auto bytes = response.Serialize();
  auto parsed = Response::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_query);
  EXPECT_EQ(parsed->rows.size(), 2u);
  EXPECT_TRUE(parsed->done);
}

TEST(MessagesTest, ErrorResponseCarriesStatus) {
  Response response;
  response.code = common::StatusCode::kNotFound;
  response.error_message = "no such table";
  auto bytes = response.Serialize();
  auto parsed = Response::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok());
  EXPECT_EQ(parsed->ToStatus().code(), common::StatusCode::kNotFound);
}

TEST(MessagesTest, TruncatedResponseRejected) {
  Response response;
  response.rows = {{Value::String("payload")}};
  auto bytes = response.Serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(Response::Deserialize(bytes.data(), bytes.size()).ok());
}

TEST(MessagesTest, RequestRoundTripWithFirstBatch) {
  Request request;
  request.type = RequestType::kExecute;
  request.session = 9;
  request.sql = "SELECT 1";
  request.first_batch = 64;
  auto bytes = request.Serialize();
  auto parsed = Request::Deserialize(bytes.data(), bytes.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first_batch, 64u);
}

TEST(MessagesTest, LegacyRequestLayoutsStillParse) {
  // Frames from older clients end early: the trace header and the
  // first-batch hint are optional trailing fields. Hand-build both vintages
  // and check they deserialize with the extras defaulted to zero.
  auto base = [] {
    common::BinaryWriter w;
    w.PutU8(static_cast<uint8_t>(RequestType::kExecute));
    w.PutU64(42);  // session
    w.PutU64(0);   // cursor
    w.PutU64(0);   // count
    w.PutString("SELECT 1");
    w.PutString("u");
    w.PutString("");
    w.PutString("");
    return w;
  };

  // Pre-obs layout: stops after the string block.
  auto pre_obs = base().TakeData();
  auto parsed = Request::Deserialize(pre_obs.data(), pre_obs.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->session, 42u);
  EXPECT_EQ(parsed->sql, "SELECT 1");
  EXPECT_EQ(parsed->trace_id, 0u);
  EXPECT_EQ(parsed->first_batch, 0u);

  // Obs-era layout: trace header present, first-batch hint absent.
  common::BinaryWriter with_trace = base();
  with_trace.PutU64(0xabc);  // trace_id
  with_trace.PutU64(0xdef);  // span_id
  auto obs_era = with_trace.TakeData();
  parsed = Request::Deserialize(obs_era.data(), obs_era.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace_id, 0xabcu);
  EXPECT_EQ(parsed->span_id, 0xdefu);
  EXPECT_EQ(parsed->first_batch, 0u);
}

TEST(MessagesTest, ResponseSerializeReuseMatchesFresh) {
  // The buffer-reuse overload must produce byte-identical frames; the old
  // Response layout is unchanged (piggybacked rows ride in existing fields).
  Response response;
  response.is_query = true;
  response.cursor = 5;
  response.schema = common::Schema({{"a", common::ValueType::kInt, true}});
  response.rows = {{Value::Int(7)}, {Value::Int(8)}};
  response.done = true;
  auto fresh = response.Serialize();
  std::vector<uint8_t> scratch(256, 0xee);
  auto reused = response.Serialize(std::move(scratch));
  EXPECT_EQ(reused, fresh);
  auto parsed = Response::Deserialize(reused.data(), reused.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows.size(), 2u);
}

TEST(NetworkModelTest, TransferTime) {
  NetworkModel model;
  model.bytes_per_second = 1'000'000;
  EXPECT_EQ(model.TransferMicros(1'000'000), 1'000'000u);
  EXPECT_EQ(NetworkModel::None().TransferMicros(12345), 0u);
}

class InProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.db.data_dir = dir_.path();
    auto server = SimulatedServer::Start(options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(server).value();
    transport_ = std::make_unique<InProcessTransport>(
        server_.get(), NetworkModel::None());
  }

  common::Result<Response> Send(const Request& request) {
    return transport_->Roundtrip(request);
  }

  engine::SessionId Connect() {
    Request request;
    request.type = RequestType::kConnect;
    request.user = "u";
    auto response = Send(request);
    EXPECT_TRUE(response.ok());
    return response->session;
  }

  TempDir dir_;
  std::unique_ptr<SimulatedServer> server_;
  std::unique_ptr<InProcessTransport> transport_;
};

TEST_F(InProcessTest, FullQueryCycle) {
  engine::SessionId sid = Connect();

  Request create;
  create.type = RequestType::kExecute;
  create.session = sid;
  create.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(create).status());

  Request insert = create;
  insert.sql = "INSERT INTO t VALUES (1), (2), (3)";
  auto ins = Send(insert);
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->rows_affected, 3);

  Request query = create;
  query.sql = "SELECT a FROM t ORDER BY a DESC";
  auto q = Send(query);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);

  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto rows = Send(fetch);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 3u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rows->done);
}

TEST_F(InProcessTest, StatementErrorsTravelInBand) {
  engine::SessionId sid = Connect();
  Request bad;
  bad.type = RequestType::kExecute;
  bad.session = sid;
  bad.sql = "SELECT * FROM missing_table";
  auto response = Send(bad);
  ASSERT_TRUE(response.ok());  // transport succeeded
  EXPECT_FALSE(response->ok());
  EXPECT_EQ(response->code, common::StatusCode::kNotFound);
}

TEST_F(InProcessTest, ServerDownIsTransportError) {
  engine::SessionId sid = Connect();
  server_->Crash();
  Request ping;
  ping.type = RequestType::kPing;
  ping.session = sid;
  auto response = Send(ping);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsConnectionLevel());
}

TEST_F(InProcessTest, StatsCountTraffic) {
  Connect();
  EXPECT_EQ(transport_->stats().round_trips.load(), 1u);
  EXPECT_GT(transport_->stats().bytes_sent.load(), 0u);
  EXPECT_GT(transport_->stats().bytes_received.load(), 0u);
}

TEST_F(InProcessTest, AdvanceCursorOverWire) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3), (4)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "SELECT a FROM t ORDER BY a";
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());

  Request advance;
  advance.type = RequestType::kAdvanceCursor;
  advance.session = sid;
  advance.cursor = q->cursor;
  advance.count = 3;
  auto skipped = Send(advance);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->rows_affected, 3);

  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto rows = Send(fetch);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 4);
}

TEST_F(InProcessTest, ExecutePiggybacksFirstBatch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(Send(exec).status());

  // The whole result rides back on the execute response: done in one trip.
  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 10;
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);
  ASSERT_EQ(q->rows.size(), 3u);
  EXPECT_EQ(q->rows[0][0].AsInt(), 1);
  EXPECT_TRUE(q->done);

  // done on the execute response means the server freed the cursor too —
  // the result really did complete in one round trip, cleanup included.
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 1;
  auto after = Send(fetch);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->code, common::StatusCode::kNotFound);
}

TEST_F(InProcessTest, ExecutePiggybackPartialBatchThenFetch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(Send(exec).status());

  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 2;
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->rows.size(), 2u);
  EXPECT_FALSE(q->done);

  // The cursor picks up exactly where the piggybacked batch stopped.
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto rest = Send(fetch);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->rows.size(), 1u);
  EXPECT_EQ(rest->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rest->done);
}

TEST_F(InProcessTest, ExecuteWithoutFirstBatchKeepsLegacyShape) {
  // first_batch == 0 (or a pre-piggyback client omitting the field) gets
  // the classic empty execute response; rows flow only through kFetch.
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "SELECT 1 + 1";
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);
  EXPECT_TRUE(q->rows.empty());
  EXPECT_FALSE(q->done);
}

TEST_F(InProcessTest, AsyncRoundtripPipelinesFetch) {
  engine::SessionId sid = Connect();
  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = sid;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3), (4)";
  PHX_ASSERT_OK(Send(exec).status());
  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 2;
  auto q = Send(exec);
  ASSERT_TRUE(q.ok());

  uint64_t before = transport_->stats().round_trips.load();
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = sid;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  PendingResponsePtr pending = transport_->AsyncRoundtrip(fetch);
  ASSERT_NE(pending, nullptr);
  auto rows = pending->Wait();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rows->done);
  EXPECT_EQ(transport_->stats().round_trips.load(), before + 1);
}

TEST_F(InProcessTest, DroppedPendingResponseDrainsBeforeNextRequest) {
  engine::SessionId sid = Connect();
  Request ping;
  ping.type = RequestType::kPing;
  ping.session = sid;
  {
    PendingResponsePtr pending = transport_->AsyncRoundtrip(ping);
    // Abandoned without Wait(): the destructor must drain the in-flight
    // request so the next call observes a quiet wire.
  }
  auto again = Send(ping);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->ok());
  EXPECT_GE(transport_->stats().round_trips.load(), 3u);  // connect + 2 pings
}

// --- TCP ---------------------------------------------------------------------

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.db.data_dir = dir_.path();
    auto server = SimulatedServer::Start(options);
    ASSERT_TRUE(server.ok());
    server_ = std::move(server).value();
    auto host = TcpServerHost::Start(server_.get(), 0);
    ASSERT_TRUE(host.ok()) << host.status().ToString();
    host_ = std::move(host).value();
  }

  TempDir dir_;
  std::unique_ptr<SimulatedServer> server_;
  std::unique_ptr<TcpServerHost> host_;
};

TEST_F(TcpTest, QueryOverRealSocket) {
  TcpClientTransport client("127.0.0.1", host_->port());
  Request connect;
  connect.type = RequestType::kConnect;
  connect.user = "u";
  auto session = client.Roundtrip(connect);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = session->session;
  exec.sql = "SELECT 1 + 1";
  auto q = client.Roundtrip(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->is_query);

  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = session->session;
  fetch.cursor = q->cursor;
  fetch.count = 1;
  auto rows = client.Roundtrip(fetch);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 2);
}

TEST_F(TcpTest, PiggybackAndAsyncFetchOverRealSocket) {
  TcpClientTransport client("127.0.0.1", host_->port());
  Request connect;
  connect.type = RequestType::kConnect;
  connect.user = "u";
  auto session = client.Roundtrip(connect);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  Request exec;
  exec.type = RequestType::kExecute;
  exec.session = session->session;
  exec.sql = "CREATE TABLE t (a INTEGER)";
  PHX_ASSERT_OK(client.Roundtrip(exec).status());
  exec.sql = "INSERT INTO t VALUES (1), (2), (3)";
  PHX_ASSERT_OK(client.Roundtrip(exec).status());

  // Piggybacked partial first batch over a real socket...
  exec.sql = "SELECT a FROM t ORDER BY a";
  exec.first_batch = 2;
  auto q = client.Roundtrip(exec);
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->rows.size(), 2u);
  EXPECT_FALSE(q->done);

  // ...then the remainder via a pipelined fetch on the same socket.
  Request fetch;
  fetch.type = RequestType::kFetch;
  fetch.session = session->session;
  fetch.cursor = q->cursor;
  fetch.count = 10;
  auto pending = client.AsyncRoundtrip(fetch);
  ASSERT_NE(pending, nullptr);
  auto rows = pending->Wait();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 3);
  EXPECT_TRUE(rows->done);
}

TEST_F(TcpTest, CrashDropsTcpConnections) {
  TcpClientTransport client("127.0.0.1", host_->port());
  Request connect;
  connect.type = RequestType::kConnect;
  connect.user = "u";
  ASSERT_TRUE(client.Roundtrip(connect).ok());

  server_->Crash();
  Request ping;
  ping.type = RequestType::kPing;
  auto response = client.Roundtrip(ping);
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsConnectionLevel());

  // After restart, a reconnect (new Roundtrip) works again.
  PHX_ASSERT_OK(server_->Restart());
  auto again = client.Roundtrip(connect);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(TcpTest, ConnectionRefusedWhenHostStopped) {
  uint16_t port = host_->port();
  host_->Stop();
  TcpClientTransport client("127.0.0.1", port);
  Request ping;
  ping.type = RequestType::kPing;
  auto response = client.Roundtrip(ping);
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsConnectionLevel());
}

}  // namespace
}  // namespace phoenix::wire
