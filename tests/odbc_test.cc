#include <gtest/gtest.h>

#include "test_util.h"

namespace phoenix::odbc {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::ServerHarness;

TEST(ConnectionStringTest, ParseBasics) {
  auto cs = ConnectionString::Parse("DRIVER=native;UID=sa;PWD=secret");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Get("DRIVER"), "native");
  EXPECT_EQ(cs->Get("uid"), "sa");  // keys case-insensitive
  EXPECT_EQ(cs->Get("MISSING", "dflt"), "dflt");
}

TEST(ConnectionStringTest, WhitespaceAndEmptySegments) {
  auto cs = ConnectionString::Parse(" DRIVER = native ;; UID=u ;");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Get("DRIVER"), "native");
  EXPECT_EQ(cs->Get("UID"), "u");
}

TEST(ConnectionStringTest, MalformedRejected) {
  EXPECT_FALSE(ConnectionString::Parse("DRIVER").ok());
  EXPECT_FALSE(ConnectionString::Parse("=value").ok());
}

TEST(ConnectionStringTest, GetInt) {
  auto cs = ConnectionString::Parse("PHOENIX_CACHE=65536;BAD=xyz");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->GetInt("PHOENIX_CACHE", 0), 65536);
  EXPECT_EQ(cs->GetInt("BAD", 7), 7);
  EXPECT_EQ(cs->GetInt("MISSING", 9), 9);
}

TEST(DriverManagerTest, RoutesByDriverAttribute) {
  ServerHarness h;
  auto conn = h.dm().Connect("DRIVER=native;UID=u");
  EXPECT_TRUE(conn.ok());
}

TEST(DriverManagerTest, UnknownDriverRejected) {
  ServerHarness h;
  auto conn = h.dm().Connect("DRIVER=nonexistent;UID=u");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), common::StatusCode::kNotFound);
}

TEST(DriverManagerTest, MissingDriverAttributeRejected) {
  ServerHarness h;
  EXPECT_FALSE(h.dm().Connect("UID=u").ok());
}

TEST(DriverManagerTest, DuplicateRegistrationRejected) {
  ServerHarness h;
  auto dup = std::make_shared<NativeDriver>(
      "native", [](const ConnectionString&) { return nullptr; });
  EXPECT_FALSE(h.dm().RegisterDriver(dup).ok());
}

class NativeDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"));
    PHX_ASSERT_OK(h_.Exec(
        "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d'),(5,'e')"));
  }
  ServerHarness h_;
};

TEST_F(NativeDriverTest, LoginFailureSurfaces) {
  auto conn = h_.dm().Connect("DRIVER=native");
  EXPECT_FALSE(conn.ok());  // UID missing
}

TEST_F(NativeDriverTest, ExecAndRowCount) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE t SET v = 'x' WHERE id > 3"));
  EXPECT_FALSE(stmt->HasResultSet());
  EXPECT_EQ(stmt->RowCount(), 2);
}

TEST_F(NativeDriverTest, FetchRowAtATime) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  ASSERT_TRUE(stmt->HasResultSet());
  EXPECT_EQ(stmt->ResultSchema().column(0).name, "id");
  Row row;
  for (int expected = 1; expected <= 5; ++expected) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(row[0].AsInt(), expected);
  }
  auto done = stmt->Fetch(&row);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
}

TEST_F(NativeDriverTest, FetchBeforeExecuteFails) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  Row row;
  EXPECT_FALSE(stmt->Fetch(&row).ok());
}

TEST_F(NativeDriverTest, BlockFetch) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  auto block = stmt->FetchBlock(3);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->size(), 3u);
  auto rest = stmt->FetchBlock(100);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->size(), 2u);
}

TEST_F(NativeDriverTest, RowArraySizeControlsRoundTrips) {
  // Counting round trips: row_array_size=1 needs one fetch RPC per row.
  auto transport_probe = h_.ConnectNative();
  ASSERT_TRUE(transport_probe.ok());
  auto* conn =
      static_cast<NativeConnection*>(transport_probe.value().get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  uint64_t before = conn->transport()->stats().round_trips.load();
  Row row;
  while (stmt->Fetch(&row).value()) {
  }
  uint64_t per_row_trips =
      conn->transport()->stats().round_trips.load() - before;
  EXPECT_GE(per_row_trips, 5u);  // >= one per row

  stmt->attrs().row_array_size = 100;
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  before = conn->transport()->stats().round_trips.load();
  while (stmt->Fetch(&row).value()) {
  }
  uint64_t block_trips =
      conn->transport()->stats().round_trips.load() - before;
  EXPECT_LE(block_trips, 2u);
}

TEST_F(NativeDriverTest, SkipRowsServerSide) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  auto skipped = stmt->SkipRows(3);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(*skipped, 3u);
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 4);
}

TEST_F(NativeDriverTest, CloseCursorIdempotent) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  PHX_ASSERT_OK(stmt->CloseCursor());
  PHX_ASSERT_OK(stmt->CloseCursor());
  EXPECT_FALSE(stmt->HasResultSet());
}

TEST_F(NativeDriverTest, ReExecuteClosesPreviousCursor) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM t ORDER BY id"));
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsString(), "a");
}

TEST_F(NativeDriverTest, StatementErrorRecordedInDiag) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  auto st = stmt->ExecDirect("SELECT * FROM no_such_table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(stmt->LastError().code(), common::StatusCode::kNotFound);
}

TEST_F(NativeDriverTest, CrashSurfacesConnectionError) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  h_.server()->Crash();
  Row row;
  auto result = stmt->Fetch(&row);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConnectionLevel());
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(NativeDriverTest, PingReflectsServerState) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK(conn->Ping());
  h_.server()->Crash();
  EXPECT_TRUE(conn->Ping().IsConnectionLevel());
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(NativeDriverTest, DisconnectInvalidatesStatements) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK(conn->Disconnect());
  EXPECT_FALSE(conn->CreateStatement().ok());
}

TEST_F(NativeDriverTest, ConnectionStringPreserved) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_.dm().Connect("DRIVER=native;UID=u;DATABASE=x"));
  EXPECT_EQ(conn->connection_string().Get("DATABASE"), "x");
}

}  // namespace
}  // namespace phoenix::odbc
