#include <gtest/gtest.h>

#include "test_util.h"

namespace phoenix::odbc {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::ServerHarness;

TEST(ConnectionStringTest, ParseBasics) {
  auto cs = ConnectionString::Parse("DRIVER=native;UID=sa;PWD=secret");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Get("DRIVER"), "native");
  EXPECT_EQ(cs->Get("uid"), "sa");  // keys case-insensitive
  EXPECT_EQ(cs->Get("MISSING", "dflt"), "dflt");
}

TEST(ConnectionStringTest, WhitespaceAndEmptySegments) {
  auto cs = ConnectionString::Parse(" DRIVER = native ;; UID=u ;");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Get("DRIVER"), "native");
  EXPECT_EQ(cs->Get("UID"), "u");
}

TEST(ConnectionStringTest, MalformedRejected) {
  EXPECT_FALSE(ConnectionString::Parse("DRIVER").ok());
  EXPECT_FALSE(ConnectionString::Parse("=value").ok());
}

TEST(ConnectionStringTest, GetInt) {
  auto cs = ConnectionString::Parse("PHOENIX_CACHE=65536;BAD=xyz");
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->GetInt("PHOENIX_CACHE", 0), 65536);
  EXPECT_EQ(cs->GetInt("BAD", 7), 7);
  EXPECT_EQ(cs->GetInt("MISSING", 9), 9);
}

TEST(DriverManagerTest, RoutesByDriverAttribute) {
  ServerHarness h;
  auto conn = h.dm().Connect("DRIVER=native;UID=u");
  EXPECT_TRUE(conn.ok());
}

TEST(DriverManagerTest, UnknownDriverRejected) {
  ServerHarness h;
  auto conn = h.dm().Connect("DRIVER=nonexistent;UID=u");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), common::StatusCode::kNotFound);
}

TEST(DriverManagerTest, MissingDriverAttributeRejected) {
  ServerHarness h;
  EXPECT_FALSE(h.dm().Connect("UID=u").ok());
}

TEST(DriverManagerTest, DuplicateRegistrationRejected) {
  ServerHarness h;
  auto dup = std::make_shared<NativeDriver>(
      "native", [](const ConnectionString&) { return nullptr; });
  EXPECT_FALSE(h.dm().RegisterDriver(dup).ok());
}

class NativeDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR)"));
    PHX_ASSERT_OK(h_.Exec(
        "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c'),(4,'d'),(5,'e')"));
  }
  ServerHarness h_;
};

TEST_F(NativeDriverTest, LoginFailureSurfaces) {
  auto conn = h_.dm().Connect("DRIVER=native");
  EXPECT_FALSE(conn.ok());  // UID missing
}

TEST_F(NativeDriverTest, ExecAndRowCount) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE t SET v = 'x' WHERE id > 3"));
  EXPECT_FALSE(stmt->HasResultSet());
  EXPECT_EQ(stmt->RowCount(), 2);
}

TEST_F(NativeDriverTest, FetchRowAtATime) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  ASSERT_TRUE(stmt->HasResultSet());
  EXPECT_EQ(stmt->ResultSchema().column(0).name, "id");
  Row row;
  for (int expected = 1; expected <= 5; ++expected) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(row[0].AsInt(), expected);
  }
  auto done = stmt->Fetch(&row);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
}

TEST_F(NativeDriverTest, FetchBeforeExecuteFails) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  Row row;
  EXPECT_FALSE(stmt->Fetch(&row).ok());
}

TEST_F(NativeDriverTest, BlockFetch) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  auto block = stmt->FetchBlock(3);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->size(), 3u);
  auto rest = stmt->FetchBlock(100);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->size(), 2u);
}

TEST_F(NativeDriverTest, RowArraySizeControlsRoundTrips) {
  // Counting round trips: row_array_size=1 needs one fetch RPC per row.
  // Legacy delivery (no piggyback/read-ahead) so the counts are exact.
  auto transport_probe =
      h_.dm().Connect("DRIVER=native;UID=tester;PHOENIX_PREFETCH=0");
  ASSERT_TRUE(transport_probe.ok());
  auto* conn =
      static_cast<NativeConnection*>(transport_probe.value().get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  uint64_t before = conn->transport()->stats().round_trips.load();
  Row row;
  while (stmt->Fetch(&row).value()) {
  }
  uint64_t per_row_trips =
      conn->transport()->stats().round_trips.load() - before;
  EXPECT_GE(per_row_trips, 5u);  // >= one per row

  stmt->attrs().row_array_size = 100;
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  before = conn->transport()->stats().round_trips.load();
  while (stmt->Fetch(&row).value()) {
  }
  uint64_t block_trips =
      conn->transport()->stats().round_trips.load() - before;
  EXPECT_LE(block_trips, 2u);
}

TEST_F(NativeDriverTest, SkipRowsServerSide) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  auto skipped = stmt->SkipRows(3);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(*skipped, 3u);
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 4);
}

TEST_F(NativeDriverTest, CloseCursorIdempotent) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  PHX_ASSERT_OK(stmt->CloseCursor());
  PHX_ASSERT_OK(stmt->CloseCursor());
  EXPECT_FALSE(stmt->HasResultSet());
}

TEST_F(NativeDriverTest, ReExecuteClosesPreviousCursor) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM t ORDER BY id"));
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsString(), "a");
}

TEST_F(NativeDriverTest, StatementErrorRecordedInDiag) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  auto st = stmt->ExecDirect("SELECT * FROM no_such_table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(stmt->LastError().code(), common::StatusCode::kNotFound);
}

TEST_F(NativeDriverTest, CrashSurfacesConnectionError) {
  // Legacy delivery: with no piggybacked rows buffered client-side, the very
  // first fetch after the crash must fail connection-level.
  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn, h_.dm().Connect("DRIVER=native;UID=tester;PHOENIX_PREFETCH=0"));
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t"));
  h_.server()->Crash();
  Row row;
  auto result = stmt->Fetch(&row);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConnectionLevel());
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(NativeDriverTest, FastPathDeliversSmallResultInOneRoundTrip) {
  // The whole 5-row result piggybacks on the execute response: one round
  // trip total, and subsequent fetches are served from the client buffer.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn_ptr, h_.ConnectNative());
  auto* conn = static_cast<NativeConnection*>(conn_ptr.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  uint64_t before = conn->transport()->stats().round_trips.load();
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  Row row;
  for (int expected = 1; expected <= 5; ++expected) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    EXPECT_EQ(row[0].AsInt(), expected);
  }
  EXPECT_FALSE(stmt->Fetch(&row).value());
  // Cleanup included: the server auto-closed the piggybacked cursor, so
  // CloseCursor is client-local and the total stays one round trip.
  PHX_ASSERT_OK(stmt->CloseCursor());
  uint64_t trips = conn->transport()->stats().round_trips.load() - before;
  EXPECT_EQ(trips, 1u);
}

TEST_F(NativeDriverTest, FetchBatchConnectionAttributeControlsBatch) {
  // Batch of 2 over 5 rows: execute piggybacks rows 1-2, the read-ahead
  // pipeline fetches {3,4} then {5,done} — exactly 3 round trips.
  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn_ptr,
      h_.dm().Connect("DRIVER=native;UID=tester;PHOENIX_FETCH_BATCH=2"));
  auto* conn = static_cast<NativeConnection*>(conn_ptr.get());
  EXPECT_EQ(conn->delivery().fetch_batch, 2u);
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  uint64_t before = conn->transport()->stats().round_trips.load();
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  Row row;
  int seen = 0;
  while (stmt->Fetch(&row).value()) {
    EXPECT_EQ(row[0].AsInt(), ++seen);
  }
  EXPECT_EQ(seen, 5);
  uint64_t trips = conn->transport()->stats().round_trips.load() - before;
  EXPECT_EQ(trips, 3u);
}

TEST_F(NativeDriverTest, PrefetchOffReproducesLegacyRoundTrips) {
  // PHOENIX_PREFETCH=0 with no explicit batch falls back to row-at-a-time:
  // 1 execute + 5 single-row fetches (done rides on the fifth) = 6 trips.
  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn_ptr,
      h_.dm().Connect("DRIVER=native;UID=tester;PHOENIX_PREFETCH=0"));
  auto* conn = static_cast<NativeConnection*>(conn_ptr.get());
  EXPECT_FALSE(conn->delivery().prefetch);
  EXPECT_EQ(conn->delivery().fetch_batch, 1u);
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  uint64_t before = conn->transport()->stats().round_trips.load();
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  Row row;
  int seen = 0;
  while (stmt->Fetch(&row).value()) ++seen;
  EXPECT_EQ(seen, 5);
  uint64_t trips = conn->transport()->stats().round_trips.load() - before;
  EXPECT_EQ(trips, 6u);
}

TEST_F(NativeDriverTest, CrashSurfacesThroughPrefetchedCursor) {
  // With read-ahead in flight across a crash, the outcome per fetch is
  // binary: a valid in-order row (already buffered / raced ahead of the
  // crash) or a connection-level error. Never corruption, never silence.
  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn_ptr,
      h_.dm().Connect("DRIVER=native;UID=tester;PHOENIX_FETCH_BATCH=2"));
  auto* conn = static_cast<NativeConnection*>(conn_ptr.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());  // from the piggybacked batch
  EXPECT_EQ(row[0].AsInt(), 1);
  h_.server()->Crash();
  int delivered = 1;
  common::Status failure = common::Status::OK();
  while (true) {
    auto next = stmt->Fetch(&row);
    if (!next.ok()) {
      failure = next.status();
      break;
    }
    if (!*next) break;
    EXPECT_EQ(row[0].AsInt(), ++delivered);
  }
  // Piggybacked row 2 is always available; the in-flight prefetch of {3,4}
  // may or may not have beaten the crash. The 5th row needs a post-crash
  // fetch, which must fail — so completion without error is impossible.
  ASSERT_FALSE(failure.ok());
  EXPECT_TRUE(failure.IsConnectionLevel());
  EXPECT_GE(delivered, 2);
  EXPECT_LE(delivered, 4);
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(NativeDriverTest, RoundtripTimeoutKnobClampsToDisabled) {
  // Uniform clamp-to-disabled parsing: negative, partial-numeric, and
  // garbage values all mean "no deadline" (0), never an unsigned wrap into
  // a multi-century timeout.
  auto parse = [](const std::string& text) {
    return ParseDeliveryOptions(ConnectionString::Parse(text).value());
  };
  EXPECT_EQ(parse("DRIVER=native;PHOENIX_RT_TIMEOUT_MS=250")
                .roundtrip_timeout_ms,
            250u);
  EXPECT_EQ(parse("DRIVER=native;PHOENIX_RT_TIMEOUT_MS=-5")
                .roundtrip_timeout_ms,
            0u);
  EXPECT_EQ(parse("DRIVER=native;PHOENIX_RT_TIMEOUT_MS=banana")
                .roundtrip_timeout_ms,
            0u);
  EXPECT_EQ(parse("DRIVER=native;PHOENIX_RT_TIMEOUT_MS=12abc")
                .roundtrip_timeout_ms,
            0u);
  EXPECT_EQ(parse("DRIVER=native").roundtrip_timeout_ms, 0u);
}

TEST_F(NativeDriverTest, EnvironmentKnobsClampGarbageToDefaults) {
  // The environment-variable fallbacks go through the same
  // ParseNonNegativeKnob clamp as the connection string: garbage, negative,
  // and partial-numeric values keep the built-in default instead of
  // whatever atoll would have made of them.
  auto parse = [] {
    return ParseDeliveryOptions(
        ConnectionString::Parse("DRIVER=native").value());
  };
  const DeliveryOptions defaults = parse();

  ::setenv("PHOENIX_PREFETCH", "banana", 1);
  ::setenv("PHOENIX_FETCH_BATCH", "-32", 1);
  ::setenv("PHOENIX_RT_TIMEOUT_MS", "99zz", 1);
  ::setenv("PHOENIX_PIPELINE", "  ", 1);
  DeliveryOptions garbage = parse();
  EXPECT_EQ(garbage.prefetch, defaults.prefetch);
  EXPECT_EQ(garbage.fetch_batch, defaults.fetch_batch);
  EXPECT_EQ(garbage.roundtrip_timeout_ms, 0u);
  EXPECT_EQ(garbage.pipeline, defaults.pipeline);

  ::setenv("PHOENIX_PREFETCH", "0", 1);
  ::setenv("PHOENIX_FETCH_BATCH", "16", 1);
  ::setenv("PHOENIX_RT_TIMEOUT_MS", "750", 1);
  ::setenv("PHOENIX_PIPELINE", "1", 1);
  DeliveryOptions valid = parse();
  EXPECT_FALSE(valid.prefetch);
  EXPECT_EQ(valid.fetch_batch, 16u);
  EXPECT_EQ(valid.roundtrip_timeout_ms, 750u);
  EXPECT_TRUE(valid.pipeline);

  ::unsetenv("PHOENIX_PREFETCH");
  ::unsetenv("PHOENIX_FETCH_BATCH");
  ::unsetenv("PHOENIX_RT_TIMEOUT_MS");
  ::unsetenv("PHOENIX_PIPELINE");
  DeliveryOptions restored = parse();
  EXPECT_EQ(restored.prefetch, defaults.prefetch);
  EXPECT_EQ(restored.fetch_batch, defaults.fetch_batch);
}

TEST_F(NativeDriverTest, BundleFlushRunsAllStatementsInOneRoundTrip) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn_ptr, h_.ConnectNative());
  auto* conn = static_cast<NativeConnection*>(conn_ptr.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  uint64_t before = conn->transport()->stats().round_trips.load();

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE t SET v = 'z' WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("SELECT id, v FROM t ORDER BY id"));
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE t SET v = 'y' WHERE id > 3"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());

  EXPECT_EQ(conn->transport()->stats().round_trips.load(), before + 1);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].rows_affected, 1);
  ASSERT_TRUE(results[1].is_query);
  ASSERT_EQ(results[1].rows.size(), 5u);
  EXPECT_EQ(results[1].rows[0][1].AsString(), "z");
  EXPECT_TRUE(results[1].done);
  EXPECT_EQ(results[2].rows_affected, 2);
  // The handle holds no open cursor afterwards; RowCount reports the last
  // successful modification.
  EXPECT_FALSE(stmt->HasResultSet());
  EXPECT_EQ(stmt->RowCount(), 2);
}

TEST_F(NativeDriverTest, AutocommitModificationBundleIsAtomic) {
  // The exactly-once cornerstone: an autocommit bundle of plain DML with a
  // modification executes inside ONE server transaction. A failure anywhere
  // in the bundle leaves nothing applied — there is no "prefix committed"
  // state for a crash-retry to double-apply.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE t SET v = 'gone' WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("INSERT INTO t VALUES (1, 'dup')"));  // PK!
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE t SET v = 'gone' WHERE id = 2"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());

  // Execution stopped at the duplicate-key INSERT: prefix result + error.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());

  auto rows = h_.QueryAll("SELECT v FROM t WHERE id IN (1, 2) ORDER BY id");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].AsString(), "a") << "prefix UPDATE must roll back";
  EXPECT_EQ((*rows)[1][0].AsString(), "b");
}

TEST_F(NativeDriverTest, BundleMisuseIsRejectedClientSide) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  // Add/flush without an open bundle.
  EXPECT_EQ(stmt->BundleAdd("SELECT 1").code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(stmt->BundleFlush().status().code(),
            common::StatusCode::kInvalidArgument);
  // Double-begin.
  PHX_ASSERT_OK(stmt->BundleBegin());
  EXPECT_EQ(stmt->BundleBegin().code(),
            common::StatusCode::kInvalidArgument);
  // Flushing an empty bundle is an error, and discard is idempotent.
  EXPECT_FALSE(stmt->BundleFlush().ok());
  stmt->BundleDiscard();
  stmt->BundleDiscard();
  PHX_ASSERT_OK(stmt->BundleBegin());  // usable again after the discard
  stmt->BundleDiscard();
}

TEST_F(NativeDriverTest, PipelineOffReportsUnsupportedAndKeepsTripCounts) {
  // PHOENIX_PIPELINE=0 pins the classic per-statement protocol: the probe
  // fails client-side (no wire traffic) and ExecDirect trip counts are
  // identical to the pre-pipeline driver.
  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn_ptr,
      h_.dm().Connect("DRIVER=native;UID=tester;PHOENIX_PIPELINE=0"));
  auto* conn = static_cast<NativeConnection*>(conn_ptr.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  uint64_t before = conn->transport()->stats().round_trips.load();
  EXPECT_EQ(stmt->BundleBegin().code(), common::StatusCode::kUnsupported);
  EXPECT_EQ(conn->transport()->stats().round_trips.load(), before)
      << "the capability probe must not cost a round trip";
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE t SET v = 'q' WHERE id = 1"));
  EXPECT_EQ(conn->transport()->stats().round_trips.load(), before + 1);
}

TEST_F(NativeDriverTest, PingReflectsServerState) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK(conn->Ping());
  h_.server()->Crash();
  EXPECT_TRUE(conn->Ping().IsConnectionLevel());
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(NativeDriverTest, DisconnectInvalidatesStatements) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_.ConnectNative());
  PHX_ASSERT_OK(conn->Disconnect());
  EXPECT_FALSE(conn->CreateStatement().ok());
}

TEST_F(NativeDriverTest, ConnectionStringPreserved) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_.dm().Connect("DRIVER=native;UID=u;DATABASE=x"));
  EXPECT_EQ(conn->connection_string().Get("DATABASE"), "x");
}

}  // namespace
}  // namespace phoenix::odbc
