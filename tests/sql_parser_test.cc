#include <gtest/gtest.h>
#include <functional>

#include "sql/parser.h"

namespace phoenix::sql {
namespace {

StatementPtr MustParse(const std::string& sql) {
  auto result = ParseStatement(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : nullptr;
}

const SelectStmt& AsSelect(const StatementPtr& stmt) {
  return static_cast<const SelectStmt&>(*stmt);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = MustParse("SELECT a, b FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->kind(), StatementKind::kSelect);
  const auto& sel = AsSelect(stmt);
  EXPECT_EQ(sel.items.size(), 2u);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].table_name, "t");
}

TEST(ParserTest, SelectStar) {
  auto stmt = MustParse("SELECT * FROM t");
  const auto& sel = AsSelect(stmt);
  ASSERT_EQ(sel.items.size(), 1u);
  EXPECT_EQ(sel.items[0].expr, nullptr);  // '*'
}

TEST(ParserTest, SelectWithoutFrom) {
  auto stmt = MustParse("SELECT 1 + 2");
  const auto& sel = AsSelect(stmt);
  EXPECT_TRUE(sel.from.empty());
}

TEST(ParserTest, TopN) {
  auto stmt = MustParse("SELECT TOP 100 a FROM t");
  EXPECT_EQ(AsSelect(stmt).top_n, 100);
}

TEST(ParserTest, LimitIsTopAlias) {
  auto stmt = MustParse("SELECT a FROM t LIMIT 7");
  EXPECT_EQ(AsSelect(stmt).top_n, 7);
}

TEST(ParserTest, Distinct) {
  EXPECT_TRUE(AsSelect(MustParse("SELECT DISTINCT a FROM t")).distinct);
}

TEST(ParserTest, AliasWithAndWithoutAs) {
  auto stmt = MustParse("SELECT a AS x, b y FROM t");
  const auto& sel = AsSelect(stmt);
  EXPECT_EQ(sel.items[0].alias, "x");
  EXPECT_EQ(sel.items[1].alias, "y");
}

TEST(ParserTest, WhereGroupHavingOrder) {
  auto stmt = MustParse(
      "SELECT a, SUM(b) AS s FROM t WHERE c > 0 GROUP BY a "
      "HAVING SUM(b) > 10 ORDER BY s DESC, a");
  const auto& sel = AsSelect(stmt);
  EXPECT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.group_by.size(), 1u);
  EXPECT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_FALSE(sel.order_by[0].ascending);
  EXPECT_TRUE(sel.order_by[1].ascending);
}

TEST(ParserTest, CommaJoinAndExplicitJoin) {
  auto stmt = MustParse(
      "SELECT * FROM a, b JOIN c ON b.x = c.x, d");
  const auto& sel = AsSelect(stmt);
  ASSERT_EQ(sel.from.size(), 3u);
  EXPECT_EQ(sel.from[0].kind, TableRef::Kind::kBaseTable);
  EXPECT_EQ(sel.from[1].kind, TableRef::Kind::kJoin);
  EXPECT_EQ(sel.from[2].table_name, "d");
}

TEST(ParserTest, InnerJoinKeyword) {
  auto stmt = MustParse("SELECT * FROM a INNER JOIN b ON a.x = b.x");
  EXPECT_EQ(AsSelect(stmt).from[0].kind, TableRef::Kind::kJoin);
}

TEST(ParserTest, DerivedTable) {
  auto stmt = MustParse("SELECT * FROM (SELECT a FROM t) sub WHERE a > 1");
  const auto& sel = AsSelect(stmt);
  ASSERT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].kind, TableRef::Kind::kDerived);
  EXPECT_EQ(sel.from[0].alias, "sub");
}

TEST(ParserTest, TableAliases) {
  auto stmt = MustParse("SELECT n1.n_name FROM nation n1, nation AS n2");
  const auto& sel = AsSelect(stmt);
  EXPECT_EQ(sel.from[0].alias, "n1");
  EXPECT_EQ(sel.from[1].alias, "n2");
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt = MustParse("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)");
  const auto& sel = AsSelect(stmt);
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->kind, ExprKind::kBinary);
  EXPECT_EQ(sel.where->children[1]->kind, ExprKind::kSubquery);
}

TEST(ParserTest, InSubqueryAndNotIn) {
  auto stmt = MustParse(
      "SELECT a FROM t WHERE a IN (SELECT b FROM u) AND c NOT IN (1, 2)");
  const auto& sel = AsSelect(stmt);
  const Expr& conj = *sel.where;
  EXPECT_EQ(conj.children[0]->kind, ExprKind::kInSubquery);
  EXPECT_FALSE(conj.children[0]->negated);
  EXPECT_EQ(conj.children[1]->kind, ExprKind::kInList);
  EXPECT_TRUE(conj.children[1]->negated);
}

TEST(ParserTest, BetweenAndNotBetween) {
  auto stmt = MustParse(
      "SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 AND b NOT BETWEEN 3 AND 4");
  const Expr& conj = *AsSelect(stmt).where;
  EXPECT_EQ(conj.children[0]->kind, ExprKind::kBetween);
  EXPECT_FALSE(conj.children[0]->negated);
  EXPECT_TRUE(conj.children[1]->negated);
}

TEST(ParserTest, LikeAndIsNull) {
  auto stmt = MustParse(
      "SELECT 1 FROM t WHERE a LIKE 'x%' AND b IS NULL AND c IS NOT NULL "
      "AND d NOT LIKE '%y'");
  // Flatten: ((a LIKE) AND (b IS NULL)) AND (c IS NOT NULL) ...
  std::vector<const Expr*> leaves;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
      walk(*e.children[0]);
      walk(*e.children[1]);
    } else {
      leaves.push_back(&e);
    }
  };
  walk(*AsSelect(stmt).where);
  ASSERT_EQ(leaves.size(), 4u);
  EXPECT_EQ(leaves[0]->kind, ExprKind::kLike);
  EXPECT_EQ(leaves[1]->kind, ExprKind::kIsNull);
  EXPECT_TRUE(leaves[2]->negated);
  EXPECT_TRUE(leaves[3]->negated);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = MustParse("SELECT 1 + 2 * 3");
  const Expr& e = *AsSelect(stmt).items[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  const Expr& e = *AsSelect(stmt).where;
  EXPECT_EQ(e.binary_op, BinaryOp::kOr);
  EXPECT_EQ(e.children[1]->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, NegativeLiteralsFolded) {
  auto stmt = MustParse("SELECT -5, -2.5");
  const auto& sel = AsSelect(stmt);
  EXPECT_EQ(sel.items[0].expr->kind, ExprKind::kLiteral);
  EXPECT_EQ(sel.items[0].expr->literal.AsInt(), -5);
  EXPECT_DOUBLE_EQ(sel.items[1].expr->literal.AsDouble(), -2.5);
}

TEST(ParserTest, DateLiteral) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE d >= DATE '1994-01-01'");
  const Expr& cmp = *AsSelect(stmt).where;
  EXPECT_EQ(cmp.children[1]->literal.type(), common::ValueType::kDate);
}

TEST(ParserTest, CaseWhen) {
  auto stmt = MustParse(
      "SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' "
      "ELSE 'many' END FROM t");
  const Expr& e = *AsSelect(stmt).items[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kCase);
  EXPECT_TRUE(e.has_else);
  EXPECT_EQ(e.children.size(), 5u);  // 2 pairs + else
}

TEST(ParserTest, CountStar) {
  auto stmt = MustParse("SELECT COUNT(*) FROM t");
  const Expr& e = *AsSelect(stmt).items[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kFunction);
  EXPECT_EQ(e.function_name, "COUNT");
  ASSERT_EQ(e.children.size(), 1u);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kStar);
}

TEST(ParserTest, CountDistinct) {
  auto stmt = MustParse("SELECT COUNT(DISTINCT a) FROM t");
  EXPECT_TRUE(AsSelect(stmt).items[0].expr->distinct);
}

TEST(ParserTest, QualifiedStarInSelect) {
  auto stmt = MustParse("SELECT t.* FROM t");
  const Expr& e = *AsSelect(stmt).items[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kStar);
  EXPECT_EQ(e.table_qualifier, "t");
}

TEST(ParserTest, InsertValuesMultiRow) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  EXPECT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.rows.size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = MustParse("INSERT INTO t SELECT a, b FROM u WHERE a > 0");
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  EXPECT_TRUE(ins.rows.empty());
  ASSERT_NE(ins.select, nullptr);
}

TEST(ParserTest, Update) {
  auto stmt = MustParse("UPDATE t SET a = a + 1, b = 'x' WHERE c = 2");
  const auto& upd = static_cast<const UpdateStmt&>(*stmt);
  EXPECT_EQ(upd.assignments.size(), 2u);
  EXPECT_NE(upd.where, nullptr);
}

TEST(ParserTest, Delete) {
  auto stmt = MustParse("DELETE FROM t WHERE a BETWEEN 1 AND 10");
  const auto& del = static_cast<const DeleteStmt&>(*stmt);
  EXPECT_EQ(del.table_name, "t");
}

TEST(ParserTest, CreateTableWithInlinePk) {
  auto stmt = MustParse(
      "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(40) NOT NULL, "
      "c DOUBLE)");
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  EXPECT_EQ(ct.schema.num_columns(), 3u);
  ASSERT_EQ(ct.primary_key.size(), 1u);
  EXPECT_EQ(ct.primary_key[0], "a");
  EXPECT_FALSE(ct.schema.column(0).nullable);  // PK implies NOT NULL
  EXPECT_FALSE(ct.schema.column(1).nullable);
  EXPECT_TRUE(ct.schema.column(2).nullable);
}

TEST(ParserTest, CreateTableWithCompositePk) {
  auto stmt = MustParse(
      "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))");
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  EXPECT_EQ(ct.primary_key.size(), 2u);
}

TEST(ParserTest, CreateTempTable) {
  auto stmt = MustParse("CREATE TEMP TABLE probe (k INTEGER)");
  EXPECT_TRUE(static_cast<const CreateTableStmt&>(*stmt).temporary);
  auto stmt2 = MustParse("CREATE TEMPORARY TABLE probe (k INTEGER)");
  EXPECT_TRUE(static_cast<const CreateTableStmt&>(*stmt2).temporary);
}

TEST(ParserTest, CreateTableIfNotExists) {
  auto stmt = MustParse("CREATE TABLE IF NOT EXISTS t (a INTEGER)");
  EXPECT_TRUE(static_cast<const CreateTableStmt&>(*stmt).if_not_exists);
}

TEST(ParserTest, DropTableIfExists) {
  auto stmt = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(static_cast<const DropTableStmt&>(*stmt).if_exists);
}

TEST(ParserTest, CreateProcedureCapturesBodyText) {
  auto stmt = MustParse(
      "CREATE PROCEDURE p (@t VARCHAR) AS INSERT INTO target "
      "SELECT * FROM src WHERE name = @t");
  const auto& proc = static_cast<const CreateProcedureStmt&>(*stmt);
  EXPECT_EQ(proc.name, "p");
  ASSERT_EQ(proc.params.size(), 1u);
  EXPECT_EQ(proc.params[0].name, "t");
  EXPECT_NE(proc.body_sql.find("INSERT INTO target"), std::string::npos);
}

TEST(ParserTest, CreateProcedureValidatesBody) {
  EXPECT_FALSE(
      ParseStatement("CREATE PROCEDURE p AS SELECT FROM FROM").ok());
}

TEST(ParserTest, ExecWithArgs) {
  auto stmt = MustParse("EXEC p 1, 'x'");
  const auto& exec = static_cast<const ExecStmt&>(*stmt);
  EXPECT_EQ(exec.procedure_name, "p");
  EXPECT_EQ(exec.arguments.size(), 2u);
}

TEST(ParserTest, ExecParenthesized) {
  auto stmt = MustParse("EXEC p(1, 2)");
  EXPECT_EQ(static_cast<const ExecStmt&>(*stmt).arguments.size(), 2u);
}

TEST(ParserTest, TransactionStatements) {
  EXPECT_EQ(MustParse("BEGIN TRANSACTION")->kind(), StatementKind::kBegin);
  EXPECT_EQ(MustParse("BEGIN")->kind(), StatementKind::kBegin);
  EXPECT_EQ(MustParse("COMMIT")->kind(), StatementKind::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK")->kind(), StatementKind::kRollback);
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto result = ParseScript(
      "BEGIN TRANSACTION; INSERT INTO t VALUES (1); COMMIT");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 3u);
}

TEST(ParserTest, TrailingInputRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 SELECT 2").ok());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_NE(MustParse("SELECT 1;"), nullptr);
}

TEST(ParserTest, ErrorMessagesIncludeContext) {
  auto result = ParseStatement("SELECT FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("FROM"), std::string::npos);
}

TEST(ParserTest, ParamInExpression) {
  auto stmt = MustParse("SELECT a FROM t WHERE b = @param");
  const Expr& cmp = *AsSelect(stmt).where;
  EXPECT_EQ(cmp.children[1]->kind, ExprKind::kParam);
  EXPECT_EQ(cmp.children[1]->param_name, "param");
}

// ToSql round-trip: parse, render, re-parse, render — text must stabilize.
class SqlRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlRoundTripTest, ParseRenderReparse) {
  auto stmt1 = ParseStatement(GetParam());
  ASSERT_TRUE(stmt1.ok()) << stmt1.status().ToString();
  std::string rendered1 = stmt1.value()->ToSql();
  auto stmt2 = ParseStatement(rendered1);
  ASSERT_TRUE(stmt2.ok()) << rendered1 << " -> "
                          << stmt2.status().ToString();
  EXPECT_EQ(stmt2.value()->ToSql(), rendered1);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, SqlRoundTripTest,
    ::testing::Values(
        "SELECT a, b + 1 AS c FROM t WHERE x = 'y' ORDER BY a DESC",
        "SELECT TOP 5 * FROM lineitem",
        "SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 2",
        "SELECT * FROM (SELECT a FROM t) sub",
        "SELECT * FROM a JOIN b ON a.x = b.x",
        "INSERT INTO t VALUES (1, 'x', NULL, TRUE)",
        "INSERT INTO t (a) SELECT b FROM u",
        "UPDATE t SET a = CASE WHEN b THEN 1 ELSE 2 END",
        "DELETE FROM t WHERE a NOT IN (1, 2)",
        "CREATE TABLE t (a INTEGER NOT NULL, PRIMARY KEY (a))",
        "SELECT 1 FROM t WHERE d >= DATE '1995-03-15'",
        "SELECT a FROM t WHERE a IN (SELECT b FROM u)"));

// The paper's Q11 (Figure 5) must parse as printed (modulo our dialect).
TEST(ParserTest, PaperQ11Parses) {
  const char* q11 =
      "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value "
      "FROM partsupp, supplier, nation "
      "WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
      "AND n_name = 'GERMANY' GROUP BY ps_partkey "
      "HAVING SUM(ps_supplycost * ps_availqty) > "
      "(SELECT SUM(ps_supplycost * ps_availqty) * 0.0001 "
      " FROM partsupp, supplier, nation "
      " WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey "
      " AND n_name = 'GERMANY') ORDER BY value DESC";
  EXPECT_NE(MustParse(q11), nullptr);
}

}  // namespace
}  // namespace phoenix::sql
