#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fault/chaos.h"
#include "fault/fault.h"
#include "test_util.h"

namespace phoenix::phx {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::CrashAndRestartAsync;
using phoenix::testing::ServerHarness;

class PhoenixRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE data (id INTEGER PRIMARY KEY, v INTEGER)"));
    std::string insert = "INSERT INTO data VALUES ";
    for (int i = 1; i <= 300; ++i) {
      if (i > 1) insert += ",";
      insert += "(" + std::to_string(i) + "," + std::to_string(i * 2) + ")";
    }
    PHX_ASSERT_OK(h_.Exec(insert));
  }

  /// Connects with client- or server-side repositioning. `extra` appends
  /// additional connection-string attributes (";KEY=value" form), e.g.
  /// ";PHOENIX_PREFETCH=0" to pin the classic row-at-a-time protocol for
  /// tests that count individual round trips or recoveries.
  odbc::ConnectionPtr Connect(const std::string& reposition,
                              const std::string& extra = "") {
    // This fixture tests persisted-delivery recovery (repositioning, crash
    // mid-fetch, result-table machinery); pin the cross-statement result
    // cache off so a suite-wide PHOENIX_RESULT_CACHE env override cannot
    // switch these connections to the client-drain path.
    auto conn = h_.ConnectPhoenix("PHOENIX_REPOSITION=" + reposition +
                                  ";PHOENIX_RETRY_MS=10" +
                                  ";PHOENIX_RESULT_CACHE=0" + extra);
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return conn.ok() ? std::move(conn).value() : nullptr;
  }

  ServerHarness h_;
};

/// The paper's headline behavior: a crash mid-fetch is masked; delivery
/// resumes at the next undelivered tuple with no loss or duplication.
class RepositionModeTest
    : public PhoenixRecoveryTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(RepositionModeTest, SeamlessDeliveryAcrossCrash) {
  auto conn = Connect(GetParam());
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  std::vector<int64_t> seen;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }

  std::thread restarter = CrashAndRestartAsync(h_.server(), 50);
  while (true) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    seen.push_back(row[0].AsInt());
  }
  restarter.join();

  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
}

TEST_P(RepositionModeTest, MultipleCrashesDuringOneResult) {
  // Legacy delivery: with client-side buffering a 50-row fetch cycle can be
  // served entirely from the buffer, collapsing two crashes into a single
  // observed recovery. Row-at-a-time makes every crash observable.
  auto conn = Connect(GetParam(), ";PHOENIX_PREFETCH=0");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  size_t count = 0;
  for (int crash = 0; crash < 3; ++crash) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(stmt->Fetch(&row).value());
      EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(++count));
    }
    std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
    restarter.join();
  }
  while (stmt->Fetch(&row).value()) {
    EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(++count));
  }
  EXPECT_EQ(count, 300u);
  EXPECT_EQ(static_cast<PhoenixConnection*>(conn.get())->recovery_count(),
            3u);
}

INSTANTIATE_TEST_SUITE_P(ClientAndServer, RepositionModeTest,
                         ::testing::Values("client", "server"));

TEST_F(PhoenixRecoveryTest, PrefetchInFlightAcrossCrashIsExactlyOnce) {
  // Crash while a read-ahead fetch is in flight. The prefetched-but-
  // undelivered rows are discarded at recovery and re-fetched after
  // repositioning: every row arrives exactly once, in order.
  auto conn = Connect("server", ";PHOENIX_FETCH_BATCH=16");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  std::vector<int64_t> seen;
  // 40 rows with batch 16 leaves rows 41-48 buffered and the read-ahead for
  // 49-64 in flight when the crash lands.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  restarter.join();  // server is back up before we drain: deterministic
  while (stmt->Fetch(&row).value()) {
    seen.push_back(row[0].AsInt());
  }

  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
}

TEST_F(PhoenixRecoveryTest, PiggybackedFirstBatchSurvivesCrash) {
  // The execute response piggybacks the first 64 rows. Crash after only 10
  // have been delivered: buffered-but-undelivered rows must not be counted
  // as delivered, and the reposition lands on row 11's successor exactly.
  auto conn = Connect("server");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  std::vector<int64_t> seen;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  restarter.join();
  while (stmt->Fetch(&row).value()) {
    seen.push_back(row[0].AsInt());
  }

  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
  // 300 rows cannot all be client-buffered, so at least one post-crash
  // fetch hits the restarted server and triggers exactly one recovery.
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
}

TEST_F(PhoenixRecoveryTest, CrashDuringExecuteRetriesStatement) {
  auto conn = Connect("server");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  h_.server()->Crash();
  std::thread restarter([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    h_.server()->Restart().ok();
  });
  // Execute while the server is down: Phoenix reconnects and completes.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM data"));
  restarter.join();
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 300);
}

TEST_F(PhoenixRecoveryTest, RecoveryTimingsSplitIntoTwoPhases) {
  // Row-at-a-time so the post-crash fetch is guaranteed to hit the wire
  // (not a read-ahead buffer) and trigger exactly one recovery.
  auto conn = Connect("server", ";PHOENIX_PREFETCH=0");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));
  Row row;
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(stmt->Fetch(&row).value());

  std::thread restarter = CrashAndRestartAsync(h_.server(), 40);
  ASSERT_TRUE(stmt->Fetch(&row).value());
  restarter.join();

  const RecoveryTimings& timings = phoenix_conn->last_recovery();
  EXPECT_GT(timings.virtual_session_seconds, 0.0);
  EXPECT_GT(timings.sql_state_seconds, 0.0);
  EXPECT_EQ(phoenix_conn->stats().recover_virtual.count.load(), 1u);
  EXPECT_EQ(phoenix_conn->stats().recover_sql.count.load(), 1u);
}

TEST_F(PhoenixRecoveryTest, GivesUpAfterDeadlineAndRevealsError) {
  auto conn = h_.ConnectPhoenix(
      "PHOENIX_DEADLINE_MS=200;PHOENIX_RETRY_MS=20");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  h_.server()->Crash();
  // No restart: recovery must give up and surface the original failure.
  auto st = stmt->ExecDirect("SELECT COUNT(*) FROM data");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsConnectionLevel());
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(PhoenixRecoveryTest, UpdateCompletedBeforeCrashIsNotReExecuted) {
  auto conn = Connect("server");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  // Complete an update, then crash, then run another statement. The first
  // update must be applied exactly once.
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = v + 1 WHERE id = 1"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = v + 1 WHERE id = 2"));
  restarter.join();
  auto rows = h_.QueryAll("SELECT v FROM data WHERE id IN (1, 2) ORDER BY id");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].AsInt(), 3);  // 2 + 1, exactly once
  EXPECT_EQ((*rows)[1][0].AsInt(), 5);  // 4 + 1, exactly once
}

TEST_F(PhoenixRecoveryTest, InTransactionFailureSurfacesAsAbort) {
  auto conn = Connect("client");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));

  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  auto st = stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 11");
  restarter.join();
  EXPECT_EQ(st.code(), common::StatusCode::kAborted);
  EXPECT_FALSE(phoenix_conn->in_transaction());

  // The aborted transaction left no trace; a fresh transaction works.
  auto rows = h_.QueryAll("SELECT v FROM data WHERE id = 10");
  EXPECT_EQ((*rows)[0][0].AsInt(), 20);
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  rows = h_.QueryAll("SELECT v FROM data WHERE id = 10");
  EXPECT_EQ((*rows)[0][0].AsInt(), 0);
}

TEST_F(PhoenixRecoveryTest, PrivateFailureInsideTxnAbortsAppTransaction) {
  // A persisted query's result-table DDL runs on the driver's PRIVATE
  // connection. When that side fails, the server has not aborted the
  // application's transaction — but the virtual session must still honor
  // the engine contract that a failed statement aborts the surrounding
  // transaction. Before the fix the driver left the app transaction open:
  // every later "autocommit" statement silently rode the zombie
  // transaction, so its effects — including persisted result sets and
  // their status rows — evaporated at the next crash even though each
  // statement reported success.
  auto conn = Connect("server");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  // Warm up the persisted-query machinery (status table, private session)
  // so the fault armed below hits exactly the next result-table CREATE.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data WHERE id = 1"));
  Row row;
  while (stmt->Fetch(&row).value()) {
  }
  PHX_ASSERT_OK(stmt->CloseCursor());

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 999 WHERE id = 1"));

  // In-transaction app statements buffer their redo until COMMIT, so the
  // next WAL append is the private connection's autocommitted CREATE of
  // the result table for the SELECT below.
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  PHX_ASSERT_OK(injector.ArmSpec("wal.append=error:code=IoError,count=1", 1));
  auto st = stmt->ExecDirect("SELECT id FROM data ORDER BY id");
  injector.Clear();
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(phoenix_conn->in_transaction());

  // The transaction aborted: the UPDATE is gone.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM data WHERE id = 1"));
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 2);
  PHX_ASSERT_OK(stmt->CloseCursor());

  // No leftover server-side transaction to collide with.
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));

  // And later autocommit persisted results are durable across a crash.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));
  std::vector<int64_t> seen;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }
  std::thread restarter = CrashAndRestartAsync(h_.server(), 20);
  while (true) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    seen.push_back(row[0].AsInt());
  }
  restarter.join();
  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
}

TEST_F(PhoenixRecoveryTest, CrashAtCommitSurfacesAbort) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  auto st = stmt->ExecDirect("COMMIT");
  restarter.join();
  EXPECT_EQ(st.code(), common::StatusCode::kAborted);
}

TEST_F(PhoenixRecoveryTest, RollbackDuringOutageSucceeds) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  // A crash aborts the transaction anyway: ROLLBACK reports success.
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));
  restarter.join();
}

TEST_F(PhoenixRecoveryTest, SessionContextReplayedAfterCrash) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("CREATE TEMP TABLE scratch (k INTEGER)"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  // After recovery the temp table exists again (empty — it is volatile).
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM scratch"));
  restarter.join();
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 0);
}

TEST_F(PhoenixRecoveryTest, MultipleOpenResultSetsAllReinstalled) {
  auto conn = Connect("server");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt1, conn->CreateStatement());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt2, conn->CreateStatement());
  PHX_ASSERT_OK(
      stmt1->ExecDirect("SELECT id FROM data WHERE id <= 100 ORDER BY id"));
  PHX_ASSERT_OK(
      stmt2->ExecDirect("SELECT id FROM data WHERE id > 200 ORDER BY id"));
  Row row;
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(stmt1->Fetch(&row).value());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(stmt2->Fetch(&row).value());

  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  ASSERT_TRUE(stmt1->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 41);
  ASSERT_TRUE(stmt2->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 211);
  restarter.join();
}

TEST_F(PhoenixRecoveryTest, NewStatementsWorkAfterRecovery) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM data"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  restarter.join();
  // A brand-new statement handle created after the crash works.
  PHX_ASSERT_OK_AND_ASSIGN(auto fresh, conn->CreateStatement());
  PHX_ASSERT_OK(fresh->ExecDirect("SELECT COUNT(*) FROM data"));
  Row row;
  ASSERT_TRUE(fresh->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 300);
}

TEST_F(PhoenixRecoveryTest, ServerRepositionUsesFewerRoundTripsThanClient) {
  // Fetch deep into a result, crash, recover in both modes, and compare
  // wire traffic — the mechanism behind paper Figure 4's 10x improvement.
  uint64_t trips[2];
  const char* modes[2] = {"client", "server"};
  for (int m = 0; m < 2; ++m) {
    ServerHarness h;
    PHX_ASSERT_OK(h.Exec(
        "CREATE TABLE d2 (id INTEGER PRIMARY KEY, v INTEGER)"));
    std::string insert = "INSERT INTO d2 VALUES ";
    for (int i = 1; i <= 500; ++i) {
      if (i > 1) insert += ",";
      insert += "(" + std::to_string(i) + ",1)";
    }
    PHX_ASSERT_OK(h.Exec(insert));

    auto conn = h.ConnectPhoenix(std::string("PHOENIX_REPOSITION=") +
                                 modes[m] +
                                 ";PHOENIX_RETRY_MS=5;PHOENIX_PREFETCH=0" +
                                 ";PHOENIX_RESULT_CACHE=0");
    ASSERT_TRUE(conn.ok());
    PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
    PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM d2 ORDER BY id"));
    Row row;
    for (int i = 0; i < 450; ++i) ASSERT_TRUE(stmt->Fetch(&row).value());

    auto* native_conn = static_cast<odbc::NativeConnection*>(nullptr);
    (void)native_conn;
    // Measure round trips across the crash recovery.
    std::thread restarter = CrashAndRestartAsync(h.server(), 30);
    ASSERT_TRUE(stmt->Fetch(&row).value());
    restarter.join();
    EXPECT_EQ(row[0].AsInt(), 451);
    trips[m] = 1;  // normalized below via recovery SQL-state timing
    auto* pc = static_cast<PhoenixConnection*>(conn.value().get());
    // Client mode re-fetched 450 rows one-by-one; server mode skipped them
    // in one call. Compare recovery phase-2 step counts via stats:
    trips[m] = pc->stats().recover_sql.nanos.load();
  }
  // Server-side repositioning must be dramatically cheaper.
  EXPECT_LT(trips[1], trips[0]);
}

TEST_F(PhoenixRecoveryTest, ReconnectSleepNeverOvershootsDeadline) {
  // Regression: with a base retry interval far above the give-up deadline,
  // the recovery loop used to sleep a full interval past the deadline before
  // noticing it. Every sleep is now clamped to the remaining deadline, so
  // giving up takes ~deadline, not ~retry interval.
  auto conn = h_.ConnectPhoenix(
      "PHOENIX_RETRY_MS=3000;PHOENIX_RETRY_CAP_MS=3000;"
      "PHOENIX_DEADLINE_MS=150");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  h_.server()->Crash();

  auto start = std::chrono::steady_clock::now();
  auto st = stmt->ExecDirect("SELECT COUNT(*) FROM data");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsConnectionLevel());
  EXPECT_GE(elapsed.count(), 150);
  EXPECT_LT(elapsed.count(), 1500)
      << "recovery overshot the 150ms deadline by ~a retry interval";
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(PhoenixRecoveryTest, RoundtripTimeoutTriggersRecoveryNotAppError) {
  // A hung server (response never arrives) must be detected by the
  // per-roundtrip deadline and handled like a dead connection: Phoenix
  // recovers and completes the statement; the application never sees
  // kTimeout — and the update applies exactly once despite the ambiguous
  // lost-response window (status-table disambiguation).
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  auto conn = Connect("server", ";PHOENIX_RT_TIMEOUT_MS=100");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  // Hang the next response in flight; only the roundtrip deadline can cut
  // this short (the server-side work itself completed).
  PHX_ASSERT_OK(injector.ArmSpec("inproc.response=hang:count=1", 1));
  auto start = std::chrono::steady_clock::now();
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = v + 1 WHERE id = 7"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  injector.Clear();

  EXPECT_GE(phoenix_conn->recovery_count(), 1u)
      << "the timeout must have entered the recovery path";
  EXPECT_LT(elapsed.count(), 5000)
      << "a 30s injected hang must be detected in ~the 100ms deadline";
  auto rows = h_.QueryAll("SELECT v FROM data WHERE id = 7");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].AsInt(), 15);  // 14 + 1, exactly once
}

// ---------------------------------------------------------------------------
// Statement bundles: exactly-once crash retry, txn-state resync, and the
// status-ledger quoting regression.
// ---------------------------------------------------------------------------

class BundleRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::FaultInjector::Global().Clear();
    PHX_ASSERT_OK(h_.Exec("CREATE TABLE acct (id INTEGER PRIMARY KEY, "
                          "bal INTEGER, note VARCHAR)"));
    PHX_ASSERT_OK(
        h_.Exec("INSERT INTO acct VALUES (1, 100, 'a'), (2, 200, 'b')"));
  }
  void TearDown() override { fault::FaultInjector::Global().Clear(); }

  odbc::ConnectionPtr Connect(const std::string& extra = "") {
    auto conn = h_.ConnectPhoenix("PHOENIX_RETRY_MS=10;PHOENIX_RESULT_CACHE=0" +
                                  extra);
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return conn.ok() ? std::move(conn).value() : nullptr;
  }

  int64_t Bal(int id) {
    auto rows = h_.QueryAll("SELECT bal FROM acct WHERE id = " +
                            std::to_string(id));
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() && !rows->empty() ? (*rows)[0][0].AsInt() : -1;
  }

  /// ChaosController executes crashes out of line, so a flush can win the
  /// race with its own crash — recovering against the still-up server —
  /// and the crash then lands AFTER the flush returns. Both orders give
  /// the same exactly-once outcome; drain the cycle before auditing so
  /// the audit queries never hit the mid-cycle downed server.
  void WaitForChaosCycle(const fault::ChaosController& chaos,
                         uint64_t cycles = 1) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while ((chaos.crashes() < cycles || !h_.server()->IsUp()) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ServerHarness h_;
};

TEST_F(BundleRecoveryTest, QuoteBearingLiteralFlowsThroughStatusLedger) {
  // Satellite regression: the status-table protocol builds its SQL by
  // concatenation. A statement whose literal carries embedded quotes (and
  // the magic string "phoenix_status", which also steers the commit-window
  // fault point at it) must ride the persisted-statement retry protocol
  // without corrupting the exactly-once ledger or the literal itself.
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  const std::string gnarly = "O''Brien; DROP TABLE phoenix_status; --";
  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec(
      "server.commit.pre_status=error:code=ConnectionFailed,count=1", 1));
  PHX_ASSERT_OK(stmt->ExecDirect(
      "UPDATE acct SET note = '" + gnarly + "', bal = bal + 1 WHERE id = 1"));
  injector.Clear();

  // Applied exactly once, quote intact, and the ledger table survived.
  EXPECT_EQ(Bal(1), 101);
  auto note = h_.QueryAll("SELECT note FROM acct WHERE id = 1");
  ASSERT_TRUE(note.ok());
  EXPECT_EQ((*note)[0][0].AsString(), "O'Brien; DROP TABLE phoenix_status; --");
  auto ledger = h_.QueryAll("SELECT COUNT(*) FROM phoenix_status");
  EXPECT_TRUE(ledger.ok()) << "status ledger corrupted: "
                           << ledger.status().ToString();
}

TEST_F(BundleRecoveryTest, MidBundleFailureResyncsClientTxnState) {
  // Satellite: when statement k of a bundle fails inside a transaction, the
  // server has rolled the transaction back — the client's in_txn_ (and the
  // result-cache txn tracking behind it) must resync instead of believing
  // it is still inside a transaction that no longer exists.
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  ASSERT_TRUE(pc->in_transaction());

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 50 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("INSERT INTO acct VALUES (1, 0, 'dup')"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());

  // In-band: successful prefix plus the failing entry.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());

  // The discriminating check: client txn state resynced to "no transaction".
  EXPECT_FALSE(pc->in_transaction());
  // The rolled-back prefix left no trace.
  EXPECT_EQ(Bal(1), 100);
  // The virtual session is fully usable: a fresh transaction begins cleanly
  // (this would fail with "transaction already open" — or silently run in
  // the dead transaction — if the client state had diverged).
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE acct SET bal = bal + 7 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  EXPECT_EQ(Bal(1), 107);
}

TEST_F(BundleRecoveryTest, CommittedBundleWithLostResponseIsNotReExecuted) {
  // The tentpole's ambiguity window: the bundle (wrapped BEGIN..record..
  // COMMIT) commits on the server but the response never reaches the
  // client. The retry must find the completion record and report success
  // WITHOUT re-executing — the classic double-apply bug.
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec(
      "server.execute.post=error:code=ConnectionFailed,count=1", 1));

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 1 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 1 WHERE id = 2"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());
  injector.Clear();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  // Exactly once: +1 each, not +2.
  EXPECT_EQ(Bal(1), 101);
  EXPECT_EQ(Bal(2), 201);
}

TEST_F(BundleRecoveryTest, LostResponseQueryResultsAreMarkedLostNotRetried) {
  // Same window, but the committed bundle carried a query: its effects are
  // durable and its result rows went down with the response. The driver
  // reports the statement OK with result_lost set — callers re-read if they
  // need the rows; nothing is silently re-executed.
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec(
      "server.execute.post=error:code=ConnectionFailed,count=1", 1));

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 3 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("SELECT bal FROM acct ORDER BY id"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());
  injector.Clear();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_TRUE(results[1].is_query);
  EXPECT_TRUE(results[1].result_lost);
  EXPECT_TRUE(results[1].rows.empty());
  EXPECT_EQ(Bal(1), 103);  // exactly once
}

TEST_F(BundleRecoveryTest, BundleCrashBeforeExecutionReplaysExactlyOnce) {
  // Crash BEFORE the bundle ran: no completion record exists, so the retry
  // re-sends the whole bundle — and the whole bundle applies exactly once.
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  fault::ChaosController chaos(h_.server(), std::chrono::milliseconds(20));
  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("server.bundle=crash:count=1", 1));

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 5 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 7 WHERE id = 2"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());
  injector.Clear();
  WaitForChaosCycle(chaos);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  // The replay carried real per-statement results, not synthesized ones.
  EXPECT_EQ(results[0].rows_affected, 1);
  EXPECT_EQ(results[1].rows_affected, 1);
  EXPECT_GE(pc->recovery_count(), 1u);
  EXPECT_EQ(Bal(1), 105);
  EXPECT_EQ(Bal(2), 207);
}

TEST_F(BundleRecoveryTest, BundleCrashInCommitWindowIsExactlyOnce) {
  // Crash in the "did my commit happen?" window: the bundle carries its
  // completion record, so the commit-window fault point fires for bundles
  // too. Whichever side of the commit the crash lands on, the observable
  // outcome is exactly-once.
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  fault::ChaosController chaos(h_.server(), std::chrono::milliseconds(20));
  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("server.commit.pre_status=crash:count=1", 1));

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 9 WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = bal + 9 WHERE id = 2"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());
  injector.Clear();
  WaitForChaosCycle(chaos);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_EQ(Bal(1), 109);
  EXPECT_EQ(Bal(2), 209);
}

TEST_F(BundleRecoveryTest, ReadOnlyBundleReplaysAfterCrash) {
  // No modification, no completion record needed: a crashed read-only
  // bundle is simply replayed, and real rows come back.
  auto conn = Connect();
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  fault::ChaosController chaos(h_.server(), std::chrono::milliseconds(20));
  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("server.bundle=crash:count=1", 1));

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("SELECT bal FROM acct WHERE id = 1"));
  PHX_ASSERT_OK(stmt->BundleAdd("SELECT bal FROM acct WHERE id = 2"));
  PHX_ASSERT_OK_AND_ASSIGN(auto results, stmt->BundleFlush());
  injector.Clear();
  WaitForChaosCycle(chaos);

  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].status.ok());
  ASSERT_TRUE(results[1].status.ok());
  EXPECT_FALSE(results[0].result_lost);
  ASSERT_EQ(results[0].rows.size(), 1u);
  ASSERT_EQ(results[1].rows.size(), 1u);
  EXPECT_EQ(results[0].rows[0][0].AsInt(), 100);
  EXPECT_EQ(results[1].rows[0][0].AsInt(), 200);
}

TEST_F(BundleRecoveryTest, AppTransactionBundleCrashSurfacesOneAbort) {
  // A bundle running inside an application transaction dies with the
  // server: paper semantics — exactly one abort surfaces, the transaction's
  // work is nowhere, and the session keeps working.
  auto conn = Connect();
  auto* pc = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE acct SET bal = 999 WHERE id = 1"));

  fault::ChaosController chaos(h_.server(), std::chrono::milliseconds(20));
  auto& injector = fault::FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("server.bundle=crash:count=1", 1));

  PHX_ASSERT_OK(stmt->BundleBegin());
  PHX_ASSERT_OK(stmt->BundleAdd("UPDATE acct SET bal = 999 WHERE id = 2"));
  auto results = stmt->BundleFlush();
  injector.Clear();
  WaitForChaosCycle(chaos);

  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), common::StatusCode::kAborted);
  EXPECT_FALSE(pc->in_transaction());
  EXPECT_EQ(Bal(1), 100) << "aborted transaction's writes must be nowhere";
  EXPECT_EQ(Bal(2), 200);

  // Exactly ONE abort: the session works immediately afterwards.
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE acct SET bal = bal + 1 WHERE id = 1"));
  EXPECT_EQ(Bal(1), 101);
}

}  // namespace
}  // namespace phoenix::phx
