#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fault/fault.h"
#include "test_util.h"

namespace phoenix::phx {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::CrashAndRestartAsync;
using phoenix::testing::ServerHarness;

class PhoenixRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PHX_ASSERT_OK(h_.Exec(
        "CREATE TABLE data (id INTEGER PRIMARY KEY, v INTEGER)"));
    std::string insert = "INSERT INTO data VALUES ";
    for (int i = 1; i <= 300; ++i) {
      if (i > 1) insert += ",";
      insert += "(" + std::to_string(i) + "," + std::to_string(i * 2) + ")";
    }
    PHX_ASSERT_OK(h_.Exec(insert));
  }

  /// Connects with client- or server-side repositioning. `extra` appends
  /// additional connection-string attributes (";KEY=value" form), e.g.
  /// ";PHOENIX_PREFETCH=0" to pin the classic row-at-a-time protocol for
  /// tests that count individual round trips or recoveries.
  odbc::ConnectionPtr Connect(const std::string& reposition,
                              const std::string& extra = "") {
    // This fixture tests persisted-delivery recovery (repositioning, crash
    // mid-fetch, result-table machinery); pin the cross-statement result
    // cache off so a suite-wide PHOENIX_RESULT_CACHE env override cannot
    // switch these connections to the client-drain path.
    auto conn = h_.ConnectPhoenix("PHOENIX_REPOSITION=" + reposition +
                                  ";PHOENIX_RETRY_MS=10" +
                                  ";PHOENIX_RESULT_CACHE=0" + extra);
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    return conn.ok() ? std::move(conn).value() : nullptr;
  }

  ServerHarness h_;
};

/// The paper's headline behavior: a crash mid-fetch is masked; delivery
/// resumes at the next undelivered tuple with no loss or duplication.
class RepositionModeTest
    : public PhoenixRecoveryTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(RepositionModeTest, SeamlessDeliveryAcrossCrash) {
  auto conn = Connect(GetParam());
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  std::vector<int64_t> seen;
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }

  std::thread restarter = CrashAndRestartAsync(h_.server(), 50);
  while (true) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    seen.push_back(row[0].AsInt());
  }
  restarter.join();

  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
}

TEST_P(RepositionModeTest, MultipleCrashesDuringOneResult) {
  // Legacy delivery: with client-side buffering a 50-row fetch cycle can be
  // served entirely from the buffer, collapsing two crashes into a single
  // observed recovery. Row-at-a-time makes every crash observable.
  auto conn = Connect(GetParam(), ";PHOENIX_PREFETCH=0");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  size_t count = 0;
  for (int crash = 0; crash < 3; ++crash) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(stmt->Fetch(&row).value());
      EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(++count));
    }
    std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
    restarter.join();
  }
  while (stmt->Fetch(&row).value()) {
    EXPECT_EQ(row[0].AsInt(), static_cast<int64_t>(++count));
  }
  EXPECT_EQ(count, 300u);
  EXPECT_EQ(static_cast<PhoenixConnection*>(conn.get())->recovery_count(),
            3u);
}

INSTANTIATE_TEST_SUITE_P(ClientAndServer, RepositionModeTest,
                         ::testing::Values("client", "server"));

TEST_F(PhoenixRecoveryTest, PrefetchInFlightAcrossCrashIsExactlyOnce) {
  // Crash while a read-ahead fetch is in flight. The prefetched-but-
  // undelivered rows are discarded at recovery and re-fetched after
  // repositioning: every row arrives exactly once, in order.
  auto conn = Connect("server", ";PHOENIX_FETCH_BATCH=16");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  std::vector<int64_t> seen;
  // 40 rows with batch 16 leaves rows 41-48 buffered and the read-ahead for
  // 49-64 in flight when the crash lands.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  restarter.join();  // server is back up before we drain: deterministic
  while (stmt->Fetch(&row).value()) {
    seen.push_back(row[0].AsInt());
  }

  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
}

TEST_F(PhoenixRecoveryTest, PiggybackedFirstBatchSurvivesCrash) {
  // The execute response piggybacks the first 64 rows. Crash after only 10
  // have been delivered: buffered-but-undelivered rows must not be counted
  // as delivered, and the reposition lands on row 11's successor exactly.
  auto conn = Connect("server");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));

  Row row;
  std::vector<int64_t> seen;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  restarter.join();
  while (stmt->Fetch(&row).value()) {
    seen.push_back(row[0].AsInt());
  }

  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
  // 300 rows cannot all be client-buffered, so at least one post-crash
  // fetch hits the restarted server and triggers exactly one recovery.
  EXPECT_EQ(phoenix_conn->recovery_count(), 1u);
}

TEST_F(PhoenixRecoveryTest, CrashDuringExecuteRetriesStatement) {
  auto conn = Connect("server");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  h_.server()->Crash();
  std::thread restarter([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    h_.server()->Restart().ok();
  });
  // Execute while the server is down: Phoenix reconnects and completes.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM data"));
  restarter.join();
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 300);
}

TEST_F(PhoenixRecoveryTest, RecoveryTimingsSplitIntoTwoPhases) {
  // Row-at-a-time so the post-crash fetch is guaranteed to hit the wire
  // (not a read-ahead buffer) and trigger exactly one recovery.
  auto conn = Connect("server", ";PHOENIX_PREFETCH=0");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));
  Row row;
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(stmt->Fetch(&row).value());

  std::thread restarter = CrashAndRestartAsync(h_.server(), 40);
  ASSERT_TRUE(stmt->Fetch(&row).value());
  restarter.join();

  const RecoveryTimings& timings = phoenix_conn->last_recovery();
  EXPECT_GT(timings.virtual_session_seconds, 0.0);
  EXPECT_GT(timings.sql_state_seconds, 0.0);
  EXPECT_EQ(phoenix_conn->stats().recover_virtual.count.load(), 1u);
  EXPECT_EQ(phoenix_conn->stats().recover_sql.count.load(), 1u);
}

TEST_F(PhoenixRecoveryTest, GivesUpAfterDeadlineAndRevealsError) {
  auto conn = h_.ConnectPhoenix(
      "PHOENIX_DEADLINE_MS=200;PHOENIX_RETRY_MS=20");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  h_.server()->Crash();
  // No restart: recovery must give up and surface the original failure.
  auto st = stmt->ExecDirect("SELECT COUNT(*) FROM data");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsConnectionLevel());
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(PhoenixRecoveryTest, UpdateCompletedBeforeCrashIsNotReExecuted) {
  auto conn = Connect("server");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  // Complete an update, then crash, then run another statement. The first
  // update must be applied exactly once.
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = v + 1 WHERE id = 1"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = v + 1 WHERE id = 2"));
  restarter.join();
  auto rows = h_.QueryAll("SELECT v FROM data WHERE id IN (1, 2) ORDER BY id");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].AsInt(), 3);  // 2 + 1, exactly once
  EXPECT_EQ((*rows)[1][0].AsInt(), 5);  // 4 + 1, exactly once
}

TEST_F(PhoenixRecoveryTest, InTransactionFailureSurfacesAsAbort) {
  auto conn = Connect("client");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));

  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  auto st = stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 11");
  restarter.join();
  EXPECT_EQ(st.code(), common::StatusCode::kAborted);
  EXPECT_FALSE(phoenix_conn->in_transaction());

  // The aborted transaction left no trace; a fresh transaction works.
  auto rows = h_.QueryAll("SELECT v FROM data WHERE id = 10");
  EXPECT_EQ((*rows)[0][0].AsInt(), 20);
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));
  PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  rows = h_.QueryAll("SELECT v FROM data WHERE id = 10");
  EXPECT_EQ((*rows)[0][0].AsInt(), 0);
}

TEST_F(PhoenixRecoveryTest, PrivateFailureInsideTxnAbortsAppTransaction) {
  // A persisted query's result-table DDL runs on the driver's PRIVATE
  // connection. When that side fails, the server has not aborted the
  // application's transaction — but the virtual session must still honor
  // the engine contract that a failed statement aborts the surrounding
  // transaction. Before the fix the driver left the app transaction open:
  // every later "autocommit" statement silently rode the zombie
  // transaction, so its effects — including persisted result sets and
  // their status rows — evaporated at the next crash even though each
  // statement reported success.
  auto conn = Connect("server");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  // Warm up the persisted-query machinery (status table, private session)
  // so the fault armed below hits exactly the next result-table CREATE.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data WHERE id = 1"));
  Row row;
  while (stmt->Fetch(&row).value()) {
  }
  PHX_ASSERT_OK(stmt->CloseCursor());

  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 999 WHERE id = 1"));

  // In-transaction app statements buffer their redo until COMMIT, so the
  // next WAL append is the private connection's autocommitted CREATE of
  // the result table for the SELECT below.
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  PHX_ASSERT_OK(injector.ArmSpec("wal.append=error:code=IoError,count=1", 1));
  auto st = stmt->ExecDirect("SELECT id FROM data ORDER BY id");
  injector.Clear();
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(phoenix_conn->in_transaction());

  // The transaction aborted: the UPDATE is gone.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT v FROM data WHERE id = 1"));
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 2);
  PHX_ASSERT_OK(stmt->CloseCursor());

  // No leftover server-side transaction to collide with.
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));

  // And later autocommit persisted results are durable across a crash.
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM data ORDER BY id"));
  std::vector<int64_t> seen;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(stmt->Fetch(&row).value());
    seen.push_back(row[0].AsInt());
  }
  std::thread restarter = CrashAndRestartAsync(h_.server(), 20);
  while (true) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    seen.push_back(row[0].AsInt());
  }
  restarter.join();
  ASSERT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i + 1) << "at index " << i;
  }
}

TEST_F(PhoenixRecoveryTest, CrashAtCommitSurfacesAbort) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  auto st = stmt->ExecDirect("COMMIT");
  restarter.join();
  EXPECT_EQ(st.code(), common::StatusCode::kAborted);
}

TEST_F(PhoenixRecoveryTest, RollbackDuringOutageSucceeds) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = 0 WHERE id = 10"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  // A crash aborts the transaction anyway: ROLLBACK reports success.
  PHX_ASSERT_OK(stmt->ExecDirect("ROLLBACK"));
  restarter.join();
}

TEST_F(PhoenixRecoveryTest, SessionContextReplayedAfterCrash) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("CREATE TEMP TABLE scratch (k INTEGER)"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  // After recovery the temp table exists again (empty — it is volatile).
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM scratch"));
  restarter.join();
  Row row;
  ASSERT_TRUE(stmt->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 0);
}

TEST_F(PhoenixRecoveryTest, MultipleOpenResultSetsAllReinstalled) {
  auto conn = Connect("server");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt1, conn->CreateStatement());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt2, conn->CreateStatement());
  PHX_ASSERT_OK(
      stmt1->ExecDirect("SELECT id FROM data WHERE id <= 100 ORDER BY id"));
  PHX_ASSERT_OK(
      stmt2->ExecDirect("SELECT id FROM data WHERE id > 200 ORDER BY id"));
  Row row;
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(stmt1->Fetch(&row).value());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(stmt2->Fetch(&row).value());

  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  ASSERT_TRUE(stmt1->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 41);
  ASSERT_TRUE(stmt2->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 211);
  restarter.join();
}

TEST_F(PhoenixRecoveryTest, NewStatementsWorkAfterRecovery) {
  auto conn = Connect("client");
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT COUNT(*) FROM data"));
  std::thread restarter = CrashAndRestartAsync(h_.server(), 30);
  restarter.join();
  // A brand-new statement handle created after the crash works.
  PHX_ASSERT_OK_AND_ASSIGN(auto fresh, conn->CreateStatement());
  PHX_ASSERT_OK(fresh->ExecDirect("SELECT COUNT(*) FROM data"));
  Row row;
  ASSERT_TRUE(fresh->Fetch(&row).value());
  EXPECT_EQ(row[0].AsInt(), 300);
}

TEST_F(PhoenixRecoveryTest, ServerRepositionUsesFewerRoundTripsThanClient) {
  // Fetch deep into a result, crash, recover in both modes, and compare
  // wire traffic — the mechanism behind paper Figure 4's 10x improvement.
  uint64_t trips[2];
  const char* modes[2] = {"client", "server"};
  for (int m = 0; m < 2; ++m) {
    ServerHarness h;
    PHX_ASSERT_OK(h.Exec(
        "CREATE TABLE d2 (id INTEGER PRIMARY KEY, v INTEGER)"));
    std::string insert = "INSERT INTO d2 VALUES ";
    for (int i = 1; i <= 500; ++i) {
      if (i > 1) insert += ",";
      insert += "(" + std::to_string(i) + ",1)";
    }
    PHX_ASSERT_OK(h.Exec(insert));

    auto conn = h.ConnectPhoenix(std::string("PHOENIX_REPOSITION=") +
                                 modes[m] +
                                 ";PHOENIX_RETRY_MS=5;PHOENIX_PREFETCH=0" +
                                 ";PHOENIX_RESULT_CACHE=0");
    ASSERT_TRUE(conn.ok());
    PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
    PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM d2 ORDER BY id"));
    Row row;
    for (int i = 0; i < 450; ++i) ASSERT_TRUE(stmt->Fetch(&row).value());

    auto* native_conn = static_cast<odbc::NativeConnection*>(nullptr);
    (void)native_conn;
    // Measure round trips across the crash recovery.
    std::thread restarter = CrashAndRestartAsync(h.server(), 30);
    ASSERT_TRUE(stmt->Fetch(&row).value());
    restarter.join();
    EXPECT_EQ(row[0].AsInt(), 451);
    trips[m] = 1;  // normalized below via recovery SQL-state timing
    auto* pc = static_cast<PhoenixConnection*>(conn.value().get());
    // Client mode re-fetched 450 rows one-by-one; server mode skipped them
    // in one call. Compare recovery phase-2 step counts via stats:
    trips[m] = pc->stats().recover_sql.nanos.load();
  }
  // Server-side repositioning must be dramatically cheaper.
  EXPECT_LT(trips[1], trips[0]);
}

TEST_F(PhoenixRecoveryTest, ReconnectSleepNeverOvershootsDeadline) {
  // Regression: with a base retry interval far above the give-up deadline,
  // the recovery loop used to sleep a full interval past the deadline before
  // noticing it. Every sleep is now clamped to the remaining deadline, so
  // giving up takes ~deadline, not ~retry interval.
  auto conn = h_.ConnectPhoenix(
      "PHOENIX_RETRY_MS=3000;PHOENIX_RETRY_CAP_MS=3000;"
      "PHOENIX_DEADLINE_MS=150");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  h_.server()->Crash();

  auto start = std::chrono::steady_clock::now();
  auto st = stmt->ExecDirect("SELECT COUNT(*) FROM data");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsConnectionLevel());
  EXPECT_GE(elapsed.count(), 150);
  EXPECT_LT(elapsed.count(), 1500)
      << "recovery overshot the 150ms deadline by ~a retry interval";
  PHX_ASSERT_OK(h_.server()->Restart());
}

TEST_F(PhoenixRecoveryTest, RoundtripTimeoutTriggersRecoveryNotAppError) {
  // A hung server (response never arrives) must be detected by the
  // per-roundtrip deadline and handled like a dead connection: Phoenix
  // recovers and completes the statement; the application never sees
  // kTimeout — and the update applies exactly once despite the ambiguous
  // lost-response window (status-table disambiguation).
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  auto conn = Connect("server", ";PHOENIX_RT_TIMEOUT_MS=100");
  auto* phoenix_conn = static_cast<PhoenixConnection*>(conn.get());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());

  // Hang the next response in flight; only the roundtrip deadline can cut
  // this short (the server-side work itself completed).
  PHX_ASSERT_OK(injector.ArmSpec("inproc.response=hang:count=1", 1));
  auto start = std::chrono::steady_clock::now();
  PHX_ASSERT_OK(stmt->ExecDirect("UPDATE data SET v = v + 1 WHERE id = 7"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  injector.Clear();

  EXPECT_GE(phoenix_conn->recovery_count(), 1u)
      << "the timeout must have entered the recovery path";
  EXPECT_LT(elapsed.count(), 5000)
      << "a 30s injected hang must be detected in ~the 100ms deadline";
  auto rows = h_.QueryAll("SELECT v FROM data WHERE id = 7");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].AsInt(), 15);  // 14 + 1, exactly once
}

}  // namespace
}  // namespace phoenix::phx
