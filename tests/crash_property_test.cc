#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/rng.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "test_util.h"
#include "tpc/tpcc.h"

namespace phoenix {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::ServerHarness;

/// Property-based crash testing: randomized workloads with crashes injected
/// at randomized points. Invariants:
///  P1  every row delivered to the application is delivered exactly once,
///      in order (seamless delivery);
///  P2  an update reported successful is applied exactly once, even when a
///      crash hits during or right after it (testable-state idempotency);
///  P3  recovery is idempotent: back-to-back crashes (including a crash
///      during recovery) never corrupt state.

class CrashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashPropertyTest, ExactlyOnceDeliveryUnderRandomCrashes) {
  common::Rng rng(GetParam());
  ServerHarness h;
  constexpr int kRows = 200;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"));
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 1; i <= kRows; ++i) {
    if (i > 1) insert += ",";
    insert += "(" + std::to_string(i) + ")";
  }
  PHX_ASSERT_OK(h.Exec(insert));

  const char* mode = (GetParam() % 2 == 0) ? "client" : "server";
  // Sweep the delivery fast path too: seed-indexed batch sizes (including
  // the legacy row-at-a-time protocol for the first seeds) so crashes land
  // with piggybacked rows buffered and read-aheads in flight.
  static constexpr uint64_t kBatches[] = {1, 2, 7, 16, 33, 64, 97, 128};
  uint64_t batch = kBatches[GetParam() % 8];
  std::string delivery =
      (GetParam() <= 2) ? ";PHOENIX_PREFETCH=0"
                        : ";PHOENIX_FETCH_BATCH=" + std::to_string(batch);
  auto conn = h.ConnectPhoenix(std::string("PHOENIX_REPOSITION=") + mode +
                               ";PHOENIX_RETRY_MS=5" + delivery);
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));

  // Crash at 2 random positions during delivery.
  int64_t crash_at_1 = rng.Uniform(1, kRows / 2);
  int64_t crash_at_2 = rng.Uniform(kRows / 2 + 1, kRows - 1);

  Row row;
  int64_t delivered = 0;
  while (true) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ++delivered;
    ASSERT_EQ(row[0].AsInt(), delivered) << "seed=" << GetParam();
    if (delivered == crash_at_1 || delivered == crash_at_2) {
      std::thread restarter =
          phoenix::testing::CrashAndRestartAsync(h.server(), 20);
      restarter.join();
    }
  }
  EXPECT_EQ(delivered, kRows) << "seed=" << GetParam();
}

TEST_P(CrashPropertyTest, UpdatesExactlyOnceUnderRandomCrashes) {
  common::Rng rng(GetParam() * 7919 + 13);
  ServerHarness h;
  constexpr int kCounters = 10;
  PHX_ASSERT_OK(h.Exec(
      "CREATE TABLE counters (id INTEGER PRIMARY KEY, n INTEGER)"));
  std::string insert = "INSERT INTO counters VALUES ";
  for (int i = 0; i < kCounters; ++i) {
    if (i > 0) insert += ",";
    insert += "(" + std::to_string(i) + ", 0)";
  }
  PHX_ASSERT_OK(h.Exec(insert));

  auto conn = h.ConnectPhoenix("PHOENIX_RETRY_MS=5");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());

  constexpr int kUpdates = 40;
  int applied[kCounters] = {};
  for (int i = 0; i < kUpdates; ++i) {
    int target = static_cast<int>(rng.Uniform(0, kCounters - 1));
    // ~25% of updates have a crash racing them.
    std::thread restarter;
    if (rng.Uniform(0, 3) == 0) {
      restarter = phoenix::testing::CrashAndRestartAsync(
          h.server(), static_cast<int>(rng.Uniform(1, 20)));
    }
    auto st = stmt->ExecDirect("UPDATE counters SET n = n + 1 WHERE id = " +
                               std::to_string(target));
    if (restarter.joinable()) restarter.join();
    ASSERT_TRUE(st.ok()) << "seed=" << GetParam() << ": " << st.ToString();
    ++applied[target];
  }

  auto rows = h.QueryAll("SELECT id, n FROM counters ORDER BY id");
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    EXPECT_EQ(row[1].AsInt(), applied[row[0].AsInt()])
        << "counter " << row[0].AsInt() << " seed=" << GetParam();
  }
}

TEST_P(CrashPropertyTest, BackToBackCrashesDuringRecovery) {
  common::Rng rng(GetParam() * 31 + 5);
  ServerHarness h;
  PHX_ASSERT_OK(h.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"));
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 1; i <= 100; ++i) {
    if (i > 1) insert += ",";
    insert += "(" + std::to_string(i) + ")";
  }
  PHX_ASSERT_OK(h.Exec(insert));

  auto conn = h.ConnectPhoenix("PHOENIX_RETRY_MS=5;PHOENIX_DEADLINE_MS=15000");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());
  PHX_ASSERT_OK(stmt->ExecDirect("SELECT id FROM t ORDER BY id"));
  Row row;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(stmt->Fetch(&row).value());

  // Flap the server: crash, brief up, crash again while Phoenix is likely
  // mid-recovery, then stay up.
  std::thread flapper([&] {
    h.server()->Crash();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        rng.Uniform(5, 30)));
    h.server()->Restart().ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        rng.Uniform(1, 15)));
    h.server()->Crash();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        rng.Uniform(5, 30)));
    h.server()->Restart().ok();
  });

  int64_t count = 50;
  while (true) {
    auto more = stmt->Fetch(&row);
    ASSERT_TRUE(more.ok()) << "seed=" << GetParam() << ": "
                           << more.status().ToString();
    if (!*more) break;
    ++count;
    ASSERT_EQ(row[0].AsInt(), count) << "seed=" << GetParam();
  }
  flapper.join();
  EXPECT_EQ(count, 100);
}

TEST_P(CrashPropertyTest, BundlesExactlyOnceUnderRandomFaults) {
  // P2 for statement bundles: a bundle whose flush reports success is
  // applied exactly once, with faults rotating across the three distinct
  // windows — before the bundle runs (clean replay), inside the commit
  // window (ledger decides), and after commit with the response lost
  // (ledger lookup must skip re-execution).
  common::Rng rng(GetParam() * 104729 + 71);
  ServerHarness h;
  constexpr int kCounters = 6;
  PHX_ASSERT_OK(h.Exec(
      "CREATE TABLE bcounters (id INTEGER PRIMARY KEY, n INTEGER)"));
  std::string insert = "INSERT INTO bcounters VALUES ";
  for (int i = 0; i < kCounters; ++i) {
    if (i > 0) insert += ",";
    insert += "(" + std::to_string(i) + ", 0)";
  }
  PHX_ASSERT_OK(h.Exec(insert));

  static constexpr const char* kSpecs[] = {
      "server.bundle=crash:count=1",
      "server.commit.pre_status=crash:count=1",
      "server.execute.post=error:code=ConnectionFailed,count=1",
  };
  const char* spec = kSpecs[GetParam() % 3];
  fault::ChaosController chaos(h.server(), std::chrono::milliseconds(15));
  auto& injector = fault::FaultInjector::Global();

  auto conn = h.ConnectPhoenix("PHOENIX_RETRY_MS=5;PHOENIX_RESULT_CACHE=0");
  ASSERT_TRUE(conn.ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn.value()->CreateStatement());

  constexpr int kBundles = 12;
  int applied[kCounters] = {};
  uint64_t armed_crashes = 0;
  const bool crash_spec = std::string(spec).find("=crash") != std::string::npos;
  for (int b = 0; b < kBundles; ++b) {
    int a = static_cast<int>(rng.Uniform(0, kCounters - 1));
    int c = static_cast<int>(rng.Uniform(0, kCounters - 1));
    // ~half the bundles have a one-shot fault armed against them.
    bool armed = rng.Uniform(0, 1) == 0;
    if (armed) {
      PHX_ASSERT_OK(injector.ArmSpec(spec, GetParam() * 131 + b));
      if (crash_spec) ++armed_crashes;
    }
    PHX_ASSERT_OK(stmt->BundleBegin());
    PHX_ASSERT_OK(stmt->BundleAdd(
        "UPDATE bcounters SET n = n + 1 WHERE id = " + std::to_string(a)));
    PHX_ASSERT_OK(stmt->BundleAdd(
        "UPDATE bcounters SET n = n + 1 WHERE id = " + std::to_string(c)));
    auto results = stmt->BundleFlush();
    if (armed) injector.Clear();
    ASSERT_TRUE(results.ok())
        << "seed=" << GetParam() << " bundle=" << b << " spec=" << spec
        << ": " << results.status().ToString();
    for (const auto& r : *results) {
      ASSERT_TRUE(r.status.ok()) << "seed=" << GetParam() << " bundle=" << b;
    }
    ++applied[a];
    ++applied[c];
  }

  // The controller crashes out of line: a flush can finish recovery before
  // its own crash lands. Drain every armed cycle before the audit so the
  // final read never races a pending crash/restart.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while ((chaos.crashes() < armed_crashes || !h.server()->IsUp()) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(h.server()->IsUp()) << "chaos cycle never drained";
  auto rows = h.QueryAll("SELECT id, n FROM bcounters ORDER BY id");
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    EXPECT_EQ(row[1].AsInt(), applied[row[0].AsInt()])
        << "counter " << row[0].AsInt() << " seed=" << GetParam()
        << " spec=" << spec;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/// End-to-end: TPC-C payments through Phoenix with a flapping server. The
/// warehouse/district YTD invariant must hold across every crash — i.e.
/// exactly the committed payments are reflected, none double-applied by
/// Phoenix's retry logic, none lost.
TEST(TpccCrashPropertyTest, MoneyConservedAcrossCrashes) {
  ServerHarness h;
  tpc::TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 20;
  config.items = 50;
  config.initial_orders_per_district = 20;
  tpc::TpccGenerator gen(config);
  ASSERT_TRUE(gen.Load(h.server()).ok());

  auto sum = [&](const std::string& sql) {
    auto rows = h.QueryAll(sql);
    EXPECT_TRUE(rows.ok());
    return rows.ok() ? (*rows)[0][0].AsDouble() : -1.0;
  };
  double w_before = sum("SELECT SUM(w_ytd) FROM warehouse");
  double d_before = sum("SELECT SUM(d_ytd) FROM district");

  auto conn = h.ConnectPhoenix("PHOENIX_RETRY_MS=5");
  ASSERT_TRUE(conn.ok());
  tpc::TpccClient client(conn.value().get(), config, /*seed=*/77);

  std::atomic<bool> stop{false};
  std::thread flapper([&] {
    common::Rng rng(99);
    while (!stop.load()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.Uniform(20, 60)));
      if (stop.load()) break;
      h.server()->Crash();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.Uniform(5, 25)));
      h.server()->Restart().ok();
    }
  });

  int committed = 0;
  for (int i = 0; i < 60; ++i) {
    // Payment either commits (and must be counted) or aborts (and must
    // not). RunTransaction returns kAborted on crash-interrupted txns.
    auto st = client.RunTransaction(tpc::TpccTxnType::kPayment);
    if (st.ok()) {
      ++committed;
    } else {
      ASSERT_TRUE(st.code() == common::StatusCode::kAborted ||
                  st.IsConnectionLevel())
          << st.ToString();
    }
  }
  stop.store(true);
  flapper.join();
  if (!h.server()->IsUp()) {
    ASSERT_TRUE(h.server()->Restart().ok());
  }

  double w_delta = sum("SELECT SUM(w_ytd) FROM warehouse") - w_before;
  double d_delta = sum("SELECT SUM(d_ytd) FROM district") - d_before;
  // Warehouse and district books agree exactly — no lost or doubled money.
  EXPECT_NEAR(w_delta, d_delta, 1e-6);
  EXPECT_GT(committed, 0);
}

/// Engine-level property: after any prefix of committed transactions and a
/// crash, recovery reproduces exactly the committed prefix.
TEST(EngineCrashPropertyTest, CommittedPrefixAlwaysRecovers) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    common::Rng rng(seed);
    ServerHarness h;
    PHX_ASSERT_OK(h.Exec(
        "CREATE TABLE log_t (id INTEGER PRIMARY KEY, batch INTEGER)"));

    int64_t committed_rows = 0;
    int64_t next_id = 1;
    int batches = static_cast<int>(rng.Uniform(2, 6));
    for (int b = 0; b < batches; ++b) {
      int rows = static_cast<int>(rng.Uniform(1, 30));
      std::string insert = "INSERT INTO log_t VALUES ";
      for (int i = 0; i < rows; ++i) {
        if (i > 0) insert += ",";
        insert += "(" + std::to_string(next_id++) + "," + std::to_string(b) +
                  ")";
      }
      PHX_ASSERT_OK(h.Exec(insert));
      committed_rows += rows;
      if (rng.Uniform(0, 1) == 0) {
        h.server()->Crash();
        PHX_ASSERT_OK(h.server()->Restart());
      }
    }
    auto rows = h.QueryAll("SELECT COUNT(*) FROM log_t");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ((*rows)[0][0].AsInt(), committed_rows) << "seed=" << seed;
  }
}

/// Group-commit flavor of P2 at the engine boundary: concurrent committers
/// racing randomized failures of the shared group force. Whatever each
/// committer was told must match post-recovery state — acknowledged rows
/// present, failed rows absent (no false acks, no resurrections).
TEST(EngineCrashPropertyTest, GroupForceFaultOutcomesMatchRecovery) {
  auto& injector = fault::FaultInjector::Global();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    injector.Clear();
    common::Rng rng(seed);
    ServerHarness h;
    PHX_ASSERT_OK(h.Exec("CREATE TABLE gc_t (id INTEGER PRIMARY KEY)"));

    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    uint64_t after = rng.Uniform(5, 40);
    uint64_t count = rng.Uniform(1, 4);
    PHX_ASSERT_OK(injector.ArmSpec(
        "wal.group_force=error:code=IoError,after=" + std::to_string(after) +
            ",count=" + std::to_string(count),
        seed));

    // ok[w][i] = did committer w's i-th INSERT report success?
    std::vector<std::vector<bool>> ok(kThreads,
                                      std::vector<bool>(kPerThread, false));
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        auto conn = h.ConnectNative();
        if (!conn.ok()) return;
        auto stmt = conn.value()->CreateStatement();
        if (!stmt.ok()) return;
        for (int i = 0; i < kPerThread; ++i) {
          ok[w][i] = stmt.value()
                         ->ExecDirect("INSERT INTO gc_t VALUES (" +
                                      std::to_string(w * 1000 + i) + ")")
                         .ok();
        }
      });
    }
    for (auto& w : workers) w.join();
    injector.Clear();

    h.server()->Crash();
    PHX_ASSERT_OK(h.server()->Restart());

    auto rows = h.QueryAll("SELECT id FROM gc_t ORDER BY id");
    ASSERT_TRUE(rows.ok());
    std::set<int64_t> present;
    for (const Row& r : *rows) present.insert(r[0].AsInt());
    for (int w = 0; w < kThreads; ++w) {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_EQ(present.count(w * 1000 + i) == 1, ok[w][i])
            << "seed=" << seed << ": commit (" << w << "," << i
            << ") reported " << (ok[w][i] ? "OK" : "failure") << " but is "
            << (present.count(w * 1000 + i) ? "present" : "absent")
            << " after recovery";
      }
    }
  }
}

}  // namespace
}  // namespace phoenix
