#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "fault/fault.h"
#include "test_util.h"

namespace phoenix::engine {
namespace {

using common::Row;
using common::Schema;
using common::Status;
using common::Value;
using common::ValueType;
using phoenix::testing::TempDir;

std::unique_ptr<Database> OpenDb(const std::string& dir, WalSyncMode sync,
                                 int group_commit, int64_t wait_us = 0) {
  DatabaseOptions options;
  options.data_dir = dir;
  options.sync_mode = sync;
  options.lock_timeout = std::chrono::milliseconds(500);
  options.group_commit = group_commit;
  options.group_commit_wait_us = wait_us;
  auto db = Database::Open(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

TablePtr MakeIdTable(Database* db) {
  Schema schema({{"id", ValueType::kInt, false}});
  Transaction* txn = db->Begin(0);
  EXPECT_TRUE(
      db->CreateTable(txn, "t", schema, {"id"}, false, false, 0).ok());
  EXPECT_TRUE(db->Commit(txn).ok());
  return db->ResolveTable("t", 0).value();
}

/// One row, one transaction, one commit.
Status CommitOne(Database* db, const TablePtr& t, int64_t id) {
  Transaction* txn = db->Begin(0);
  Status st = db->InsertRow(txn, t, {Value::Int(id)});
  if (!st.ok()) {
    db->Rollback(txn).ok();
    return st;
  }
  return db->Commit(txn);
}

void Reboot(Database* db) {
  db->CrashVolatile();
  ASSERT_TRUE(db->Recover().ok());
}

TEST(GroupCommitTest, MultiThreadedCommitsAllDurable) {
  TempDir dir;
  auto db = OpenDb(dir.path(), WalSyncMode::kFlush, /*group_commit=*/1);
  TablePtr t = MakeIdTable(db.get());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!CommitOne(db.get(), t, w * 100000 + i).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  // +1 for the CREATE TABLE commit.
  EXPECT_EQ(db->group_commit().commits(), 1u + kThreads * kPerThread);
  EXPECT_LE(db->group_commit().forces(), db->group_commit().commits());

  Reboot(db.get());
  TablePtr t2 = db->ResolveTable("t", 0).value();
  EXPECT_EQ(t2->live_row_count(), size_t{kThreads} * kPerThread);
  for (int w = 0; w < kThreads; ++w) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(t2->LookupPk({Value::Int(w * 100000 + i)}).ok())
          << "row " << w << "/" << i;
    }
  }
}

TEST(GroupCommitTest, GroupsFormWhileLeaderForces) {
  TempDir dir;
  // Real fsyncs make the force slow enough that followers pile up behind the
  // leader — the natural grouping mechanism, no wait window configured.
  auto db = OpenDb(dir.path(), WalSyncMode::kSync, /*group_commit=*/1);
  TablePtr t = MakeIdTable(db.get());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(CommitOne(db.get(), t, w * 100000 + i).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(db->group_commit().commits(), 1u + kThreads * kPerThread);
  // At least one force must have covered more than one commit.
  EXPECT_LT(db->group_commit().forces(), db->group_commit().commits());

  Reboot(db.get());
  EXPECT_EQ(db->ResolveTable("t", 0).value()->live_row_count(),
            size_t{kThreads} * kPerThread);
}

TEST(GroupCommitTest, LeaderWaitWindowGroupsCommitters) {
  TempDir dir;
  auto db = OpenDb(dir.path(), WalSyncMode::kFlush, /*group_commit=*/1,
                   /*wait_us=*/30000);
  TablePtr t = MakeIdTable(db.get());
  uint64_t forces_before = db->group_commit().forces();

  // Six committers started together: the first becomes leader and lingers
  // 30 ms, far longer than thread startup skew, so the rest join its group.
  constexpr int kThreads = 6;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back(
        [&, w] { EXPECT_TRUE(CommitOne(db.get(), t, w).ok()); });
  }
  for (auto& w : workers) w.join();
  EXPECT_LT(db->group_commit().forces() - forces_before,
            static_cast<uint64_t>(kThreads));
}

TEST(GroupCommitTest, EscapeHatchSerializesEveryCommit) {
  TempDir dir;
  auto db = OpenDb(dir.path(), WalSyncMode::kFlush, /*group_commit=*/0);
  TablePtr t = MakeIdTable(db.get());

  constexpr int kThreads = 3;
  constexpr int kPerThread = 10;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(CommitOne(db.get(), t, w * 100000 + i).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  // PHOENIX_GROUP_COMMIT=0 reproduces the serialized path: one force per
  // commit, never fewer.
  EXPECT_EQ(db->group_commit().commits(), 1u + kThreads * kPerThread);
  EXPECT_EQ(db->group_commit().forces(), db->group_commit().commits());

  Reboot(db.get());
  EXPECT_EQ(db->ResolveTable("t", 0).value()->live_row_count(),
            size_t{kThreads} * kPerThread);
}

/// Satellite regression (TSan target): committers racing a checkpoint loop.
/// Exercises the committed-but-unfinished window — a transaction whose WAL
/// batch is durable but which is still in the active set must make any
/// concurrent checkpoint abort (conservative), never be lost. Run under
/// ThreadSanitizer in scripts/ci.sh.
TEST(GroupCommitTest, CommittersAndCheckpointLoopRaceCleanly) {
  TempDir dir;
  auto db = OpenDb(dir.path(), WalSyncMode::kFlush, /*group_commit=*/1);
  TablePtr t = MakeIdTable(db.get());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> checkpoints_ok{0};
  std::thread checkpointer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      // Almost always aborts (committers active) — that abort must stay
      // race-free against commits finishing.
      if (db->Checkpoint().ok()) checkpoints_ok.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(CommitOne(db.get(), t, w * 100000 + i).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true);
  checkpointer.join();

  // Whatever mix of checkpoints and commits interleaved, recovery must
  // reproduce every acknowledged commit.
  Reboot(db.get());
  EXPECT_EQ(db->ResolveTable("t", 0).value()->live_row_count(),
            size_t{kThreads} * kPerThread);
}

/// A fault at the group force fails the WHOLE group, and every waiter's
/// reported outcome must match post-recovery state: acknowledged commits are
/// present, failed commits are absent (no false acks, no resurrections).
TEST(GroupCommitTest, GroupForceFaultOutcomesMatchRecovery) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  auto db = OpenDb(dir.path(), WalSyncMode::kSync, /*group_commit=*/1);
  TablePtr t = MakeIdTable(db.get());

  // Fire three times somewhere in the middle of the run, on whole groups.
  PHX_ASSERT_OK(injector.ArmSpec(
      "wal.group_force=error:code=IoError,after=10,count=3", 42));

  constexpr int kThreads = 6;
  constexpr int kPerThread = 20;
  // ok[w][i] = did commit (w, i) report success?
  std::vector<std::vector<bool>> ok(kThreads,
                                    std::vector<bool>(kPerThread, false));
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        ok[w][i] = CommitOne(db.get(), t, w * 100000 + i).ok();
      }
    });
  }
  for (auto& w : workers) w.join();
  injector.Clear();
  EXPECT_GE(injector.fires("wal.group_force"), 1u);

  Reboot(db.get());
  TablePtr t2 = db->ResolveTable("t", 0).value();
  size_t acked = 0;
  for (int w = 0; w < kThreads; ++w) {
    for (int i = 0; i < kPerThread; ++i) {
      bool present = t2->LookupPk({Value::Int(w * 100000 + i)}).ok();
      EXPECT_EQ(present, ok[w][i])
          << "commit (" << w << "," << i << ") reported "
          << (ok[w][i] ? "OK" : "failure") << " but is "
          << (present ? "present" : "absent") << " after recovery";
      if (ok[w][i]) ++acked;
    }
  }
  EXPECT_EQ(t2->live_row_count(), acked);
  EXPECT_LT(acked, size_t{kThreads} * kPerThread);  // some really failed
}

/// The checkpoint lost-transaction race, group-commit flavor: a commit that
/// lands while a checkpoint is writing its snapshot must survive recovery.
TEST(GroupCommitTest, CommitDuringCheckpointWindowSurvives) {
  auto& injector = fault::FaultInjector::Global();
  injector.Clear();
  TempDir dir;
  auto db = OpenDb(dir.path(), WalSyncMode::kFlush, /*group_commit=*/1);
  TablePtr t = MakeIdTable(db.get());
  PHX_ASSERT_OK(CommitOne(db.get(), t, 1));

  // Stall the checkpoint's file write so a commit can try to slip into the
  // snapshot → truncate window.
  PHX_ASSERT_OK(
      injector.ArmSpec("checkpoint.write=delay:delay_ms=150,count=1", 7));
  Status ckpt_status;
  std::thread checkpointer([&] { ckpt_status = db->Checkpoint(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  PHX_ASSERT_OK(CommitOne(db.get(), t, 2));
  checkpointer.join();
  injector.Clear();
  PHX_ASSERT_OK(ckpt_status);

  Reboot(db.get());
  TablePtr t2 = db->ResolveTable("t", 0).value();
  EXPECT_TRUE(t2->LookupPk({Value::Int(1)}).ok());
  EXPECT_TRUE(t2->LookupPk({Value::Int(2)}).ok())
      << "commit that raced the checkpoint window was durably lost";
}

}  // namespace
}  // namespace phoenix::engine
