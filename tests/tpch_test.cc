#include <gtest/gtest.h>

#include "test_util.h"
#include "tpc/tpch.h"

namespace phoenix::tpc {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::ServerHarness;

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness_ = new ServerHarness();
    TpchConfig config;
    config.scale_factor = 0.002;
    generator_ = new TpchGenerator(config);
    auto st = generator_->Load(harness_->server());
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete harness_;
    generator_ = nullptr;
    harness_ = nullptr;
  }

  int64_t Count(const std::string& table) {
    auto rows = harness_->QueryAll("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? (*rows)[0][0].AsInt() : -1;
  }

  static ServerHarness* harness_;
  static TpchGenerator* generator_;
};

ServerHarness* TpchTest::harness_ = nullptr;
TpchGenerator* TpchTest::generator_ = nullptr;

TEST_F(TpchTest, CardinalitiesScale) {
  EXPECT_EQ(Count("region"), 5);
  EXPECT_EQ(Count("nation"), 25);
  EXPECT_EQ(Count("supplier"), generator_->SupplierCount());
  EXPECT_EQ(Count("part"), generator_->PartCount());
  EXPECT_EQ(Count("partsupp"), generator_->PartCount() * 4);
  EXPECT_EQ(Count("customer"), generator_->CustomerCount());
  EXPECT_EQ(Count("orders"), generator_->OrderCount());
  // 1..7 lineitems per order.
  int64_t lineitems = Count("lineitem");
  EXPECT_GE(lineitems, generator_->OrderCount());
  EXPECT_LE(lineitems, generator_->OrderCount() * 7);
}

TEST_F(TpchTest, ReferentialIntegrity) {
  // Every lineitem points at an existing order and part.
  auto orphans = harness_->QueryAll(
      "SELECT COUNT(*) FROM lineitem WHERE l_orderkey NOT IN "
      "(SELECT o_orderkey FROM orders)");
  ASSERT_TRUE(orphans.ok());
  EXPECT_EQ((*orphans)[0][0].AsInt(), 0);

  auto bad_parts = harness_->QueryAll(
      "SELECT COUNT(*) FROM lineitem WHERE l_partkey NOT IN "
      "(SELECT p_partkey FROM part)");
  ASSERT_TRUE(bad_parts.ok());
  EXPECT_EQ((*bad_parts)[0][0].AsInt(), 0);
}

TEST_F(TpchTest, ValueDomains) {
  auto sizes = harness_->QueryAll(
      "SELECT MIN(p_size), MAX(p_size) FROM part");
  ASSERT_TRUE(sizes.ok());
  EXPECT_GE((*sizes)[0][0].AsInt(), 1);
  EXPECT_LE((*sizes)[0][1].AsInt(), 50);

  auto discounts = harness_->QueryAll(
      "SELECT MIN(l_discount), MAX(l_discount) FROM lineitem");
  ASSERT_TRUE(discounts.ok());
  EXPECT_GE((*discounts)[0][0].AsDouble(), 0.0);
  EXPECT_LE((*discounts)[0][1].AsDouble(), 0.10001);

  // A third of customers never order (Q13/Q22 depend on this).
  auto no_orders = harness_->QueryAll(
      "SELECT COUNT(*) FROM customer WHERE c_custkey NOT IN "
      "(SELECT o_custkey FROM orders)");
  ASSERT_TRUE(no_orders.ok());
  EXPECT_GT((*no_orders)[0][0].AsInt(), 0);
}

TEST_F(TpchTest, DeterministicForSeed) {
  TpchConfig config;
  config.scale_factor = 0.001;
  ServerHarness h1, h2;
  TpchGenerator g1(config), g2(config);
  ASSERT_TRUE(g1.Load(h1.server()).ok());
  ASSERT_TRUE(g2.Load(h2.server()).ok());
  auto r1 = h1.QueryAll("SELECT SUM(l_extendedprice) FROM lineitem");
  auto r2 = h2.QueryAll("SELECT SUM(l_extendedprice) FROM lineitem");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r1)[0][0].AsDouble(), (*r2)[0][0].AsDouble());
}

// Every one of the 22 query templates must plan and execute.
class TpchQueryTest : public TpchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryTest, ExecutesAndProducesPlausibleShape) {
  int q = GetParam();
  std::string sql = TpchQuery(q, /*q11_fraction=*/0.0005);
  ASSERT_FALSE(sql.empty());
  auto rows = harness_->QueryAll(sql);
  ASSERT_TRUE(rows.ok()) << "Q" << q << ": " << rows.status().ToString();

  // Single-value aggregate queries must return exactly one row.
  if (q == 6 || q == 14 || q == 17 || q == 19) {
    EXPECT_EQ(rows->size(), 1u) << "Q" << q;
  }
  // Q1 groups by (returnflag, linestatus): at most 6 combinations.
  if (q == 1) {
    EXPECT_GE(rows->size(), 1u);
    EXPECT_LE(rows->size(), 6u);
  }
  // TOP-bounded queries.
  if (q == 2) {
    EXPECT_LE(rows->size(), 100u);
  }
  if (q == 3) {
    EXPECT_LE(rows->size(), 10u);
  }
  if (q == 10) {
    EXPECT_LE(rows->size(), 20u);
  }
  if (q == 18) {
    EXPECT_LE(rows->size(), 100u);
  }
  if (q == 21) {
    EXPECT_LE(rows->size(), 100u);
  }
}

INSTANTIATE_TEST_SUITE_P(All22, TpchQueryTest, ::testing::Range(1, 23));

TEST_F(TpchTest, Q1AggregatesAreInternallyConsistent) {
  auto rows = harness_->QueryAll(TpchQuery(1));
  ASSERT_TRUE(rows.ok());
  for (const Row& row : *rows) {
    double sum_base = row[3].AsDouble();
    double sum_disc = row[4].AsDouble();
    double sum_charge = row[5].AsDouble();
    int64_t count = row[9].AsInt();
    EXPECT_GT(count, 0);
    EXPECT_LE(sum_disc, sum_base);      // discount reduces price
    EXPECT_GE(sum_charge, sum_disc);    // tax increases it
  }
}

TEST_F(TpchTest, Q11FractionControlsResultSize) {
  auto tiny = harness_->QueryAll(TpchQuery(11, 0.05));
  auto small = harness_->QueryAll(TpchQuery(11, 0.001));
  auto large = harness_->QueryAll(TpchQuery(11, 0.0));
  ASSERT_TRUE(tiny.ok());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LE(tiny->size(), small->size());
  EXPECT_LE(small->size(), large->size());
  EXPECT_GT(large->size(), 0u);
  // Result is ordered by value DESC.
  for (size_t i = 1; i < large->size(); ++i) {
    EXPECT_GE((*large)[i - 1][1].AsDouble(), (*large)[i][1].AsDouble());
  }
}

TEST_F(TpchTest, RefreshFunctionsInsertThenDelete) {
  ServerHarness h;
  TpchConfig config;
  config.scale_factor = 0.002;
  TpchGenerator gen(config);
  ASSERT_TRUE(gen.Load(h.server()).ok());

  auto count_orders = [&]() {
    return (*h.QueryAll("SELECT COUNT(*) FROM orders"))[0][0].AsInt();
  };
  int64_t before = count_orders();

  // RF1: two transactions, two statements each.
  auto rf1 = gen.Rf1Transactions();
  ASSERT_EQ(rf1.size(), 2u);
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  for (const auto& txn : rf1) {
    ASSERT_EQ(txn.size(), 2u);
    PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
    for (const auto& sql : txn) PHX_ASSERT_OK(stmt->ExecDirect(sql));
    PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  }
  int64_t after_rf1 = count_orders();
  EXPECT_EQ(after_rf1 - before, gen.RfOrderCount());

  // RF2 removes what RF1 added.
  for (const auto& txn : gen.Rf2Transactions()) {
    PHX_ASSERT_OK(stmt->ExecDirect("BEGIN TRANSACTION"));
    for (const auto& sql : txn) PHX_ASSERT_OK(stmt->ExecDirect(sql));
    PHX_ASSERT_OK(stmt->ExecDirect("COMMIT"));
  }
  EXPECT_EQ(count_orders(), before);
}

TEST_F(TpchTest, Rf2WithoutPendingRf1DeletesBaseOrders) {
  ServerHarness h;
  TpchConfig config;
  config.scale_factor = 0.001;
  TpchGenerator gen(config);
  ASSERT_TRUE(gen.Load(h.server()).ok());
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h.ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto stmt, conn->CreateStatement());
  int64_t before =
      (*h.QueryAll("SELECT COUNT(*) FROM orders"))[0][0].AsInt();
  for (const auto& txn : gen.Rf2Transactions()) {
    for (const auto& sql : txn) PHX_ASSERT_OK(stmt->ExecDirect(sql));
  }
  int64_t after = (*h.QueryAll("SELECT COUNT(*) FROM orders"))[0][0].AsInt();
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace phoenix::tpc
