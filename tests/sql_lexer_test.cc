#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace phoenix::sql {
namespace {

std::vector<Token> MustTokenize(const std::string& sql) {
  auto result = Tokenize(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEndToken) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsNormalizedUpperCase) {
  auto tokens = MustTokenize("select From WHERE");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
}

TEST(LexerTest, IdentifiersPreserveSpelling) {
  auto tokens = MustTokenize("LineItem l_orderkey");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "LineItem");
  EXPECT_EQ(tokens[1].text, "l_orderkey");
}

TEST(LexerTest, FunctionNamesAreIdentifiers) {
  auto tokens = MustTokenize("SUM COUNT AVG MIN MAX");
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier) << i;
  }
}

TEST(LexerTest, QuotedIdentifiers) {
  auto tokens = MustTokenize("\"weird name\" [bracketed]");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird name");
  EXPECT_EQ(tokens[1].text, "bracketed");
}

TEST(LexerTest, UnterminatedQuotedIdentifierFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, IntLiterals) {
  auto tokens = MustTokenize("0 42 123456789");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 123456789);
}

TEST(LexerTest, FloatLiterals) {
  auto tokens = MustTokenize("1.5 .25 2e3 7E-2");
  EXPECT_EQ(tokens[0].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.07);
}

TEST(LexerTest, IdentifierStartingWithEAfterNumber) {
  // "2e" with no exponent digits: "2" then identifier "e".
  auto tokens = MustTokenize("2ex");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "ex");
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = MustTokenize("'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Parameters) {
  auto tokens = MustTokenize("@T @foo_bar");
  EXPECT_EQ(tokens[0].type, TokenType::kParam);
  EXPECT_EQ(tokens[0].text, "T");
  EXPECT_EQ(tokens[1].text, "foo_bar");
}

TEST(LexerTest, BareAtSignFails) {
  EXPECT_FALSE(Tokenize("@ x").ok());
}

TEST(LexerTest, MultiCharSymbols) {
  auto tokens = MustTokenize("<= >= <> != ||");
  EXPECT_TRUE(tokens[0].IsSymbol("<="));
  EXPECT_TRUE(tokens[1].IsSymbol(">="));
  EXPECT_TRUE(tokens[2].IsSymbol("<>"));
  EXPECT_TRUE(tokens[3].IsSymbol("!="));
  EXPECT_TRUE(tokens[4].IsSymbol("||"));
}

TEST(LexerTest, SingleCharSymbols) {
  auto tokens = MustTokenize("( ) , . ; * + - / % = < >");
  const char* expected[] = {"(", ")", ",", ".", ";", "*", "+",
                            "-", "/", "%", "=", "<", ">"};
  for (size_t i = 0; i < 13; ++i) {
    EXPECT_TRUE(tokens[i].IsSymbol(expected[i])) << i;
  }
}

TEST(LexerTest, LineComments) {
  auto tokens = MustTokenize("SELECT -- comment here\n 1");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, BlockComments) {
  auto tokens = MustTokenize("SELECT /* multi\nline */ 1");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_EQ(tokens[1].type, TokenType::kIntLiteral);
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Tokenize("SELECT /* oops").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  auto result = Tokenize("SELECT $");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("$"), std::string::npos);
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = MustTokenize("SELECT a");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 7u);
}

TEST(LexerTest, WhereZeroEqualsOneProbe) {
  // The exact token sequence Phoenix appends for the metadata probe.
  auto tokens = MustTokenize("WHERE 0=1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("WHERE"));
  EXPECT_EQ(tokens[1].int_value, 0);
  EXPECT_TRUE(tokens[2].IsSymbol("="));
  EXPECT_EQ(tokens[3].int_value, 1);
}

TEST(LexerTest, ReservedKeywordPredicate) {
  EXPECT_TRUE(IsReservedKeyword("SELECT"));
  EXPECT_TRUE(IsReservedKeyword("TEMP"));
  EXPECT_FALSE(IsReservedKeyword("SUM"));
  EXPECT_FALSE(IsReservedKeyword("select"));  // must be upper-cased already
}

class LexerRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LexerRoundTripTest, RealQueriesTokenize) {
  auto result = Tokenize(GetParam());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Statements, LexerRoundTripTest,
    ::testing::Values(
        "SELECT * FROM t WHERE a = 1 AND b <> 'x'",
        "INSERT INTO t (a, b) VALUES (1, 'two'), (3, 'four')",
        "UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2",
        "DELETE FROM t WHERE a IN (1, 2, 3)",
        "CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(40) NOT NULL)",
        "CREATE PROCEDURE p (@x INTEGER) AS SELECT @x",
        "EXEC sys_advance_cursor 5, 100",
        "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t"));

}  // namespace
}  // namespace phoenix::sql
