#include <gtest/gtest.h>

#include "odbc/capi.h"
#include "test_util.h"

namespace phoenix::odbc::capi {
namespace {

using phoenix::testing::ServerHarness;

/// The classic ODBC calling sequence, driven through the C-style shim. The
/// paper's transparency claim, verbatim: the same application code runs
/// over the native and the Phoenix driver, switched by DRIVER= alone.
class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = std::make_unique<ServerHarness>();
    PHX_ASSERT_OK(h_->Exec(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR)"));
    PHX_ASSERT_OK(h_->Exec(
        "INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'c')"));
    SetProcessDriverManager(&h_->dm());
  }
  void TearDown() override { ResetAllHandlesForTesting(); }

  std::unique_ptr<ServerHarness> h_;
};

TEST_F(CapiTest, HandleLifecycle) {
  SQLHANDLE env = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  SQLHANDLE dbc = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  // Freeing a parent before its children is an error.
  EXPECT_EQ(SQLFreeHandle(SQL_HANDLE_ENV, env), SQL_ERROR);
  EXPECT_EQ(SQLFreeHandle(SQL_HANDLE_DBC, dbc), SQL_SUCCESS);
  EXPECT_EQ(SQLFreeHandle(SQL_HANDLE_ENV, env), SQL_SUCCESS);
  EXPECT_EQ(SQLFreeHandle(SQL_HANDLE_ENV, env), SQL_INVALID_HANDLE);
}

TEST_F(CapiTest, StatementRequiresConnection) {
  SQLHANDLE env = 0, dbc = 0, stmt = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  EXPECT_EQ(SQLAllocHandle(SQL_HANDLE_STMT, dbc, &stmt), SQL_ERROR);
}

/// The same application routine, parameterized only by DRIVER=.
class CapiDriverTest : public CapiTest,
                       public ::testing::WithParamInterface<const char*> {};

TEST_P(CapiDriverTest, FullQueryCycle) {
  std::string conn_str = std::string("DRIVER=") + GetParam() + ";UID=app";

  SQLHANDLE env = 0, dbc = 0, stmt = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  ASSERT_EQ(SQLDriverConnect(dbc, conn_str.c_str()), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_STMT, dbc, &stmt), SQL_SUCCESS);

  ASSERT_EQ(SQLExecDirect(stmt, "SELECT id, name FROM t ORDER BY id"),
            SQL_SUCCESS);

  SQLSMALLINT cols = 0;
  ASSERT_EQ(SQLNumResultCols(stmt, &cols), SQL_SUCCESS);
  EXPECT_EQ(cols, 2);

  char name[32];
  common::ValueType type;
  SQLSMALLINT nullable;
  ASSERT_EQ(SQLDescribeCol(stmt, 1, name, sizeof(name), &type, &nullable),
            SQL_SUCCESS);
  EXPECT_STREQ(name, "id");
  EXPECT_EQ(type, common::ValueType::kInt);

  int fetched = 0;
  while (SQLFetch(stmt) == SQL_SUCCESS) {
    common::Value id, label;
    ASSERT_EQ(SQLGetData(stmt, 1, &id), SQL_SUCCESS);
    ASSERT_EQ(SQLGetData(stmt, 2, &label), SQL_SUCCESS);
    ++fetched;
    EXPECT_EQ(id.AsInt(), fetched);
  }
  EXPECT_EQ(fetched, 3);

  ASSERT_EQ(SQLCloseCursor(stmt), SQL_SUCCESS);

  ASSERT_EQ(SQLExecDirect(stmt, "UPDATE t SET name = 'x' WHERE id > 1"),
            SQL_SUCCESS);
  SQLLEN affected = 0;
  ASSERT_EQ(SQLRowCount(stmt, &affected), SQL_SUCCESS);
  EXPECT_EQ(affected, 2);

  ASSERT_EQ(SQLFreeHandle(SQL_HANDLE_STMT, stmt), SQL_SUCCESS);
  ASSERT_EQ(SQLDisconnect(dbc), SQL_SUCCESS);
  ASSERT_EQ(SQLFreeHandle(SQL_HANDLE_DBC, dbc), SQL_SUCCESS);
  ASSERT_EQ(SQLFreeHandle(SQL_HANDLE_ENV, env), SQL_SUCCESS);
}

INSTANTIATE_TEST_SUITE_P(NativeAndPhoenix, CapiDriverTest,
                         ::testing::Values("native", "phoenix"));

TEST_F(CapiTest, DiagnosticsForStatementError) {
  SQLHANDLE env = 0, dbc = 0, stmt = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  ASSERT_EQ(SQLDriverConnect(dbc, "DRIVER=native;UID=app"), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_STMT, dbc, &stmt), SQL_SUCCESS);

  EXPECT_EQ(SQLExecDirect(stmt, "SELECT * FROM nope"), SQL_ERROR);
  char message[128];
  common::StatusCode code;
  ASSERT_EQ(SQLGetDiagRec(SQL_HANDLE_STMT, stmt, 1, message, sizeof(message),
                          &code),
            SQL_SUCCESS);
  EXPECT_EQ(code, common::StatusCode::kNotFound);
  EXPECT_NE(std::string(message).find("nope"), std::string::npos);
}

TEST_F(CapiTest, DiagRecNoDataWhenClean) {
  SQLHANDLE env = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  EXPECT_EQ(SQLGetDiagRec(SQL_HANDLE_ENV, env, 1, nullptr, 0, nullptr),
            SQL_NO_DATA);
}

TEST_F(CapiTest, ConnectFailureDiagnostics) {
  SQLHANDLE env = 0, dbc = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  EXPECT_EQ(SQLDriverConnect(dbc, "DRIVER=missing;UID=app"), SQL_ERROR);
  common::StatusCode code;
  ASSERT_EQ(SQLGetDiagRec(SQL_HANDLE_DBC, dbc, 1, nullptr, 0, &code),
            SQL_SUCCESS);
  EXPECT_EQ(code, common::StatusCode::kNotFound);
}

TEST_F(CapiTest, RowArraySizeAttribute) {
  SQLHANDLE env = 0, dbc = 0, stmt = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  ASSERT_EQ(SQLDriverConnect(dbc, "DRIVER=native;UID=app"), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_STMT, dbc, &stmt), SQL_SUCCESS);
  EXPECT_EQ(SQLSetStmtAttr(stmt, SQL_ATTR_ROW_ARRAY_SIZE, 64), SQL_SUCCESS);
  EXPECT_EQ(SQLSetStmtAttr(stmt, SQL_ATTR_ROW_ARRAY_SIZE, 0), SQL_ERROR);
  EXPECT_EQ(SQLSetStmtAttr(stmt, 999, 1), SQL_ERROR);
}

TEST_F(CapiTest, GetDataOutsideFetchedRowFails) {
  SQLHANDLE env = 0, dbc = 0, stmt = 0;
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_ENV, 0, &env), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, env, &dbc), SQL_SUCCESS);
  ASSERT_EQ(SQLDriverConnect(dbc, "DRIVER=native;UID=app"), SQL_SUCCESS);
  ASSERT_EQ(SQLAllocHandle(SQL_HANDLE_STMT, dbc, &stmt), SQL_SUCCESS);
  ASSERT_EQ(SQLExecDirect(stmt, "SELECT id FROM t"), SQL_SUCCESS);
  common::Value v;
  EXPECT_EQ(SQLGetData(stmt, 1, &v), SQL_ERROR);  // before first SQLFetch
  ASSERT_EQ(SQLFetch(stmt), SQL_SUCCESS);
  EXPECT_EQ(SQLGetData(stmt, 1, &v), SQL_SUCCESS);
  EXPECT_EQ(SQLGetData(stmt, 9, &v), SQL_ERROR);  // out-of-range column
}

TEST_F(CapiTest, InvalidHandlesRejected) {
  EXPECT_EQ(SQLExecDirect(9999, "SELECT 1"), SQL_INVALID_HANDLE);
  EXPECT_EQ(SQLFetch(9999), SQL_INVALID_HANDLE);
  EXPECT_EQ(SQLDisconnect(9999), SQL_INVALID_HANDLE);
  SQLHANDLE out = 0;
  EXPECT_EQ(SQLAllocHandle(SQL_HANDLE_DBC, 9999, &out), SQL_INVALID_HANDLE);
}

}  // namespace
}  // namespace phoenix::odbc::capi
