#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sql/parser.h"
#include "test_util.h"
#include "tpc/tpcc.h"

namespace phoenix::tpc {
namespace {

using common::Row;
using common::Value;
using phoenix::testing::ServerHarness;

TpccConfig SmallConfig() {
  TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 30;
  return config;
}

class TpccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::ServerOptions options;
    options.db.lock_timeout = std::chrono::milliseconds(300);
    h_ = std::make_unique<ServerHarness>(options);
    config_ = SmallConfig();
    TpccGenerator gen(config_);
    auto st = gen.Load(h_->server());
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  int64_t Count(const std::string& table) {
    auto rows = h_->QueryAll("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? (*rows)[0][0].AsInt() : -1;
  }

  std::unique_ptr<ServerHarness> h_;
  TpccConfig config_;
};

TEST_F(TpccTest, LoadCardinalities) {
  EXPECT_EQ(Count("warehouse"), 1);
  EXPECT_EQ(Count("district"), 2);
  EXPECT_EQ(Count("customer"), 60);
  EXPECT_EQ(Count("item"), 100);
  EXPECT_EQ(Count("stock"), 100);
  EXPECT_EQ(Count("orders"), 60);
  // 30% of initial orders are undelivered.
  EXPECT_EQ(Count("new_order"), 18);
}

TEST_F(TpccTest, NewOrderCreatesRowsAndAdvancesDistrict) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/1);
  int64_t orders_before = Count("orders");
  auto next_before = h_->QueryAll("SELECT SUM(d_next_o_id) FROM district");

  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kNewOrder));

  EXPECT_EQ(Count("orders"), orders_before + 1);
  EXPECT_EQ(Count("new_order"), 19);
  auto next_after = h_->QueryAll("SELECT SUM(d_next_o_id) FROM district");
  EXPECT_EQ((*next_after)[0][0].AsInt(), (*next_before)[0][0].AsInt() + 1);
  // Order lines exist for the new order.
  EXPECT_GT(Count("order_line"), 0);
}

TEST_F(TpccTest, PaymentMovesMoney) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/2);
  auto ytd_before = h_->QueryAll("SELECT w_ytd FROM warehouse WHERE w_id=1");
  int64_t history_before = Count("history");

  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kPayment));

  auto ytd_after = h_->QueryAll("SELECT w_ytd FROM warehouse WHERE w_id=1");
  EXPECT_GT((*ytd_after)[0][0].AsDouble(), (*ytd_before)[0][0].AsDouble());
  EXPECT_EQ(Count("history"), history_before + 1);
}

TEST_F(TpccTest, OrderStatusIsReadOnly) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/3);
  int64_t orders = Count("orders");
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kOrderStatus));
  EXPECT_EQ(Count("orders"), orders);
}

TEST_F(TpccTest, DeliveryDrainsNewOrders) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/4);
  int64_t pending = Count("new_order");
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kDelivery));
  // One order delivered per district with pending orders.
  EXPECT_EQ(Count("new_order"), pending - 2);
}

TEST_F(TpccTest, StockLevelExecutes) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/5);
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kStockLevel));
}

TEST_F(TpccTest, MixRunsToCompletion) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/6);
  for (int i = 0; i < 60; ++i) {
    PHX_ASSERT_OK(client.RunOne());
  }
  EXPECT_EQ(client.stats().TotalCommitted(), 60u);
  // The mix touched at least new-order and payment.
  EXPECT_GT(client.stats().committed[0], 0u);
  EXPECT_GT(client.stats().committed[1], 0u);
}

TEST_F(TpccTest, RunsIdenticallyThroughPhoenix) {
  // The paper's transparency claim: the same workload code runs unchanged
  // over the Phoenix driver.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectPhoenix());
  TpccClient client(conn.get(), config_, /*seed=*/7);
  for (int i = 0; i < 30; ++i) {
    PHX_ASSERT_OK(client.RunOne());
  }
  EXPECT_EQ(client.stats().TotalCommitted(), 30u);
}

TEST_F(TpccTest, RunsThroughPhoenixWithClientCache) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn,
                           h_->ConnectPhoenix("PHOENIX_CACHE=262144"));
  TpccClient client(conn.get(), config_, /*seed=*/8);
  for (int i = 0; i < 30; ++i) {
    PHX_ASSERT_OK(client.RunOne());
  }
  EXPECT_EQ(client.stats().TotalCommitted(), 30u);
  // With caching, no result tables were materialized on the server.
  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn.get());
  EXPECT_EQ(phoenix_conn->stats().queries_persisted.load(), 0u);
  EXPECT_GT(phoenix_conn->stats().queries_cached.load(), 0u);
}

TEST_F(TpccTest, ConcurrentClientsMakeProgress) {
  constexpr int kClients = 4;
  constexpr int kTxnsPerClient = 25;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> committed{0};
  std::atomic<int> hard_failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto conn = h_->ConnectNative();
      if (!conn.ok()) {
        hard_failures.fetch_add(1);
        return;
      }
      TpccClient client(conn.value().get(), config_, 100 + c);
      for (int i = 0; i < kTxnsPerClient; ++i) {
        if (client.RunOne().ok()) {
          committed.fetch_add(1);
        } else {
          hard_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_EQ(committed.load(),
            static_cast<uint64_t>(kClients * kTxnsPerClient));
}

TEST_F(TpccTest, MoneyConservation) {
  // Sum of customer payments equals warehouse + district YTD deltas.
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/11);
  auto w_before = (*h_->QueryAll("SELECT SUM(w_ytd) FROM warehouse"))[0][0]
                      .AsDouble();
  auto d_before = (*h_->QueryAll("SELECT SUM(d_ytd) FROM district"))[0][0]
                      .AsDouble();
  for (int i = 0; i < 10; ++i) {
    PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kPayment));
  }
  auto w_after = (*h_->QueryAll("SELECT SUM(w_ytd) FROM warehouse"))[0][0]
                     .AsDouble();
  auto d_after = (*h_->QueryAll("SELECT SUM(d_ytd) FROM district"))[0][0]
                     .AsDouble();
  EXPECT_NEAR(w_after - w_before, d_after - d_before, 1e-6);
}

// ---------------------------------------------------------------------------
// Statement-pipelined transaction bodies.
// ---------------------------------------------------------------------------

uint64_t Trips(odbc::Connection* conn) {
  return static_cast<odbc::NativeConnection*>(conn)
      ->transport()
      ->stats()
      .round_trips.load();
}

TEST_F(TpccTest, PipelinedBodiesPreserveInvariants) {
  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/11, /*pipeline=*/true);
  ASSERT_TRUE(client.pipelined());

  int64_t orders_before = Count("orders");
  auto next_before = h_->QueryAll("SELECT SUM(d_next_o_id) FROM district");
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kNewOrder));
  EXPECT_EQ(Count("orders"), orders_before + 1);
  auto next_after = h_->QueryAll("SELECT SUM(d_next_o_id) FROM district");
  EXPECT_EQ((*next_after)[0][0].AsInt(), (*next_before)[0][0].AsInt() + 1);

  auto w_ytd = h_->QueryAll("SELECT w_ytd FROM warehouse WHERE w_id=1");
  int64_t history_before = Count("history");
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kPayment));
  auto w_after = h_->QueryAll("SELECT w_ytd FROM warehouse WHERE w_id=1");
  EXPECT_GT((*w_after)[0][0].AsDouble(), (*w_ytd)[0][0].AsDouble());
  EXPECT_EQ(Count("history"), history_before + 1);

  int64_t pending = Count("new_order");
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kDelivery));
  EXPECT_EQ(Count("new_order"), pending - 2);  // one delivered per district

  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kOrderStatus));
  PHX_ASSERT_OK(client.RunTransaction(TpccTxnType::kStockLevel));
}

TEST_F(TpccTest, PipelinedMixConservesMoney) {
  auto sum = [&](const std::string& sql) {
    auto rows = h_->QueryAll(sql);
    EXPECT_TRUE(rows.ok());
    return rows.ok() ? (*rows)[0][0].AsDouble() : -1.0;
  };
  double w_before = sum("SELECT SUM(w_ytd) FROM warehouse");
  double d_before = sum("SELECT SUM(d_ytd) FROM district");

  PHX_ASSERT_OK_AND_ASSIGN(auto conn, h_->ConnectNative());
  TpccClient client(conn.get(), config_, /*seed=*/12, /*pipeline=*/true);
  ASSERT_TRUE(client.pipelined());
  for (int i = 0; i < 40; ++i) PHX_ASSERT_OK(client.RunOne());
  EXPECT_EQ(client.stats().TotalCommitted(), 40u);

  double w_delta = sum("SELECT SUM(w_ytd) FROM warehouse") - w_before;
  double d_delta = sum("SELECT SUM(d_ytd) FROM district") - d_before;
  EXPECT_NEAR(w_delta, d_delta, 1e-6);
}

TEST_F(TpccTest, PipelineCutsRoundTripsWellBelowClassic) {
  PHX_ASSERT_OK_AND_ASSIGN(auto classic_conn, h_->ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(auto piped_conn, h_->ConnectNative());
  TpccClient classic(classic_conn.get(), config_, /*seed=*/13);
  TpccClient piped(piped_conn.get(), config_, /*seed=*/13, /*pipeline=*/true);
  ASSERT_FALSE(classic.pipelined());
  ASSERT_TRUE(piped.pipelined());

  constexpr int kTxns = 20;
  uint64_t classic_before = Trips(classic_conn.get());
  for (int i = 0; i < kTxns; ++i) PHX_ASSERT_OK(classic.RunOne());
  uint64_t classic_trips = Trips(classic_conn.get()) - classic_before;

  uint64_t piped_before = Trips(piped_conn.get());
  for (int i = 0; i < kTxns; ++i) PHX_ASSERT_OK(piped.RunOne());
  uint64_t piped_trips = Trips(piped_conn.get()) - piped_before;

  // The acceptance bar: pipelining cuts trips/txn by at least 40%. Same
  // seed on both clients, so the transaction mixes are identical.
  EXPECT_LE(piped_trips * 10, classic_trips * 6)
      << "classic=" << classic_trips << " pipelined=" << piped_trips;
}

TEST_F(TpccTest, PipelineKnobOffFallsBackToExactClassicTrips) {
  // PHOENIX_PIPELINE=0 must reproduce classic per-statement trip counts
  // EXACTLY — the probe itself costs zero wire traffic.
  PHX_ASSERT_OK_AND_ASSIGN(auto classic_conn, h_->ConnectNative());
  PHX_ASSERT_OK_AND_ASSIGN(
      auto off_conn, h_->dm().Connect("DRIVER=native;UID=tester;"
                                      "PHOENIX_PIPELINE=0"));
  TpccClient classic(classic_conn.get(), config_, /*seed=*/14);
  TpccClient off(off_conn.get(), config_, /*seed=*/14, /*pipeline=*/true);
  ASSERT_FALSE(off.pipelined());

  constexpr int kTxns = 15;
  uint64_t classic_before = Trips(classic_conn.get());
  for (int i = 0; i < kTxns; ++i) PHX_ASSERT_OK(classic.RunOne());
  uint64_t classic_trips = Trips(classic_conn.get()) - classic_before;

  uint64_t off_before = Trips(off_conn.get());
  for (int i = 0; i < kTxns; ++i) PHX_ASSERT_OK(off.RunOne());
  uint64_t off_trips = Trips(off_conn.get()) - off_before;

  EXPECT_EQ(off_trips, classic_trips);
}

TEST_F(TpccTest, PipelinedMixThroughPhoenix) {
  // Pipelined bodies through the Phoenix driver: bundles ride the persisted
  // session (status-tracked, recoverable) and the workload still commits.
  PHX_ASSERT_OK_AND_ASSIGN(
      auto conn, h_->ConnectPhoenix("PHOENIX_RESULT_CACHE=0"));
  TpccClient client(conn.get(), config_, /*seed=*/15, /*pipeline=*/true);
  ASSERT_TRUE(client.pipelined());
  for (int i = 0; i < 30; ++i) PHX_ASSERT_OK(client.RunOne());
  EXPECT_EQ(client.stats().TotalCommitted(), 30u);
}

TEST(TpccSchemaTest, DdlParses) {
  for (const std::string& ddl : TpccGenerator::SchemaDdl()) {
    auto parsed = sql::ParseStatement(ddl);
    EXPECT_TRUE(parsed.ok()) << ddl;
  }
}

}  // namespace
}  // namespace phoenix::tpc
