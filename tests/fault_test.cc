// Unit tests for the deterministic fault-injection plane: spec parsing,
// seed-determinism, fire accounting, deadline-truncated sleeps, and the
// backoff policy the recovery loop uses between reconnect attempts.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/status.h"
#include "fault/fault.h"
#include "test_util.h"

namespace phoenix {
namespace {

using common::Status;
using common::StatusCode;
using fault::FaultInjector;
using fault::FaultMode;
using fault::FaultRule;
using fault::ScopedDeadline;

/// The injector is process-global; every test starts and ends from a clean
/// slate (fire counts intentionally survive Clear, so tests read deltas).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Clear(); }
  void TearDown() override { FaultInjector::Global().Clear(); }

  uint64_t FiresSince(const std::string& point, uint64_t base) {
    return FaultInjector::Global().fires(point) - base;
  }
};

TEST_F(FaultTest, DisabledInjectorIsInert) {
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.enabled());
  PHX_EXPECT_OK(injector.Inject("wal.fsync"));
  EXPECT_FALSE(injector.Evaluate("wal.fsync").has_value());
}

TEST_F(FaultTest, ErrorRuleFiresWithConfiguredCode) {
  auto& injector = FaultInjector::Global();
  uint64_t base = injector.fires("wal.fsync");
  PHX_ASSERT_OK(injector.ArmSpec("wal.fsync=error:code=IoError,count=2", 7));
  EXPECT_TRUE(injector.enabled());

  Status st = injector.Inject("wal.fsync");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("wal.fsync"), std::string::npos);
  EXPECT_EQ(injector.Inject("wal.fsync").code(), StatusCode::kIoError);
  // Fire budget exhausted: the point goes quiet.
  PHX_EXPECT_OK(injector.Inject("wal.fsync"));
  EXPECT_EQ(FiresSince("wal.fsync", base), 2u);
}

TEST_F(FaultTest, SkipFirstDelaysFiring) {
  auto& injector = FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("server.fetch=error:after=2,count=1", 1));
  PHX_EXPECT_OK(injector.Inject("server.fetch"));
  PHX_EXPECT_OK(injector.Inject("server.fetch"));
  EXPECT_FALSE(injector.Inject("server.fetch").ok());
  PHX_EXPECT_OK(injector.Inject("server.fetch"));
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeed) {
  auto fire_pattern = [](uint64_t seed) {
    auto& injector = FaultInjector::Global();
    injector.Clear();
    FaultRule rule;
    rule.point = "tcp.recv";
    rule.mode = FaultMode::kError;
    rule.probability = 0.5;
    rule.max_fires = 0;  // unlimited
    rule.seed = seed;
    injector.Arm(rule);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(!injector.Inject("tcp.recv").ok());
    }
    injector.Clear();
    return pattern;
  };
  std::vector<bool> a = fire_pattern(42);
  std::vector<bool> b = fire_pattern(42);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fire pattern";
  // ~50% of 64 hits should fire; allow a generous band.
  int fired = 0;
  for (bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 8);
  EXPECT_LT(fired, 56);
}

TEST_F(FaultTest, SpecParserRejectsGarbage) {
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.ArmSpec("no.such.point=error", 1).ok());
  EXPECT_FALSE(injector.ArmSpec("wal.fsync=explode", 1).ok());
  EXPECT_FALSE(injector.ArmSpec("wal.fsync=error:code=Nonsense", 1).ok());
  EXPECT_FALSE(injector.ArmSpec("wal.fsync=error:bogus=1", 1).ok());
  EXPECT_FALSE(injector.ArmSpec("wal.fsync", 1).ok());
  // A rejected spec must not leave the injector half-armed.
  EXPECT_FALSE(injector.enabled());
}

TEST_F(FaultTest, EveryCataloguedPointIsArmable) {
  auto& injector = FaultInjector::Global();
  std::set<std::string> seen;
  for (const fault::FaultPointInfo& info : fault::FaultPointCatalog()) {
    EXPECT_TRUE(seen.insert(info.name).second)
        << "duplicate catalog entry: " << info.name;
    PHX_EXPECT_OK(
        injector.ArmSpec(std::string(info.name) + "=error:count=1", 1));
  }
  EXPECT_GE(seen.size(), 13u);
}

TEST_F(FaultTest, ArmSpecOnceIsIdempotentPerSpecAndSeed) {
  auto& injector = FaultInjector::Global();
  const std::string spec = "server.connect=error:count=1";
  PHX_ASSERT_OK(injector.ArmSpecOnce(spec, 3));
  EXPECT_FALSE(injector.Inject("server.connect").ok());
  // Re-presenting the same (spec, seed) — as Phoenix reconnects do — must not
  // re-arm and reset the fire budget.
  PHX_ASSERT_OK(injector.ArmSpecOnce(spec, 3));
  PHX_EXPECT_OK(injector.Inject("server.connect"));
  // A different seed is a new schedule.
  PHX_ASSERT_OK(injector.ArmSpecOnce(spec, 4));
  EXPECT_FALSE(injector.Inject("server.connect").ok());
}

TEST_F(FaultTest, MultiRuleSpecParsesPipeSeparators) {
  auto& injector = FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec(
      "wal.append=torn:count=1|tcp.send=delay:delay_us=100,count=1", 11));
  // Torn degrades to IoError through Inject (no payload to tear here).
  EXPECT_EQ(injector.Inject("wal.append").code(), StatusCode::kIoError);
  PHX_EXPECT_OK(injector.Inject("tcp.send"));  // delay completes, then OK
}

TEST_F(FaultTest, EvaluateSizesTornAndCorruptOffsetsToPayload) {
  auto& injector = FaultInjector::Global();
  FaultRule rule;
  rule.point = "tcp.send";
  rule.mode = FaultMode::kTorn;
  rule.max_fires = 0;
  injector.Arm(rule);
  for (int i = 0; i < 32; ++i) {
    auto action = injector.Evaluate("tcp.send", 100);
    ASSERT_TRUE(action.has_value());
    EXPECT_LT(action->torn_bytes, 100u);
    EXPECT_LT(action->corrupt_offset, 100u);
  }
}

TEST_F(FaultTest, CrashModeSignalsHandlerAndReportsServerDown) {
  auto& injector = FaultInjector::Global();
  int crashes = 0;
  injector.SetCrashHandler([&] { ++crashes; });
  PHX_ASSERT_OK(injector.ArmSpec("server.execute.pre=crash:count=1", 1));
  Status st = injector.Inject("server.execute.pre");
  EXPECT_EQ(st.code(), StatusCode::kServerDown);
  EXPECT_EQ(crashes, 1);
  injector.SetCrashHandler(nullptr);
}

TEST_F(FaultTest, ScopedDeadlineTruncatesInjectedHangToTimeout) {
  auto& injector = FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("tcp.recv=hang:count=1", 1));
  auto start = std::chrono::steady_clock::now();
  ScopedDeadline deadline(start + std::chrono::milliseconds(50));
  Status st = injector.Inject("tcp.recv");
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "a 30s hang must be cut short by the 50ms deadline";
}

TEST_F(FaultTest, NestedScopedDeadlineKeepsTighterBound) {
  auto now = std::chrono::steady_clock::now();
  {
    ScopedDeadline outer(now + std::chrono::milliseconds(10));
    {
      // A looser inner deadline must not widen the outer constraint.
      ScopedDeadline inner(now + std::chrono::seconds(60));
      ASSERT_TRUE(ScopedDeadline::Current().has_value());
      EXPECT_EQ(*ScopedDeadline::Current(),
                now + std::chrono::milliseconds(10));
    }
    EXPECT_EQ(*ScopedDeadline::Current(),
              now + std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(ScopedDeadline::Current().has_value());
}

TEST_F(FaultTest, ClearWakesHungSleeper) {
  auto& injector = FaultInjector::Global();
  PHX_ASSERT_OK(injector.ArmSpec("inproc.response=hang:count=1", 1));
  auto start = std::chrono::steady_clock::now();
  std::thread sleeper([&] {
    // No deadline on this thread: only Clear() can end the 30s hang early.
    PHX_EXPECT_OK(injector.Inject("inproc.response"));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  injector.Clear();
  sleeper.join();
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
}

TEST_F(FaultTest, FireCountsSurviveClear) {
  auto& injector = FaultInjector::Global();
  uint64_t base = injector.fires("server.execute.post");
  PHX_ASSERT_OK(injector.ArmSpec("server.execute.post=error:count=3", 1));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(injector.Inject("server.execute.post").ok());
  }
  injector.Clear();
  EXPECT_EQ(FiresSince("server.execute.post", base), 3u);
}

TEST_F(FaultTest, TimeoutStatusIsConnectionLevel) {
  // The failure detector's contract: a roundtrip timeout must enter the same
  // recovery path as a dead connection, not surface to the application.
  EXPECT_TRUE(Status::Timeout("x").IsConnectionLevel());
  EXPECT_TRUE(Status::ConnectionFailed("x").IsConnectionLevel());
  EXPECT_TRUE(Status::ServerDown("x").IsConnectionLevel());
  EXPECT_FALSE(Status::Aborted("x").IsConnectionLevel());
  EXPECT_FALSE(Status::IoError("x").IsConnectionLevel());
}

// ---------------------------------------------------------------------------
// Backoff (reconnect pacing)
// ---------------------------------------------------------------------------

TEST(BackoffTest, StaysWithinBaseAndCap) {
  common::Backoff backoff(std::chrono::milliseconds(10),
                          std::chrono::milliseconds(200), 99);
  for (int i = 0; i < 100; ++i) {
    auto d = backoff.Next();
    EXPECT_GE(d.count(), 10);
    EXPECT_LE(d.count(), 200);
  }
}

TEST(BackoffTest, GrowsTowardCapAndResets) {
  common::Backoff backoff(std::chrono::milliseconds(10),
                          std::chrono::milliseconds(10'000), 7);
  int64_t max_seen = 0;
  for (int i = 0; i < 50; ++i) max_seen = std::max(max_seen, backoff.Next().count());
  // Decorrelated jitter should escape the base interval quickly.
  EXPECT_GT(max_seen, 100);
  backoff.Reset();
  EXPECT_LE(backoff.Next().count(), 30) << "after Reset the next draw is near base";
}

TEST(BackoffTest, SameSeedSameSequence) {
  common::Backoff a(std::chrono::milliseconds(5),
                    std::chrono::milliseconds(500), 1234);
  common::Backoff b(std::chrono::milliseconds(5),
                    std::chrono::milliseconds(500), 1234);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(BackoffTest, DegenerateCapClampsToBase) {
  common::Backoff backoff(std::chrono::milliseconds(50),
                          std::chrono::milliseconds(1), 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(backoff.Next().count(), 50);
}

}  // namespace
}  // namespace phoenix
