#!/usr/bin/env bash
# Repository verification pipeline:
#   1. tier-1: full build + complete ctest suite (the ROADMAP contract);
#   2. sanitizer pass: obs_test + phoenix_test under AddressSanitizer
#      (the obs subsystem is lock-free/sharded — memory errors there would
#      corrupt silently, so it gets the extra scrutiny);
#   3. tsan pass: the wire/prefetch/recovery tests under ThreadSanitizer
#      (the read-ahead pipeline runs fetches on worker threads concurrently
#      with crash/recovery — data races there would be timing-dependent).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== asan: obs_test + phoenix_test + fault plane =="
cmake -B build-asan -S . -DPHOENIX_SANITIZE=address
cmake --build build-asan -j"${JOBS}" --target obs_test phoenix_test \
  fault_test wire_hardening_test chaos_soak_test
(cd build-asan && ctest --output-on-failure -R \
  "obs_test|phoenix_test|fault_test|wire_hardening_test|chaos_soak_test")

echo "== tsan: wire + phoenix recovery/prefetch + chaos tests =="
cmake -B build-tsan -S . -DPHOENIX_SANITIZE=thread
cmake --build build-tsan -j"${JOBS}" --target obs_test wire_test \
  phoenix_test phoenix_recovery_test phoenix_cache_test crash_property_test \
  chaos_soak_test
(cd build-tsan && ctest --output-on-failure -R \
  "obs_test|wire_test|phoenix_test|phoenix_recovery_test|phoenix_cache_test|crash_property_test|chaos_soak_test")

echo "== tsan: group commit (leader/follower handoff + checkpoint fence) =="
# The group-commit coordinator wakes follower threads from the leader's
# force and races the checkpoint's exclusive WAL fence — both are
# timing-dependent by construction, so they get a dedicated TSan pass.
cmake --build build-tsan -j"${JOBS}" --target group_commit_test database_test
(cd build-tsan && ctest --output-on-failure -R \
  "group_commit_test|database_test")

echo "== chaos: fixed-seed soak bench (deterministic schedules) =="
# Short but real: every fault family, fixed seeds, conservation enforced by
# the bench itself (non-zero exit on violation). The crash/restart cycle is
# wall-clock async, so throughput varies — the invariants must not. Runs
# with group commit on and off: the grouped force must not change any
# durability outcome, only amortize it.
cmake --build build -j"${JOBS}" --target bench_chaos
for gc in 1 0; do
  for mode in error crash hang torn drop mixed; do
    PHOENIX_GROUP_COMMIT="${gc}" \
      ./build/bench/bench_chaos --mode="${mode}" --seeds=3 --txns=24
  done
done

echo "ci.sh: all checks passed"
