#!/usr/bin/env bash
# Repository verification pipeline:
#   1. tier-1: full build + complete ctest suite (the ROADMAP contract);
#   2. sanitizer pass: obs_test + phoenix_test under AddressSanitizer
#      (the obs subsystem is lock-free/sharded — memory errors there would
#      corrupt silently, so it gets the extra scrutiny);
#   3. tsan pass: the wire/prefetch/recovery tests under ThreadSanitizer
#      (the read-ahead pipeline runs fetches on worker threads concurrently
#      with crash/recovery — data races there would be timing-dependent),
#      plus the MVCC isolation matrix and a mixed-workload bench smoke
#      (snapshot readers race writers/GC by construction);
#   4. chaos soak with MVCC on and off, with the cross-statement result
#      cache on, with statement pipelining on (bundle exactly-once under
#      every fault family and across failover), and with the background
#      checkpoint trigger armed under serial and partitioned replay (fixed
#      seeds, invariants enforced).
# Tier-1 runs four ways: default, PHOENIX_MVCC=0 (legacy locking),
# PHOENIX_RESULT_CACHE on, and the MVCC=0 + result-cache degradation combo
# (the cache must self-disable without MVCC snapshots).
# When a clang++ is on PATH, tier-1 also builds once with Clang's
# -Wthread-safety to enforce the PHX_GUARDED_BY lock annotations.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "== tier-1 legacy read path: ctest with PHOENIX_MVCC=0 =="
# The locking read path stays supported as the A/B escape hatch; the whole
# suite must hold under it, not just isolation_test's legacy cases.
(cd build && PHOENIX_MVCC=0 ctest --output-on-failure -j"${JOBS}")

echo "== tier-1 result cache: ctest with PHOENIX_RESULT_CACHE=262144 =="
# The cross-statement result cache (DESIGN.md §16) must be invisible to
# correctness: the whole suite holds with it force-enabled on every Phoenix
# connection, not just result_cache_test's targeted cases. (The plain tier-1
# run above is the cache-off arm of the on/off pair.)
(cd build && PHOENIX_RESULT_CACHE=262144 ctest --output-on-failure -j"${JOBS}")

echo "== tier-1 degradation: result cache forced on under PHOENIX_MVCC=0 =="
# With the locking read path the server never marks statements cacheable, so
# the cache self-disables; the combination must behave exactly like MVCC=0
# alone. The cache-sensitive suites are enough to prove the knob is inert.
(cd build && PHOENIX_MVCC=0 PHOENIX_RESULT_CACHE=262144 ctest \
  --output-on-failure -j"${JOBS}" -R \
  "result_cache_test|phoenix_test|phoenix_cache_test|phoenix_recovery_test|isolation_test")

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Wthread-safety: static lock-discipline check =="
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DPHOENIX_THREAD_SAFETY=ON
  cmake --build build-tsa -j"${JOBS}" --target phx_engine phx_common
else
  echo "== clang not found: skipping -Wthread-safety static check =="
fi

echo "== asan: obs_test + phoenix_test + fault plane =="
cmake -B build-asan -S . -DPHOENIX_SANITIZE=address
cmake --build build-asan -j"${JOBS}" --target obs_test phoenix_test \
  fault_test wire_hardening_test chaos_soak_test
(cd build-asan && ctest --output-on-failure -R \
  "obs_test|phoenix_test|fault_test|wire_hardening_test|chaos_soak_test")

echo "== tsan: wire + phoenix recovery/prefetch + chaos tests =="
cmake -B build-tsan -S . -DPHOENIX_SANITIZE=thread
cmake --build build-tsan -j"${JOBS}" --target obs_test wire_test \
  phoenix_test phoenix_recovery_test phoenix_cache_test crash_property_test \
  chaos_soak_test
(cd build-tsan && ctest --output-on-failure -R \
  "obs_test|wire_test|phoenix_test|phoenix_recovery_test|phoenix_cache_test|crash_property_test|chaos_soak_test")

echo "== tsan: group commit (leader/follower handoff + checkpoint fence) =="
# The group-commit coordinator wakes follower threads from the leader's
# force and races the checkpoint's exclusive WAL fence — both are
# timing-dependent by construction, so they get a dedicated TSan pass.
cmake --build build-tsan -j"${JOBS}" --target group_commit_test database_test
(cd build-tsan && ctest --output-on-failure -R \
  "group_commit_test|database_test")

echo "== tsan: parallel WAL replay + background checkpointer =="
# Partitioned replay drains per-table queues on a worker pool and the
# background checkpointer thread races commits for the dirty set and the
# WAL-bytes trigger — the replay determinism property test (threads=1 vs N
# byte-identical state) plus the trigger/backoff tests run under TSan.
cmake --build build-tsan -j"${JOBS}" --target recovery_test
(cd build-tsan && ctest --output-on-failure -R "^recovery_test$")

echo "== tsan: WAL shipping + standby apply + epoch-fenced failover =="
# The log shipper's append observer runs on committers' threads while the
# standby's applier thread fetches, reassembles, and applies — plus the
# promotion path joins the applier racing a dying primary. All of repl_test
# (stream torn/corrupt/gap, fencing, driver failover) runs under TSan.
cmake --build build-tsan -j"${JOBS}" --target repl_test
(cd build-tsan && ctest --output-on-failure -R "^repl_test$")

echo "== tsan: statement bundles (wire framing + exactly-once retry) =="
# Bundle flushes interleave with the prefetch pipeline, crash recovery, and
# the chaos controller's restart thread; the exactly-once ledger lookup runs
# on the recovery path while dispatches drain. odbc_test covers the native
# bundle plumbing, tpcc_test the pipelined bodies end to end (the recovery,
# crash-property, chaos, and repl bundle tests already run in the TSan
# passes above).
cmake --build build-tsan -j"${JOBS}" --target odbc_test tpcc_test
(cd build-tsan && ctest --output-on-failure -R "^odbc_test$|^tpcc_test$")

echo "== tsan: engine shards (scatter-gather routing + scoped recovery) =="
# Coordinator sessions fan statements out while CrashShard tears down one
# engine under every session's feet and the Phoenix driver's scoped recovery
# polls the dead shard from private connections — shard_test's crash/restart
# races run under TSan end to end.
cmake --build build-tsan -j"${JOBS}" --target shard_test
(cd build-tsan && ctest --output-on-failure -R "^shard_test$")

echo "== tsan: MVCC isolation matrix + mixed-workload smoke =="
# Snapshot readers traverse version chains while committers stamp and prune
# them and cursors pin/unpin timestamps — the exact shapes TSan exists for.
# The bench smoke runs both modes (mvcc=0,1) end to end.
cmake --build build-tsan -j"${JOBS}" --target isolation_test bench_mixed
(cd build-tsan && ctest --output-on-failure -R "isolation_test")
./build-tsan/bench/bench_mixed --warehouses=1 --customers=300 --writers=2 \
  --scanners=1 --seconds=2 --warmup=1

echo "== chaos: fixed-seed soak bench (deterministic schedules) =="
# Short but real: every fault family, fixed seeds, conservation enforced by
# the bench itself (non-zero exit on violation). The crash/restart cycle is
# wall-clock async, so throughput varies — the invariants must not. Runs
# with group commit on and off: the grouped force must not change any
# durability outcome, only amortize it.
cmake --build build -j"${JOBS}" --target bench_chaos
for gc in 1 0; do
  for mode in error crash hang torn drop mixed; do
    PHOENIX_GROUP_COMMIT="${gc}" \
      ./build/bench/bench_chaos --mode="${mode}" --seeds=3 --txns=24
  done
done

echo "== chaos: fixed-seed soak with the legacy locking read path =="
# Same invariants must hold on the PHOENIX_MVCC=0 escape hatch (the MVCC=1
# runs are covered above — it is the default).
for mode in error crash torn mixed; do
  PHOENIX_MVCC=0 ./build/bench/bench_chaos --mode="${mode}" --seeds=3 --txns=24
done

echo "== chaos: fixed-seed soak with the background checkpoint trigger armed =="
# The WAL-bytes trigger auto-checkpoints between the soak's crash/restart
# cycles, so recovery replays a short incremental tail instead of the full
# log. Conservation must hold whichever checkpoint generation the crash
# lands on, with replay serial (threads=0, pre-PR path) and partitioned
# (threads=4).
for rthreads in 0 4; do
  for mode in crash torn mixed; do
    PHOENIX_CHECKPOINT_WAL_BYTES=32768 PHOENIX_RECOVERY_THREADS="${rthreads}" \
      ./build/bench/bench_chaos --mode="${mode}" --seeds=3 --txns=24
  done
done

echo "== chaos: failover soak (primary killed under load, standby armed) =="
# Halfway through each seed the primary dies for good; the driver must
# promote the warm standby and the money-conservation audit then runs on
# the SURVIVOR. A torn/corrupt repl.ship fault mix runs throughout, so the
# shipped stream heals itself under the same load. Non-zero exit on any
# lost/duplicated committed transaction or missed failover.
./build/bench/bench_chaos --failover=1 --seeds=3 --txns=32

echo "== chaos: fixed-seed soak with statement pipelining on =="
# Payment bodies flush as wire bundles (PHOENIX_PIPELINE=1 pins the knob on
# explicitly; --pipeline opts the workload in). Every fault family must
# leave the money-conservation audit intact — a bundle double-applied or
# half-applied by the retry machinery moves money. The failover soak then
# proves bundle exactly-once on the SURVIVOR.
for mode in error crash hang torn drop mixed; do
  PHOENIX_PIPELINE=1 \
    ./build/bench/bench_chaos --mode="${mode}" --pipeline=1 --seeds=3 --txns=24
done
PHOENIX_PIPELINE=1 \
  ./build/bench/bench_chaos --failover=1 --pipeline=1 --seeds=3 --txns=32

echo "== chaos: shard-kill soak (partition-aware recovery isolation) =="
# One of four engine shards dies mid-seed and comes back. Gates (non-zero
# exit on violation): bystander sessions on the surviving shards observe
# NOTHING — zero failures, zero recoveries; the session on the victim shard
# rides a SCOPED recovery, never a full one; and the net-zero transfer
# workload conserves money across the outage.
./build/bench/bench_chaos --shard_kill=1 --seeds=3

echo "== chaos: fixed-seed soak with the result cache enabled =="
# Crashes must drop the cache (never serve pre-crash rows as post-recovery
# truth) and the conservation invariants must hold with hot reads answered
# client-side. Crash and mixed are the families that exercise the drop path.
for mode in crash mixed; do
  PHOENIX_RESULT_CACHE=262144 \
    ./build/bench/bench_chaos --mode="${mode}" --seeds=3 --txns=24
done

echo "ci.sh: all checks passed"
