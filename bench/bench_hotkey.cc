// Hot-key read workload A/B for the cross-statement result cache
// (DESIGN.md §16): a small set of hot point/range queries repeated many
// times over a read-mostly table, Phoenix with and without
// PHOENIX_RESULT_CACHE, plus an occasional-writer variant showing the
// invalidation plane keeping results fresh.
//
// Measures elapsed seconds, wire round trips, and per-query p50/p99 latency.
// The cache turns every repeated read into a client-local answer: round
// trips collapse to the first execution of each distinct query (plus
// whatever writes churn).
//
// Flags: --rows=1000  --hot=8  --repeats=500  --write_every=0  --runs=1
//        --json=PATH  --obs=on|off  --trace=on|off

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace phoenix::bench {
namespace {

uint64_t InprocRoundTrips() {
  static obs::Counter* const trips =
      obs::Registry::Global().counter("wire.inproc.round_trips");
  return trips->Value();
}

struct Outcome {
  double seconds = 0;
  uint64_t trips = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t hits = 0;
};

double Percentile(std::vector<double>& sorted_micros, double p) {
  if (sorted_micros.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(
                                           sorted_micros.size() - 1));
  return sorted_micros[idx];
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const int64_t rows = flags.GetInt("rows", 1000);
  const int64_t hot = std::max<int64_t>(1, flags.GetInt("hot", 8));
  const int64_t repeats = flags.GetInt("repeats", 500);
  // Every Nth operation is an UPDATE to one hot key (0 = read-only).
  const int64_t write_every = flags.GetInt("write_every", 0);
  const int runs = static_cast<int>(flags.GetInt("runs", 1));

  std::printf(
      "=== Hot-key workload: %lld rows, %lld hot queries x %lld repeats, "
      "write_every=%lld ===\n",
      static_cast<long long>(rows), static_cast<long long>(hot),
      static_cast<long long>(repeats), static_cast<long long>(write_every));

  BenchEnv env;
  {
    auto setup = env.Connect("native");
    if (!setup.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   setup.status().ToString().c_str());
      return 1;
    }
    auto stmt = setup.value()->CreateStatement();
    if (!stmt.ok()) return 1;
    auto st = stmt.value()->ExecDirect(
        "CREATE TABLE hk (id INTEGER PRIMARY KEY, grp INTEGER, v VARCHAR)");
    if (!st.ok()) {
      std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
      return 1;
    }
    for (int64_t base = 1; base <= rows; base += 500) {
      std::string insert = "INSERT INTO hk VALUES ";
      for (int64_t id = base; id < base + 500 && id <= rows; ++id) {
        if (id > base) insert += ",";
        insert += "(" + std::to_string(id) + "," + std::to_string(id % 10) +
                  ",'v" + std::to_string(id) + "')";
      }
      st = stmt.value()->ExecDirect(insert);
      if (!st.ok()) {
        std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  // The hot working set: point lookups and small aggregates.
  std::vector<std::string> queries;
  for (int64_t i = 0; i < hot; ++i) {
    if (i % 2 == 0) {
      queries.push_back("SELECT id, v FROM hk WHERE id = " +
                        std::to_string(1 + i * 3 % rows));
    } else {
      queries.push_back("SELECT COUNT(*) FROM hk WHERE grp = " +
                        std::to_string(i % 10));
    }
  }

  auto run_workload = [&](bool cached) -> common::Result<Outcome> {
    std::string extra = "PHOENIX_RETRY_MS=10";
    if (cached) extra += ";PHOENIX_RESULT_CACHE=1048576";
    Outcome out;
    std::vector<double> micros;
    micros.reserve(static_cast<size_t>(hot * repeats));
    for (int run = 0; run < runs; ++run) {
      PHX_ASSIGN_OR_RETURN(odbc::ConnectionPtr conn,
                           env.Connect("phoenix", extra));
      PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt,
                           conn->CreateStatement());
      uint64_t trips_before = InprocRoundTrips();
      common::Stopwatch total;
      int64_t op = 0;
      for (int64_t rep = 0; rep < repeats; ++rep) {
        for (const std::string& q : queries) {
          ++op;
          if (write_every > 0 && op % write_every == 0) {
            PHX_RETURN_IF_ERROR(stmt->ExecDirect(
                "UPDATE hk SET v = 'w" + std::to_string(op) +
                "' WHERE id = 1"));
          }
          common::Stopwatch one;
          PHX_RETURN_IF_ERROR(stmt->ExecDirect(q));
          common::Row row;
          while (true) {
            PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
            if (!more) break;
          }
          PHX_RETURN_IF_ERROR(stmt->CloseCursor());
          micros.push_back(one.ElapsedSeconds() * 1e6);
        }
      }
      out.seconds += total.ElapsedSeconds();
      out.trips += InprocRoundTrips() - trips_before;
      auto* pc = static_cast<phx::PhoenixConnection*>(conn.get());
      if (pc->result_cache() != nullptr) {
        out.hits += pc->result_cache()->stats().hits.load();
      }
    }
    out.seconds /= runs;
    out.trips /= static_cast<uint64_t>(runs);
    std::sort(micros.begin(), micros.end());
    out.p50_us = Percentile(micros, 0.50);
    out.p99_us = Percentile(micros, 0.99);
    return out;
  };

  const std::vector<int> widths = {13, 9, 11, 11, 11, 9};
  PrintTableHeader(
      {"Config", "Seconds", "Round trips", "p50 (us)", "p99 (us)", "Hits"},
      widths);

  auto baseline = run_workload(/*cached=*/false);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  auto cached = run_workload(/*cached=*/true);
  if (!cached.ok()) {
    std::fprintf(stderr, "cached: %s\n", cached.status().ToString().c_str());
    return 1;
  }

  auto print_row = [&](const char* name, const Outcome& o) {
    char p50[32], p99[32];
    std::snprintf(p50, sizeof(p50), "%.1f", o.p50_us);
    std::snprintf(p99, sizeof(p99), "%.1f", o.p99_us);
    PrintTableRow({name, FormatSeconds(o.seconds), std::to_string(o.trips),
                   p50, p99, std::to_string(o.hits)},
                  widths);
  };
  print_row("no cache", *baseline);
  print_row("result cache", *cached);

  double trip_cut = baseline->trips > 0
                        ? 1.0 - static_cast<double>(cached->trips) /
                                    static_cast<double>(baseline->trips)
                        : 0.0;
  double p50_speedup =
      cached->p50_us > 0 ? baseline->p50_us / cached->p50_us : 0.0;
  std::printf(
      "\nResult cache cut round trips by %.1f%% and sped up p50 latency "
      "%.1fx on the hot set.\n",
      trip_cut * 100.0, p50_speedup);

  if (obs::Enabled()) {
    obs::Registry::Global()
        .counter("bench.hotkey.baseline.round_trips")
        ->Add(baseline->trips);
    obs::Registry::Global()
        .counter("bench.hotkey.cached.round_trips")
        ->Add(cached->trips);
    obs::Registry::Global()
        .histogram("bench.hotkey.baseline.p50_us")
        ->Record(static_cast<uint64_t>(baseline->p50_us));
    obs::Registry::Global()
        .histogram("bench.hotkey.cached.p50_us")
        ->Record(static_cast<uint64_t>(cached->p50_us));
  }
  WriteJsonIfRequested(flags, "bench_hotkey",
                       {{"rows", std::to_string(rows)},
                        {"hot", std::to_string(hot)},
                        {"repeats", std::to_string(repeats)},
                        {"write_every", std::to_string(write_every)},
                        {"runs", std::to_string(runs)},
                        {"trip_reduction_pct",
                         std::to_string(trip_cut * 100.0)},
                        {"p50_speedup", std::to_string(p50_speedup)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
