// Reproduces paper Table 1: TPC-H power test, native ODBC vs Phoenix/ODBC.
//
// The power test runs the 22 queries and both refresh functions one at a
// time in a fixed order, timing each individually. We report per-query
// seconds for both drivers, the difference and the ratio, plus query and
// update totals — the exact columns of Table 1.
//
// Flags: --sf=0.01  --runs=3  --q11_fraction=auto

#include <cstdio>

#include "bench_util.h"
#include "tpc/tpch.h"

namespace phoenix::bench {
namespace {

using tpc::TpchConfig;
using tpc::TpchGenerator;

struct QueryResult {
  int64_t rows = 0;
  double native_seconds = 0;
  double phoenix_seconds = 0;
};

common::Status RunRefresh(odbc::Connection* conn,
                          const std::vector<std::vector<std::string>>& txns,
                          double* seconds) {
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
  common::Stopwatch watch;
  for (const auto& txn : txns) {
    PHX_RETURN_IF_ERROR(stmt->ExecDirect("BEGIN TRANSACTION"));
    for (const std::string& sql : txn) {
      PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));
    }
    PHX_RETURN_IF_ERROR(stmt->ExecDirect("COMMIT"));
  }
  *seconds += watch.ElapsedSeconds();
  return common::Status::OK();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const double sf = flags.GetDouble("sf", 0.01);
  const int runs = static_cast<int>(flags.GetInt("runs", 3));
  // Q11's Fraction scales with SF so the result stays non-trivial.
  const double q11_fraction = flags.GetDouble("q11_fraction", 0.0001 / sf);

  std::printf("=== Table 1: TPC-H power test (SF %.3f, %d run%s) ===\n",
              sf, runs, runs == 1 ? "" : "s");

  BenchEnv env;
  TpchConfig config;
  config.scale_factor = sf;
  TpchGenerator generator(config);
  auto load = generator.Load(env.server());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  // Data generation is setup, not measurement — start the obs dump clean.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  QueryResult results[22];
  double rf_native[2] = {0, 0};
  double rf_phoenix[2] = {0, 0};
  int64_t rf_rows[2] = {0, 0};

  const char* drivers[2] = {"native", "phoenix"};
  for (int run = 0; run < runs; ++run) {
    for (int d = 0; d < 2; ++d) {
      auto conn = env.Connect(drivers[d]);
      if (!conn.ok()) {
        std::fprintf(stderr, "connect: %s\n",
                     conn.status().ToString().c_str());
        return 1;
      }

      // RF1 — two transactions, two inserts each.
      {
        double seconds = 0;
        auto rf1 = generator.Rf1Transactions();
        int64_t inserted = generator.RfOrderCount();
        auto st = RunRefresh(conn.value().get(), rf1, &seconds);
        if (!st.ok()) {
          std::fprintf(stderr, "RF1: %s\n", st.ToString().c_str());
          return 1;
        }
        rf_native[0] += d == 0 ? seconds : 0;
        rf_phoenix[0] += d == 1 ? seconds : 0;
        rf_rows[0] = inserted;
      }

      // The 22 queries in order.
      for (int q = 1; q <= 22; ++q) {
        int64_t rows = 0;
        auto elapsed = TimeStatement(conn.value().get(),
                                     tpc::TpchQuery(q, q11_fraction), &rows);
        if (!elapsed.ok()) {
          std::fprintf(stderr, "Q%d (%s): %s\n", q, drivers[d],
                       elapsed.status().ToString().c_str());
          return 1;
        }
        results[q - 1].rows = rows;
        if (d == 0) {
          results[q - 1].native_seconds += *elapsed;
        } else {
          results[q - 1].phoenix_seconds += *elapsed;
        }
      }

      // RF2 — deletes what RF1 added, leaving data unchanged for the next
      // driver/run.
      {
        double seconds = 0;
        auto rf2 = generator.Rf2Transactions();
        auto st = RunRefresh(conn.value().get(), rf2, &seconds);
        if (!st.ok()) {
          std::fprintf(stderr, "RF2: %s\n", st.ToString().c_str());
          return 1;
        }
        rf_native[1] += d == 0 ? seconds : 0;
        rf_phoenix[1] += d == 1 ? seconds : 0;
        rf_rows[1] = rf_rows[0];
      }
    }
  }

  const std::vector<int> widths = {8, 10, 12, 13, 12, 8};
  PrintTableHeader({"Query", "Rows", "Native (s)", "Phoenix (s)",
                    "Diff (s)", "Ratio"},
                   widths);

  double total_native_q = 0;
  double total_phoenix_q = 0;
  for (int q = 1; q <= 22; ++q) {
    const QueryResult& result = results[q - 1];
    double native = result.native_seconds / runs;
    double phoenix = result.phoenix_seconds / runs;
    total_native_q += native;
    total_phoenix_q += phoenix;
    char name[8];
    std::snprintf(name, sizeof(name), "Q%02d", q);
    PrintTableRow({name, std::to_string(result.rows),
                   FormatSeconds(native), FormatSeconds(phoenix),
                   FormatSeconds(phoenix - native),
                   FormatRatio(native > 0 ? phoenix / native : 0)},
                  widths);
  }
  double total_native_rf = (rf_native[0] + rf_native[1]) / runs;
  double total_phoenix_rf = (rf_phoenix[0] + rf_phoenix[1]) / runs;
  const char* rf_names[2] = {"RF1", "RF2"};
  for (int i = 0; i < 2; ++i) {
    PrintTableRow({rf_names[i], std::to_string(rf_rows[i]),
                   FormatSeconds(rf_native[i] / runs),
                   FormatSeconds(rf_phoenix[i] / runs),
                   FormatSeconds((rf_phoenix[i] - rf_native[i]) / runs),
                   FormatRatio(rf_native[i] > 0
                                   ? rf_phoenix[i] / rf_native[i]
                                   : 0)},
                  widths);
  }

  std::printf("\n");
  PrintTableRow({"Total(Q)", "", FormatSeconds(total_native_q),
                 FormatSeconds(total_phoenix_q),
                 FormatSeconds(total_phoenix_q - total_native_q),
                 FormatRatio(total_phoenix_q / total_native_q)},
                widths);
  PrintTableRow({"Total(U)", "", FormatSeconds(total_native_rf),
                 FormatSeconds(total_phoenix_rf),
                 FormatSeconds(total_phoenix_rf - total_native_rf),
                 FormatRatio(total_native_rf > 0
                                 ? total_phoenix_rf / total_native_rf
                                 : 0)},
                widths);
  std::printf(
      "\nPaper reference (SF 1.0, SQL Server 7.0): query total ratio 1.011, "
      "update total ratio 1.003.\n");
  WriteJsonIfRequested(flags, "bench_tpch_power",
                       {{"sf", FormatSeconds(sf, 3)},
                        {"runs", std::to_string(runs)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
