// Chaos soak bench: sustained TPC-C traffic under deterministic fault
// schedules, reporting masking effectiveness and MTTR (detection → usable
// session) per seed. Companion to tests/chaos_soak_test.cc — the test
// asserts invariants, this measures them at soak length.
//
//   --mode=mixed        fault family: error|crash|hang|torn|drop|mixed
//   --seeds=10          schedules to run (seed 1..N, each fully deterministic)
//   --txns=64           TPC-C transactions per seed
//   --restart-ms=20     server downtime per injected crash
//   --rt-timeout-ms=100 client per-roundtrip deadline (hang detector)
//   --pipeline=0        statement-pipelined bodies (bundle exactly-once soak)
//   --json=PATH         obs registry dump (MTTR histogram + counters)
//   --list-fault-points print the armable fault-point catalog and exit

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fault/chaos.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "tpc/tpcc.h"

namespace phoenix::bench {
namespace {

using fault::FaultInjector;

// Failover soak (--failover=1): sustained Payment traffic against a primary
// with a warm standby armed; halfway through each seed the primary is killed
// for good. The next transaction must ride Phoenix recovery onto the
// promoted standby, and the money-conservation audit then runs on the
// SURVIVOR — committed work crossed the failover exactly once or the books
// would disagree. A light repl.ship fault mix (torn + corrupt chunks) runs
// throughout, so the shipped stream is also healing itself under load.
int FailoverSoak(const Flags& flags) {
  const int seeds = static_cast<int>(flags.GetInt("seeds", 5));
  const int txns = static_cast<int>(flags.GetInt("txns", 64));

  tpc::TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 30;

  std::printf("failover soak: seeds=%d txns/seed=%d (primary killed at "
              "txn %d, standby armed)\n\n",
              seeds, txns, txns / 2);
  PrintTableHeader({"seed", "committed", "failed", "recoveries", "failovers",
                    "resubs", "conserved"},
                   {4, 9, 6, 10, 9, 6, 9});

  auto& injector = FaultInjector::Global();
  uint64_t total_committed = 0, total_failed = 0, total_failovers = 0;
  int conservation_failures = 0;

  for (int seed = 1; seed <= seeds; ++seed) {
    injector.Clear();
    ClusterEnv env((engine::ServerOptions()));
    tpc::TpccGenerator gen(config);
    if (common::Status st = gen.Load(env.primary()); !st.ok()) {
      std::fprintf(stderr, "fatal: tpcc load: %s\n", st.ToString().c_str());
      return 1;
    }

    auto sum = [&](const std::string& sql,
                   const std::string& server) -> double {
      auto conn = env.Connect("native", "SERVER=" + server);
      if (!conn.ok()) return -1.0;
      auto stmt = conn.value()->CreateStatement();
      if (!stmt.ok()) return -1.0;
      if (!stmt.value()->ExecDirect(sql).ok()) return -1.0;
      common::Row row;
      auto more = stmt.value()->Fetch(&row);
      if (!more.ok() || !more.value()) return -1.0;
      return row[0].AsDouble();
    };
    double w_before = sum("SELECT SUM(w_ytd) FROM warehouse", "primary");
    double d_before = sum("SELECT SUM(d_ytd) FROM district", "primary");

    if (auto st = injector.ArmSpec(
            "repl.ship=torn:p=0.05|repl.ship=corrupt:p=0.02",
            static_cast<uint64_t>(seed));
        !st.ok()) {
      std::fprintf(stderr, "fatal: arm: %s\n", st.ToString().c_str());
      return 1;
    }

    auto conn = env.Connect(
        "phoenix",
        "SERVER=primary;FAILOVER=standby;PHOENIX_DEADLINE_MS=8000;"
        "PHOENIX_RETRY_MS=5");
    if (!conn.ok()) {
      std::fprintf(stderr, "fatal: connect: %s\n",
                   conn.status().ToString().c_str());
      return 1;
    }
    auto* phoenix_conn =
        static_cast<phx::PhoenixConnection*>(conn.value().get());
    tpc::TpccClient client(conn.value().get(), config,
                           static_cast<uint64_t>(seed),
                           flags.GetBool("pipeline", false));

    uint64_t committed = 0, failed = 0;
    for (int i = 0; i < txns; ++i) {
      if (i == txns / 2) env.primary()->Crash();
      common::Status txn_st =
          client.RunTransaction(tpc::TpccTxnType::kPayment);
      if (txn_st.ok()) {
        ++committed;
      } else {
        ++failed;
        if (flags.GetBool("verbose", false)) {
          std::printf("  seed %d txn %d: %s\n", seed, i,
                      txn_st.ToString().c_str());
        }
        auto rb = conn.value()->CreateStatement();
        if (rb.ok()) rb.value()->ExecDirect("ROLLBACK").ok();
      }
    }
    injector.Clear();

    // The audit runs on the survivor: the promoted standby is the only
    // timeline that matters after the kill.
    double w_delta = sum("SELECT SUM(w_ytd) FROM warehouse", "standby") -
                     w_before;
    double d_delta = sum("SELECT SUM(d_ytd) FROM district", "standby") -
                     d_before;
    bool conserved = std::abs(w_delta - d_delta) < 1e-3;
    if (!conserved) ++conservation_failures;

    uint64_t failovers = phoenix_conn->stats().failovers.load();
    total_committed += committed;
    total_failed += failed;
    total_failovers += failovers;
    PrintTableRow({std::to_string(seed), std::to_string(committed),
                   std::to_string(failed),
                   std::to_string(phoenix_conn->recovery_count()),
                   std::to_string(failovers),
                   std::to_string(env.node()->resubscribes()),
                   conserved ? "yes" : "NO"},
                  {4, 9, 6, 10, 9, 6, 9});
    if (failovers == 0) {
      std::fprintf(stderr, "FAIL: seed %d never failed over\n", seed);
      return 1;
    }
    conn.value()->Disconnect().ok();
  }

  std::printf("\ntotals: committed=%" PRIu64 " failed=%" PRIu64
              " failovers=%" PRIu64 "\n",
              total_committed, total_failed, total_failovers);
  if (conservation_failures > 0) {
    std::fprintf(stderr, "FAIL: money conservation violated in %d seed(s)\n",
                 conservation_failures);
    return 1;
  }
  WriteJsonIfRequested(flags, "bench_chaos_failover",
                       {{"seeds", std::to_string(seeds)},
                        {"txns_per_seed", std::to_string(txns)},
                        {"committed", std::to_string(total_committed)},
                        {"failed", std::to_string(total_failed)},
                        {"failovers", std::to_string(total_failovers)}});
  return 0;
}

// Shard-kill soak (--shard_kill=1): a 4-shard server under per-shard
// traffic; mid-seed ONE shard is killed and later restarted (partition-aware
// Phoenix recovery, DESIGN.md §20). Three gates, enforced per seed:
//  - bystander sessions, whose keys live on OTHER shards, sail through the
//    outage with ZERO failures and ZERO recoveries — partial-failure
//    isolation is the point of sharding the engine;
//  - the session working the victim shard rides at least one SCOPED
//    recovery (phx.shard.recoveries), never a full one;
//  - money is conserved: every transfer is net-zero, so the scatter SUM over
//    all shards must match the loaded total whatever the crash interrupted.
int ShardKillSoak(const Flags& flags) {
  const int seeds = static_cast<int>(flags.GetInt("seeds", 3));
  const int restart_ms = static_cast<int>(flags.GetInt("restart-ms", 40));
  constexpr int kShards = 4;
  constexpr int kIdsPerShard = 4;
  constexpr double kOpeningBalance = 1000.0;

  std::printf("shard-kill soak: seeds=%d shards=%d restart=%dms "
              "(one bystander reader per surviving shard, one writer on "
              "the victim)\n\n",
              seeds, kShards, restart_ms);
  PrintTableHeader({"seed", "victim", "w_commit", "w_abort", "scoped",
                    "bystander_ok", "conserved"},
                   {4, 6, 8, 7, 6, 12, 9});

  int failures = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    engine::ServerOptions options;
    options.shards = kShards;
    BenchEnv env(wire::NetworkModel::None(), options);

    auto setup = env.Connect("native");
    if (!setup.ok()) {
      std::fprintf(stderr, "fatal: connect: %s\n",
                   setup.status().ToString().c_str());
      return 1;
    }
    auto setup_stmt = setup.value()->CreateStatement();
    if (!setup_stmt.ok() ||
        !setup_stmt.value()
             ->ExecDirect("CREATE TABLE accounts (id INTEGER PRIMARY KEY, "
                          "balance DOUBLE)")
             .ok()) {
      std::fprintf(stderr, "fatal: create accounts table\n");
      return 1;
    }

    // Map keys onto shards with the coordinator's own routing (the
    // statement's shard mask) until every shard owns kIdsPerShard keys.
    std::vector<std::vector<int>> ids_of_shard(kShards);
    int total_ids = 0;
    for (int id = 0; id < 512 && total_ids < kShards * kIdsPerShard; ++id) {
      if (!setup_stmt.value()
               ->ExecDirect("INSERT INTO accounts VALUES (" +
                            std::to_string(id) + ", 1000.0)")
               .ok()) {
        std::fprintf(stderr, "fatal: seed insert %d\n", id);
        return 1;
      }
      uint64_t mask = setup_stmt.value()->LastShardMask();
      int shard = 0;
      while (shard < kShards && ((mask >> shard) & 1) == 0) ++shard;
      if (shard < kShards &&
          ids_of_shard[shard].size() <
              static_cast<size_t>(kIdsPerShard)) {
        ids_of_shard[shard].push_back(id);
        ++total_ids;
      } else if (shard < kShards) {
        // Surplus row for an already-full shard still counts toward the
        // conservation total below.
        ids_of_shard[shard].push_back(id);
      }
    }
    uint64_t loaded_rows = 0;
    for (const auto& ids : ids_of_shard) loaded_rows += ids.size();
    const double expected_total =
        static_cast<double>(loaded_rows) * kOpeningBalance;

    // Never shard 0: every session's probe temp table lives there, so
    // killing it is a whole-fleet event by design, not a partial failure.
    const int victim = 1 + (seed - 1) % (kShards - 1);

    std::atomic<uint64_t> ops[kShards];
    for (auto& o : ops) o.store(0);
    std::atomic<uint64_t> bystander_failures{0};
    std::atomic<uint64_t> writer_commits{0}, writer_aborts{0};
    std::atomic<bool> stop{false};
    std::atomic<bool> fatal{false};

    const std::string phx_extra =
        "PHOENIX_DEADLINE_MS=8000;PHOENIX_RETRY_MS=5;PHOENIX_CACHE=262144";
    std::vector<odbc::ConnectionPtr> conns(kShards);
    for (int s = 0; s < kShards; ++s) {
      auto conn = env.Connect("phoenix", phx_extra);
      if (!conn.ok()) {
        std::fprintf(stderr, "fatal: phoenix connect: %s\n",
                     conn.status().ToString().c_str());
        return 1;
      }
      conns[s] = std::move(conn).value();
    }

    std::vector<std::thread> workers;
    for (int s = 0; s < kShards; ++s) {
      workers.emplace_back([&, s] {
        auto stmt_r = conns[s]->CreateStatement();
        if (!stmt_r.ok()) {
          fatal.store(true);
          return;
        }
        odbc::Statement* stmt = stmt_r.value().get();
        const std::vector<int>& ids = ids_of_shard[s];
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (s == victim) {
            // Net-zero transfer between two victim-shard accounts.
            const int a = ids[i % ids.size()];
            const int b = ids[(i + 1) % ids.size()];
            ++i;
            common::Status st = stmt->ExecDirect("BEGIN TRANSACTION");
            if (st.ok()) {
              st = stmt->ExecDirect(
                  "UPDATE accounts SET balance = balance - 7 WHERE id = " +
                  std::to_string(a));
            }
            if (st.ok()) {
              st = stmt->ExecDirect(
                  "UPDATE accounts SET balance = balance + 7 WHERE id = " +
                  std::to_string(b));
            }
            if (st.ok()) st = stmt->ExecDirect("COMMIT");
            if (st.ok()) {
              writer_commits.fetch_add(1);
            } else {
              writer_aborts.fetch_add(1);
              stmt->ExecDirect("ROLLBACK").ok();
            }
          } else {
            // Bystander: point reads against its own shard only.
            const int a = ids[i % ids.size()];
            ++i;
            common::Status st = stmt->ExecDirect(
                "SELECT balance FROM accounts WHERE id = " +
                std::to_string(a));
            if (st.ok()) {
              auto rows = stmt->FetchBlock(4);
              if (!rows.ok() || rows.value().size() != 1) st =
                  common::Status::Internal("bystander read lost its row");
            }
            if (!st.ok()) bystander_failures.fetch_add(1);
          }
          ops[s].fetch_add(1);
        }
      });
    }

    auto wait_ops = [&](uint64_t floor_per_session) {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (std::chrono::steady_clock::now() < deadline &&
             !fatal.load()) {
        bool all = true;
        for (int s = 0; s < kShards; ++s) {
          if (ops[s].load() < floor_per_session) all = false;
        }
        if (all) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return false;
    };

    // Everyone makes progress, then the victim shard dies mid-traffic and
    // comes back; everyone must then make post-outage progress.
    bool ok = wait_ops(8);
    uint64_t before[kShards];
    for (int s = 0; s < kShards; ++s) before[s] = ops[s].load();
    env.server()->CrashShard(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(restart_ms));
    common::Status restart = env.server()->RestartShard(victim);
    if (!restart.ok()) {
      std::fprintf(stderr, "fatal: restart shard %d: %s\n", victim,
                   restart.ToString().c_str());
      return 1;
    }
    if (ok) {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (std::chrono::steady_clock::now() < deadline && !fatal.load()) {
        bool all = true;
        for (int s = 0; s < kShards; ++s) {
          if (ops[s].load() < before[s] + 8) all = false;
        }
        if (all) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    stop.store(true);
    for (std::thread& t : workers) t.join();
    if (fatal.load() || !ok) {
      std::fprintf(stderr, "fatal: seed %d workers stalled\n", seed);
      return 1;
    }

    uint64_t scoped = 0;
    bool bystanders_clean = bystander_failures.load() == 0;
    for (int s = 0; s < kShards; ++s) {
      auto* pc = static_cast<phx::PhoenixConnection*>(conns[s].get());
      if (s == victim) {
        scoped = pc->stats().shard_recoveries.load();
      } else if (pc->recovery_count() != 0) {
        // A session that never touched the dead shard must never recover.
        bystanders_clean = false;
      }
    }

    double total = -1.0;
    {
      auto audit = env.Connect("native");
      if (audit.ok()) {
        auto stmt = audit.value()->CreateStatement();
        if (stmt.ok() &&
            stmt.value()
                ->ExecDirect("SELECT SUM(balance) FROM accounts")
                .ok()) {
          common::Row row;
          auto more = stmt.value()->Fetch(&row);
          if (more.ok() && more.value()) total = row[0].AsDouble();
        }
      }
    }
    const bool conserved = total >= 0 &&
                           std::abs(total - expected_total) < 1e-3;

    PrintTableRow({std::to_string(seed), std::to_string(victim),
                   std::to_string(writer_commits.load()),
                   std::to_string(writer_aborts.load()),
                   std::to_string(scoped),
                   bystanders_clean ? "yes" : "NO",
                   conserved ? "yes" : "NO"},
                  {4, 6, 8, 7, 6, 12, 9});

    if (!bystanders_clean || !conserved || scoped == 0) ++failures;
    for (auto& conn : conns) conn->Disconnect().ok();
  }

  if (failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d seed(s) violated shard isolation/conservation\n",
                 failures);
    return 1;
  }
  WriteJsonIfRequested(flags, "bench_chaos_shard_kill",
                       {{"seeds", std::to_string(seeds)},
                        {"shards", std::to_string(kShards)},
                        {"restart_ms", std::to_string(restart_ms)}});
  std::printf("\nshard-kill soak: all seeds clean\n");
  return 0;
}

int Run(const Flags& flags) {
  ApplyObsFlags(flags);
  obs::SetEnabled(true);  // the MTTR histogram is the point of this bench
  if (flags.GetBool("failover", false)) return FailoverSoak(flags);
  if (flags.GetBool("shard_kill", false)) return ShardKillSoak(flags);

  const std::string mode = flags.GetString("mode", "mixed");
  const int seeds = static_cast<int>(flags.GetInt("seeds", 10));
  const int txns = static_cast<int>(flags.GetInt("txns", 64));
  const int restart_ms = static_cast<int>(flags.GetInt("restart-ms", 20));
  const int rt_timeout_ms =
      static_cast<int>(flags.GetInt("rt-timeout-ms", 100));

  tpc::TpccConfig config;
  config.warehouses = 1;
  config.districts_per_warehouse = 2;
  config.customers_per_district = 30;
  config.items = 100;
  config.initial_orders_per_district = 30;

  std::printf("chaos soak: mode=%s seeds=%d txns/seed=%d restart=%dms "
              "rt_timeout=%dms\n\n",
              mode.c_str(), seeds, txns, restart_ms, rt_timeout_ms);
  PrintTableHeader({"seed", "committed", "failed", "recoveries", "crashes",
                    "conserved"},
                   {4, 9, 6, 10, 7, 9});

  obs::Histogram* mttr =
      obs::Registry::Global().histogram("phx.recover.mttr_ns");
  auto& injector = FaultInjector::Global();
  uint64_t total_committed = 0, total_failed = 0, total_recoveries = 0,
           total_crashes = 0;
  int conservation_failures = 0;

  for (int seed = 1; seed <= seeds; ++seed) {
    injector.Clear();
    BenchEnv env(wire::NetworkModel::None());
    tpc::TpccGenerator gen(config);
    common::Status st = gen.Load(env.server());
    if (!st.ok()) {
      std::fprintf(stderr, "fatal: tpcc load: %s\n", st.ToString().c_str());
      return 1;
    }

    auto sum = [&](const std::string& sql) -> double {
      auto conn = env.Connect("native");
      if (!conn.ok()) return -1.0;
      auto stmt = conn.value()->CreateStatement();
      if (!stmt.ok()) return -1.0;
      if (!stmt.value()->ExecDirect(sql).ok()) return -1.0;
      common::Row row;
      auto more = stmt.value()->Fetch(&row);
      if (!more.ok() || !more.value()) return -1.0;
      return row[0].AsDouble();
    };
    double w_before = sum("SELECT SUM(w_ytd) FROM warehouse");
    double d_before = sum("SELECT SUM(d_ytd) FROM district");

    auto conn = env.Connect(
        "phoenix", "PHOENIX_DEADLINE_MS=8000;PHOENIX_RETRY_MS=5;"
                   "PHOENIX_RT_TIMEOUT_MS=" + std::to_string(rt_timeout_ms));
    if (!conn.ok()) {
      std::fprintf(stderr, "fatal: connect: %s\n",
                   conn.status().ToString().c_str());
      return 1;
    }
    auto* phoenix_conn =
        static_cast<phx::PhoenixConnection*>(conn.value().get());
    tpc::TpccClient client(conn.value().get(), config,
                           static_cast<uint64_t>(seed),
                           flags.GetBool("pipeline", false));

    uint64_t committed = 0, failed = 0;
    {
      fault::ChaosController controller(
          env.server(), std::chrono::milliseconds(restart_ms));
      for (const fault::FaultRule& rule :
           fault::MakeChaosSchedule(mode, static_cast<uint64_t>(seed))) {
        injector.Arm(rule);
      }
      for (int i = 0; i < txns; ++i) {
        common::Status txn_st =
            client.RunTransaction(tpc::TpccTxnType::kPayment);
        if (txn_st.ok()) {
          ++committed;
        } else {
          ++failed;
          if (flags.GetBool("verbose", false)) {
            std::printf("  seed %d txn %d: %s\n", seed, i,
                        txn_st.ToString().c_str());
          }
          // A failed transaction may still be open (e.g. the failure hit
          // Phoenix's own bookkeeping, not the application's statements).
          // Do what every ODBC application must: roll back before moving
          // on. ROLLBACK is idempotent, so this is safe even after aborts.
          auto rb = conn.value()->CreateStatement();
          if (rb.ok()) rb.value()->ExecDirect("ROLLBACK").ok();
        }
      }
      injector.Clear();
      total_crashes += controller.crashes();
    }
    if (!env.server()->IsUp()) env.server()->Restart().ok();

    // Money conservation: warehouse and district books must agree on what
    // the committed payments deposited.
    double w_delta = sum("SELECT SUM(w_ytd) FROM warehouse") - w_before;
    double d_delta = sum("SELECT SUM(d_ytd) FROM district") - d_before;
    bool conserved = std::abs(w_delta - d_delta) < 1e-3;
    if (!conserved) ++conservation_failures;

    uint64_t recoveries = phoenix_conn->recovery_count();
    total_committed += committed;
    total_failed += failed;
    total_recoveries += recoveries;

    PrintTableRow({std::to_string(seed), std::to_string(committed),
                   std::to_string(failed), std::to_string(recoveries),
                   std::to_string(total_crashes), conserved ? "yes" : "NO"},
                  {4, 9, 6, 10, 7, 9});
    conn.value()->Disconnect().ok();
  }

  obs::HistogramSnapshot snap = mttr->Snapshot();
  std::printf("\ntotals: committed=%" PRIu64 " failed=%" PRIu64
              " recoveries=%" PRIu64 " crashes=%" PRIu64 "\n",
              total_committed, total_failed, total_recoveries, total_crashes);
  std::printf("MTTR (detection -> usable session): n=%" PRIu64
              " p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
              snap.count, snap.Quantile(0.50) / 1e6,
              snap.Quantile(0.95) / 1e6, snap.Quantile(0.99) / 1e6,
              static_cast<double>(snap.max) / 1e6);
  for (const fault::FaultPointInfo& info : fault::FaultPointCatalog()) {
    uint64_t fires = FaultInjector::Global().fires(info.name);
    if (fires > 0) {
      std::printf("fires %-24s %" PRIu64 "\n", info.name, fires);
    }
  }
  if (conservation_failures > 0) {
    std::fprintf(stderr, "FAIL: money conservation violated in %d seed(s)\n",
                 conservation_failures);
    return 1;
  }

  WriteJsonIfRequested(flags, "bench_chaos",
                       {{"mode", mode},
                        {"seeds", std::to_string(seeds)},
                        {"txns_per_seed", std::to_string(txns)},
                        {"restart_ms", std::to_string(restart_ms)},
                        {"rt_timeout_ms", std::to_string(rt_timeout_ms)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::bench::Flags flags(argc, argv);
  return phoenix::bench::Run(flags);
}
