// Reproduces paper Table 3: response time for "SELECT TOP N * FROM
// LINEITEM", N doubling from 1 upward, native vs Phoenix, with the result
// left unread (the paper measures query response time, not transfer rate).
//
// The paper's signature shape:
//   * ratios are very large for tiny results (Phoenix's fixed cost — probe,
//     CREATE TABLE, load transaction — dwarfs a 1-row query);
//   * native response time flatlines once the server's network output
//     buffer (~75 KB / ~512 tuples) fills, because the scan suspends until
//     the client consumes rows;
//   * Phoenix keeps growing with N — its INSERT INTO T runs the scan to
//     completion to materialize the result — so the ratio rises again for
//     large N.
//
// Flags: --sf=0.02  --max_n=65536

#include <cstdio>

#include "bench_util.h"
#include "tpc/tpch.h"

namespace phoenix::bench {
namespace {

/// Executes the statement and returns the response time WITHOUT fetching
/// (the application "does not consume results"). The cursor is then closed.
common::Result<double> ResponseTime(odbc::Connection* conn,
                                    const std::string& sql) {
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
  common::Stopwatch watch;
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));
  double elapsed = watch.ElapsedSeconds();
  PHX_RETURN_IF_ERROR(stmt->CloseCursor());
  return elapsed;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const double sf = flags.GetDouble("sf", 0.02);
  const int64_t max_n = flags.GetInt("max_n", 65536);

  BenchEnv env;
  tpc::TpchConfig config;
  config.scale_factor = sf;
  tpc::TpchGenerator generator(config);
  auto load = generator.Load(env.server());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  // Data generation is setup, not measurement — start the obs dump clean.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  auto native_conn = env.Connect("native");
  auto phoenix_conn = env.Connect("phoenix");
  if (!native_conn.ok() || !phoenix_conn.ok()) return 1;

  std::printf(
      "=== Table 3: SELECT TOP N * FROM lineitem, unread results "
      "(SF %.3f; server send buffer 75 KB ~ 512 tuples) ===\n",
      sf);
  const std::vector<int> widths = {10, 12, 13, 10};
  PrintTableHeader({"N", "Native (s)", "Phoenix (s)", "Ratio"}, widths);

  for (int64_t n = 1; n <= max_n; n *= 2) {
    std::string sql = "SELECT TOP " + std::to_string(n) +
                      " * FROM lineitem";
    auto native = ResponseTime(native_conn.value().get(), sql);
    if (!native.ok()) {
      std::fprintf(stderr, "native N=%lld: %s\n",
                   static_cast<long long>(n),
                   native.status().ToString().c_str());
      return 1;
    }
    auto phoenix = ResponseTime(phoenix_conn.value().get(), sql);
    if (!phoenix.ok()) {
      std::fprintf(stderr, "phoenix N=%lld: %s\n",
                   static_cast<long long>(n),
                   phoenix.status().ToString().c_str());
      return 1;
    }
    PrintTableRow({std::to_string(n), FormatSeconds(*native, 5),
                   FormatSeconds(*phoenix, 5),
                   FormatRatio(*native > 0 ? *phoenix / *native : 0)},
                  widths);
  }

  std::printf(
      "\nPaper reference (SF 1.0): ratio 930 at N=1, crossover near "
      "N=256..4K, native flat beyond 512 tuples, Phoenix ratio 12.3 at "
      "N=256K.\n");
  WriteJsonIfRequested(flags, "bench_topn",
                       {{"sf", FormatSeconds(sf, 3)},
                        {"max_n", std::to_string(max_n)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
