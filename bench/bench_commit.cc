// Commit-throughput sweep for the WAL group-commit path (DESIGN.md §14).
//
// Measures engine-level commit throughput as concurrent committers contend
// for the log, with group commit on vs off (PHOENIX_GROUP_COMMIT=0 path),
// across WAL sync modes. Reports commits/s, the on/off speedup, observed
// group sizes (p50/p99) and the number of forces the grouping saved.
//
// Flags: --clients=1,2,4,8 --sync=flush,sync --seconds=1.5 --warmup=0.3
//        --wait_us=0 --json=PATH

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/database.h"

namespace phoenix::bench {
namespace {

using common::Schema;
using common::Status;
using common::Value;
using common::ValueType;
using engine::Database;
using engine::DatabaseOptions;
using engine::TablePtr;
using engine::Transaction;
using engine::WalSyncMode;

struct RunResult {
  double commits_per_s = 0;
  double group_p50 = 0;
  double group_p99 = 0;
  uint64_t forces = 0;
  uint64_t commits = 0;
  uint64_t forces_saved = 0;
};

RunResult RunOne(WalSyncMode sync, int clients, bool group_commit,
                 double warmup_s, double seconds, int64_t wait_us) {
  static std::atomic<uint64_t> dirno{0};
  std::string dir = "/tmp/phx_bench_commit_" + std::to_string(::getpid()) +
                    "_" + std::to_string(dirno.fetch_add(1));
  std::string cmd = "rm -rf " + dir + " && mkdir -p " + dir;
  std::system(cmd.c_str());

  DatabaseOptions options;
  options.data_dir = dir;
  options.sync_mode = sync;
  options.group_commit = group_commit ? 1 : 0;
  options.group_commit_wait_us = wait_us;
  auto opened = Database::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "fatal: %s\n", opened.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<Database> db = std::move(opened).value();

  Schema schema({{"id", ValueType::kInt, false}});
  Transaction* setup = db->Begin(0);
  db->CreateTable(setup, "t", schema, {"id"}, false, false, 0).ok();
  db->Commit(setup).ok();
  TablePtr table = db->ResolveTable("t", 0).value();

  obs::Histogram* group_size =
      obs::Registry::Global().histogram("engine.wal.group_size");
  group_size->Reset();

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int w = 0; w < clients; ++w) {
    workers.emplace_back([&, w] {
      int64_t next = static_cast<int64_t>(w) * 100'000'000;
      while (!stop.load(std::memory_order_relaxed)) {
        Transaction* txn = db->Begin(0);
        Status st = db->InsertRow(txn, table, {Value::Int(next++)});
        if (st.ok()) {
          db->Commit(txn).ok();
        } else {
          db->Rollback(txn).ok();
        }
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(warmup_s * 1e6)));
  uint64_t commits0 = db->group_commit().commits();
  uint64_t forces0 = db->group_commit().forces();
  double t0 = common::NowNanos() * 1e-9;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6)));
  double elapsed = common::NowNanos() * 1e-9 - t0;
  RunResult r;
  r.commits = db->group_commit().commits() - commits0;
  r.forces = db->group_commit().forces() - forces0;
  r.forces_saved = r.commits - r.forces;
  r.commits_per_s = static_cast<double>(r.commits) / elapsed;

  stop.store(true);
  for (auto& w : workers) w.join();

  obs::HistogramSnapshot snap = group_size->Snapshot();
  r.group_p50 = snap.Quantile(0.5);
  r.group_p99 = snap.Quantile(0.99);

  db.reset();
  cmd = "rm -rf " + dir;
  std::system(cmd.c_str());
  return r;
}

const char* SyncName(WalSyncMode sync) {
  return sync == WalSyncMode::kSync ? "sync" : "flush";
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);

  std::vector<std::string> client_list =
      SplitList(flags.GetString("clients", "1,2,4,8"));
  std::vector<std::string> sync_list =
      SplitList(flags.GetString("sync", "flush,sync"));
  double seconds = flags.GetDouble("seconds", 1.5);
  double warmup = flags.GetDouble("warmup", 0.3);
  int64_t wait_us = flags.GetInt("wait_us", 0);

  std::printf("commit throughput sweep: %.1fs measured, %.1fs warmup, "
              "group wait %lldus\n\n",
              seconds, warmup, static_cast<long long>(wait_us));
  std::vector<int> widths = {6, 8, 14, 14, 9, 10, 10, 12};
  PrintTableHeader({"sync", "clients", "off commits/s", "on commits/s",
                    "speedup", "grp p50", "grp p99", "forces saved"},
                   widths);

  for (const std::string& sync_name : sync_list) {
    WalSyncMode sync =
        sync_name == "sync" ? WalSyncMode::kSync : WalSyncMode::kFlush;
    for (const std::string& clients_str : client_list) {
      int clients = static_cast<int>(std::strtol(clients_str.c_str(),
                                                 nullptr, 10));
      if (clients <= 0) continue;
      RunResult off = RunOne(sync, clients, /*group_commit=*/false, warmup,
                             seconds, wait_us);
      RunResult on = RunOne(sync, clients, /*group_commit=*/true, warmup,
                            seconds, wait_us);
      double speedup = off.commits_per_s > 0
                           ? on.commits_per_s / off.commits_per_s
                           : 0;
      char p50[32], p99[32], cps_off[32], cps_on[32], saved[32];
      std::snprintf(cps_off, sizeof(cps_off), "%.0f", off.commits_per_s);
      std::snprintf(cps_on, sizeof(cps_on), "%.0f", on.commits_per_s);
      std::snprintf(p50, sizeof(p50), "%.1f", on.group_p50);
      std::snprintf(p99, sizeof(p99), "%.1f", on.group_p99);
      std::snprintf(saved, sizeof(saved), "%llu",
                    static_cast<unsigned long long>(on.forces_saved));
      PrintTableRow({SyncName(sync), clients_str, cps_off, cps_on,
                     FormatRatio(speedup), p50, p99, saved},
                    widths);

      // Republish per-experiment numbers for the --json dump.
      std::string tag = std::string("bench.commit.") + SyncName(sync) + ".c" +
                        clients_str;
      auto& reg = obs::Registry::Global();
      reg.gauge(tag + ".off.commits_per_s")
          ->Set(static_cast<int64_t>(off.commits_per_s));
      reg.gauge(tag + ".on.commits_per_s")
          ->Set(static_cast<int64_t>(on.commits_per_s));
      reg.gauge(tag + ".speedup_pct")
          ->Set(static_cast<int64_t>(speedup * 100));
      reg.gauge(tag + ".on.group_p50_x10")
          ->Set(static_cast<int64_t>(on.group_p50 * 10));
      reg.gauge(tag + ".on.group_p99_x10")
          ->Set(static_cast<int64_t>(on.group_p99 * 10));
      reg.gauge(tag + ".on.forces_saved")
          ->Set(static_cast<int64_t>(on.forces_saved));
    }
  }

  obs::Metadata config;
  config.emplace_back("seconds", FormatSeconds(seconds, 1));
  config.emplace_back("warmup", FormatSeconds(warmup, 1));
  config.emplace_back("wait_us", std::to_string(wait_us));
  WriteJsonIfRequested(flags, "bench_commit", config);
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
