// Reader/writer interference under MVCC vs. the legacy locking read path.
//
// Workload: TPC-C payment writers running concurrently with one (or more)
// scanner threads looping a TPC-H-style full-scan aggregation over the
// customer table — deliberately the heart of payment's write set (payment
// updates warehouse, district, and customer). Under PHOENIX_MVCC=0 every
// scan holds a customer table-S lock for its duration and scans run
// back-to-back, so each payment's customer IX/X acquisition queues behind
// the scan in flight and writer tail latency degrades to the scan length
// (or the lock timeout); under MVCC the scan reads a pinned snapshot and
// writers never wait on readers.
//
// Reported per mode: payment p50/p99 latency, payments/s, abort count, and
// scan throughput. The MVCC row should show ~identical scan throughput with
// writer p99 collapsing by an order of magnitude (EXPERIMENTS.md §PR5).
//
// Flags: --warehouses=2 --customers=1000 --writers=4 --scanners=1
//        --seconds=8 --warmup=2 --lock_timeout_ms=100 --mvcc=0,1
//        --json=PATH   (--customers scales the scanned table so the scan
//        length, i.e. the legacy blocking window, is configurable)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "tpc/tpcc.h"

namespace phoenix::bench {
namespace {

struct ModeResult {
  double writer_p50_ms = 0;
  double writer_p99_ms = 0;
  double payments_per_sec = 0;
  uint64_t payment_aborts = 0;
  double scans_per_sec = 0;
  double scan_p50_ms = 0;
  uint64_t versions_gced = 0;
};

double PercentileMs(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

common::Result<ModeResult> RunMode(const tpc::TpccConfig& config, int mvcc,
                                   int writers, int scanners,
                                   double warmup_seconds,
                                   double measure_seconds,
                                   int lock_timeout_ms) {
  engine::ServerOptions options;
  options.db.lock_timeout = std::chrono::milliseconds(lock_timeout_ms);
  options.db.mvcc = mvcc;
  // Zero-latency network: this bench isolates engine-level reader/writer
  // interference, and the simulated LAN RTT would otherwise dominate the
  // writer latency floor in both modes.
  BenchEnv env(wire::NetworkModel{/*round_trip_micros=*/0,
                                  /*bytes_per_second=*/1'000'000'000},
               options);
  tpc::TpccGenerator generator(config);
  PHX_RETURN_IF_ERROR(generator.Load(env.server()));

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> aborts{0};
  std::atomic<uint64_t> scan_count{0};
  std::mutex lat_mu;
  std::vector<double> payment_ms;  // merged under lat_mu at thread exit
  std::vector<double> scan_ms;

  std::vector<std::thread> threads;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto conn = env.Connect("native");
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      tpc::TpccClient client(conn.value().get(), config,
                             /*seed=*/7000 + static_cast<uint64_t>(w));
      std::vector<double> local;
      while (!stop.load(std::memory_order_relaxed)) {
        common::Stopwatch sw;
        common::Status status =
            client.RunTransaction(tpc::TpccTxnType::kPayment);
        double ms = sw.ElapsedSeconds() * 1e3;
        if (measuring.load(std::memory_order_relaxed)) {
          // Every attempt counts toward writer stall time — a lock-timeout
          // abort stalled the writer for the full wait before failing (and
          // the terminal would retry on top). Aborts are also counted
          // separately as the legacy-mode interference signal.
          local.push_back(ms);
          if (!status.ok()) aborts.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      payment_ms.insert(payment_ms.end(), local.begin(), local.end());
    });
  }
  for (int s = 0; s < scanners; ++s) {
    threads.emplace_back([&, s] {
      auto conn = env.Connect("native");
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<double> local;
      (void)s;
      while (!stop.load(std::memory_order_relaxed)) {
        // TPC-H-Q1-style full-scan aggregation, over the table payment
        // writes to: touches every customer row and materializes the
        // aggregate.
        auto timed = TimeStatement(
            conn.value().get(),
            "SELECT COUNT(*), SUM(c_balance), AVG(c_ytd_payment) "
            "FROM customer");
        if (!timed.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (measuring.load(std::memory_order_relaxed)) {
          scan_count.fetch_add(1);
          local.push_back(*timed * 1e3);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      scan_ms.insert(scan_ms.end(), local.begin(), local.end());
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(warmup_seconds * 1000)));
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();
  common::Stopwatch interval;
  measuring.store(true);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(measure_seconds * 1000)));
  measuring.store(false);
  double elapsed = interval.ElapsedSeconds();
  stop.store(true);
  for (std::thread& t : threads) t.join();

  if (failures.load() > 0) {
    return common::Status::Internal(std::to_string(failures.load()) +
                                    " bench threads failed");
  }

  std::sort(payment_ms.begin(), payment_ms.end());
  std::sort(scan_ms.begin(), scan_ms.end());
  ModeResult out;
  out.writer_p50_ms = PercentileMs(payment_ms, 0.50);
  out.writer_p99_ms = PercentileMs(payment_ms, 0.99);
  out.payments_per_sec = static_cast<double>(payment_ms.size()) / elapsed;
  out.payment_aborts = aborts.load();
  out.scans_per_sec = static_cast<double>(scan_count.load()) / elapsed;
  out.scan_p50_ms = PercentileMs(scan_ms, 0.50);
  out.versions_gced =
      obs::Registry::Global().counter("engine.mvcc.versions_gced")->Value();
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  tpc::TpccConfig config;
  config.warehouses = static_cast<int>(flags.GetInt("warehouses", 2));
  config.customers_per_district =
      static_cast<int>(flags.GetInt("customers", 1000));
  const int writers = static_cast<int>(flags.GetInt("writers", 4));
  const int scanners = static_cast<int>(flags.GetInt("scanners", 2));
  const double seconds = flags.GetDouble("seconds", 8);
  const double warmup = flags.GetDouble("warmup", 2);
  const int lock_timeout_ms =
      static_cast<int>(flags.GetInt("lock_timeout_ms", 100));
  std::vector<std::string> modes = SplitList(flags.GetString("mvcc", "0,1"));

  std::printf(
      "=== Mixed workload: %d payment writers + %d full-scan readers "
      "(%d warehouses, %.0fs measured after %.0fs warmup) ===\n",
      writers, scanners, config.warehouses, seconds, warmup);

  const std::vector<int> widths = {22, 11, 11, 12, 9, 9, 11};
  PrintTableHeader({"Mode", "Wr p50 ms", "Wr p99 ms", "Payments/s", "Aborts",
                    "Scans/s", "Scan p50 ms"},
                   widths);

  struct Republish {
    std::string prefix;
    ModeResult r;
  };
  std::vector<Republish> republish;
  for (const std::string& mode_str : modes) {
    const int mvcc = mode_str == "0" ? 0 : 1;
    auto result = RunMode(config, mvcc, writers, scanners, warmup, seconds,
                          lock_timeout_ms);
    if (!result.ok()) {
      std::fprintf(stderr, "mvcc=%d: %s\n", mvcc,
                   result.status().ToString().c_str());
      return 1;
    }
    char p50[32], p99[32], pps[32], sps[32], sp50[32];
    std::snprintf(p50, sizeof(p50), "%.2f", result->writer_p50_ms);
    std::snprintf(p99, sizeof(p99), "%.2f", result->writer_p99_ms);
    std::snprintf(pps, sizeof(pps), "%.0f", result->payments_per_sec);
    std::snprintf(sps, sizeof(sps), "%.1f", result->scans_per_sec);
    std::snprintf(sp50, sizeof(sp50), "%.1f", result->scan_p50_ms);
    PrintTableRow({mvcc ? "mvcc (snapshot reads)" : "legacy (2PL reads)", p50,
                   p99, pps, std::to_string(result->payment_aborts), sps,
                   sp50},
                  widths);
    republish.push_back(
        {std::string("bench.mixed.") + (mvcc ? "mvcc" : "legacy"), *result});
  }
  std::printf("\n");

  // RunMode resets the registry per measured window; republish integer
  // micro/milli metrics so --json carries both modes side by side.
  for (const Republish& r : republish) {
    auto* reg = &obs::Registry::Global();
    reg->counter(r.prefix + ".writer_p50_us")
        ->Add(static_cast<uint64_t>(r.r.writer_p50_ms * 1e3));
    reg->counter(r.prefix + ".writer_p99_us")
        ->Add(static_cast<uint64_t>(r.r.writer_p99_ms * 1e3));
    reg->counter(r.prefix + ".payments_per_min")
        ->Add(static_cast<uint64_t>(r.r.payments_per_sec * 60));
    reg->counter(r.prefix + ".payment_aborts")->Add(r.r.payment_aborts);
    reg->counter(r.prefix + ".scans_per_hour")
        ->Add(static_cast<uint64_t>(r.r.scans_per_sec * 3600));
    reg->counter(r.prefix + ".scan_p50_us")
        ->Add(static_cast<uint64_t>(r.r.scan_p50_ms * 1e3));
    reg->counter(r.prefix + ".versions_gced")->Add(r.r.versions_gced);
  }
  WriteJsonIfRequested(
      flags, "bench_mixed",
      {{"warehouses", std::to_string(config.warehouses)},
       {"writers", std::to_string(writers)},
       {"scanners", std::to_string(scanners)},
       {"seconds", FormatSeconds(seconds, 1)},
       {"lock_timeout_ms", std::to_string(lock_timeout_ms)},
       {"modes", flags.GetString("mvcc", "0,1")}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
