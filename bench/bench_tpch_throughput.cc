// Reproduces paper Table 2: TPC-H throughput test.
//
// Two concurrent query streams execute the 22-query suite with distinct
// orderings while a refresh stream runs RF1 and RF2 twice (once per query
// stream). The measurement interval runs from the first query of the first
// stream to the completion of the last stream. Reported: elapsed time for
// native and Phoenix, difference and ratio (paper: 5472.00 s vs 5492.39 s,
// ratio 1.003).
//
// Flags: --sf=0.01  --streams=2  --runs=3

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "tpc/tpch.h"

namespace phoenix::bench {
namespace {

/// Stream orderings per TPC-H Appendix A (first few permutations).
std::vector<int> StreamOrder(int stream) {
  static const int kOrders[4][22] = {
      {14, 2, 9, 20, 6, 17, 18, 8, 21, 13, 3, 22, 16, 4, 11, 15, 1, 10, 19,
       5, 7, 12},
      {21, 3, 18, 5, 11, 7, 6, 20, 17, 12, 16, 15, 13, 10, 2, 8, 14, 19, 9,
       22, 1, 4},
      {6, 17, 14, 16, 19, 10, 9, 2, 15, 8, 5, 22, 12, 7, 13, 18, 1, 4, 20,
       3, 11, 21},
      {8, 5, 4, 6, 17, 7, 1, 18, 22, 14, 9, 10, 15, 11, 20, 2, 21, 19, 13,
       16, 12, 3},
  };
  std::vector<int> order;
  for (int q : kOrders[stream % 4]) order.push_back(q);
  return order;
}

common::Result<double> RunThroughputTest(BenchEnv* env,
                                         const std::string& driver,
                                         int streams, double q11_fraction,
                                         tpc::TpchGenerator* generator) {
  std::vector<std::thread> workers;
  std::atomic<bool> failed{false};
  common::Stopwatch interval;

  // Query streams.
  for (int s = 0; s < streams; ++s) {
    workers.emplace_back([&, s] {
      auto conn = env->Connect(driver);
      if (!conn.ok()) {
        failed.store(true);
        return;
      }
      for (int q : StreamOrder(s)) {
        // Deadlock aborts against the refresh stream are normal events;
        // the stream retries the query (as any TPC-H driver would).
        common::Status last = common::Status::OK();
        bool done = false;
        for (int attempt = 0; attempt < 100 && !done; ++attempt) {
          auto elapsed = TimeStatement(conn.value().get(),
                                       tpc::TpchQuery(q, q11_fraction));
          if (elapsed.ok()) {
            done = true;
            break;
          }
          last = elapsed.status();
          if (last.code() != common::StatusCode::kAborted &&
              last.code() != common::StatusCode::kTimeout) {
            break;
          }
        }
        if (!done) {
          std::fprintf(stderr, "stream %d Q%d: %s\n", s, q,
                       last.ToString().c_str());
          failed.store(true);
          return;
        }
      }
    });
  }

  // Refresh stream: RF1+RF2 once per query stream.
  workers.emplace_back([&] {
    auto conn = env->Connect(driver);
    if (!conn.ok()) {
      failed.store(true);
      return;
    }
    auto stmt = conn.value()->CreateStatement();
    if (!stmt.ok()) {
      failed.store(true);
      return;
    }
    for (int pair = 0; pair < streams; ++pair) {
      for (const auto& txns :
           {generator->Rf1Transactions(), generator->Rf2Transactions()}) {
        for (const auto& txn : txns) {
          // Retry on lock-timeout aborts: refresh competes with scans.
          for (int attempt = 0; attempt < 50; ++attempt) {
            bool ok = stmt.value()->ExecDirect("BEGIN TRANSACTION").ok();
            for (const std::string& sql : txn) {
              if (!ok) break;
              ok = stmt.value()->ExecDirect(sql).ok();
            }
            if (ok && stmt.value()->ExecDirect("COMMIT").ok()) break;
            stmt.value()->ExecDirect("ROLLBACK").ok();
          }
        }
      }
    }
  });

  for (std::thread& t : workers) t.join();
  if (failed.load()) {
    return common::Status::Internal("a stream failed");
  }
  return interval.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const double sf = flags.GetDouble("sf", 0.01);
  const int streams = static_cast<int>(flags.GetInt("streams", 2));
  const double q11_fraction = flags.GetDouble("q11_fraction", 0.0001 / sf);

  std::printf(
      "=== Table 2: TPC-H throughput test (%d query streams + 1 refresh "
      "stream, SF %.3f) ===\n",
      streams, sf);

  BenchEnv env;
  tpc::TpchConfig config;
  config.scale_factor = sf;
  tpc::TpchGenerator generator(config);
  auto load = generator.Load(env.server());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }

  // One unmeasured warm-up pass, then alternating measured runs, averaged —
  // lock-contention retries make single runs noisy at laptop scale.
  const int runs = static_cast<int>(flags.GetInt("runs", 3));
  if (!RunThroughputTest(&env, "native", streams, q11_fraction, &generator)
           .ok()) {
    std::fprintf(stderr, "warm-up failed\n");
    return 1;
  }
  // Discard load + warm-up observability data before the measured runs.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();
  double native_total = 0;
  double phoenix_total = 0;
  for (int r = 0; r < runs; ++r) {
    auto native_run = RunThroughputTest(&env, "native", streams,
                                        q11_fraction, &generator);
    if (!native_run.ok()) {
      std::fprintf(stderr, "%s\n", native_run.status().ToString().c_str());
      return 1;
    }
    native_total += *native_run;
    auto phoenix_run = RunThroughputTest(&env, "phoenix", streams,
                                         q11_fraction, &generator);
    if (!phoenix_run.ok()) {
      std::fprintf(stderr, "%s\n", phoenix_run.status().ToString().c_str());
      return 1;
    }
    phoenix_total += *phoenix_run;
  }
  common::Result<double> native = native_total / runs;
  common::Result<double> phoenix = phoenix_total / runs;

  const std::vector<int> widths = {34, 14};
  PrintTableHeader({"Measure", "Value"}, widths);
  PrintTableRow({"Elapsed time, native ODBC (s)", FormatSeconds(*native)},
                widths);
  PrintTableRow({"Elapsed time, Phoenix/ODBC (s)", FormatSeconds(*phoenix)},
                widths);
  PrintTableRow({"Difference (s)", FormatSeconds(*phoenix - *native)},
                widths);
  PrintTableRow({"Ratio", FormatRatio(*phoenix / *native)}, widths);
  std::printf("\nPaper reference: 5472.00 s vs 5492.39 s, ratio 1.003.\n");
  WriteJsonIfRequested(flags, "bench_tpch_throughput",
                       {{"sf", FormatSeconds(sf, 3)},
                        {"streams", std::to_string(streams)},
                        {"runs", std::to_string(runs)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
