#include "bench_util.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <thread>

#include "fault/fault.h"

namespace phoenix::bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(),
                                                      nullptr);
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

BenchEnv::BenchEnv(wire::NetworkModel model, engine::ServerOptions options) {
  static std::atomic<uint64_t> counter{0};
  data_dir_ = "/tmp/phx_bench_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1));
  std::string cmd = "rm -rf " + data_dir_;
  std::system(cmd.c_str());
  options.db.data_dir = data_dir_;
  auto server = engine::SimulatedServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "fatal: %s\n", server.status().ToString().c_str());
    std::abort();
  }
  server_ = std::move(server).value();

  auto factory = [this, model](const odbc::ConnectionString&) {
    return std::make_shared<wire::InProcessTransport>(server_.get(), model);
  };
  native_ = std::make_shared<odbc::NativeDriver>("native", factory);
  dm_.RegisterDriver(native_).ok();
  dm_.RegisterDriver(std::make_shared<phx::PhoenixDriver>("phoenix",
                                                          native_))
      .ok();
}

BenchEnv::~BenchEnv() {
  server_.reset();
  std::string cmd = "rm -rf " + data_dir_;
  std::system(cmd.c_str());
}

common::Result<odbc::ConnectionPtr> BenchEnv::Connect(
    const std::string& driver, const std::string& extra) {
  std::string conn_str = "DRIVER=" + driver + ";UID=bench";
  if (!extra.empty()) conn_str += ";" + extra;
  return dm_.Connect(conn_str);
}

ClusterEnv::ClusterEnv(engine::ServerOptions primary_options,
                       wire::NetworkModel model) {
  static std::atomic<uint64_t> counter{0};
  const std::string stamp = std::to_string(::getpid()) + "_" +
                            std::to_string(counter.fetch_add(1));
  primary_dir_ = "/tmp/phx_cluster_primary_" + stamp;
  standby_dir_ = "/tmp/phx_cluster_standby_" + stamp;
  std::system(("rm -rf " + primary_dir_ + " " + standby_dir_).c_str());

  primary_options.standby = 0;
  primary_options.db.data_dir = primary_dir_;
  auto primary = engine::SimulatedServer::Start(primary_options);
  if (!primary.ok()) {
    std::fprintf(stderr, "fatal: %s\n", primary.status().ToString().c_str());
    std::abort();
  }
  primary_ = std::move(primary).value();
  shipper_ = std::make_unique<repl::LogShipper>(repl::LogShipperOptions{});
  shipper_->Attach(primary_.get());

  engine::ServerOptions standby_options = primary_options;
  standby_options.standby = 1;
  standby_options.db.data_dir = standby_dir_;
  auto standby = engine::SimulatedServer::Start(standby_options);
  if (!standby.ok()) {
    std::fprintf(stderr, "fatal: %s\n", standby.status().ToString().c_str());
    std::abort();
  }
  standby_ = std::move(standby).value();
  standby_node_ = std::make_unique<repl::StandbyNode>(
      standby_.get(),
      [this, model] {
        return std::make_shared<wire::InProcessTransport>(primary_.get(),
                                                          model);
      },
      repl::StandbyOptions{});
  if (auto st = standby_node_->Start(); !st.ok()) {
    std::fprintf(stderr, "fatal: standby start: %s\n", st.ToString().c_str());
    std::abort();
  }

  auto factory = [this, model](const odbc::ConnectionString& cs) {
    engine::SimulatedServer* target = cs.Get("SERVER", "primary") == "standby"
                                          ? standby_.get()
                                          : primary_.get();
    return std::make_shared<wire::InProcessTransport>(target, model);
  };
  native_ = std::make_shared<odbc::NativeDriver>("native", factory);
  dm_.RegisterDriver(native_).ok();
  dm_.RegisterDriver(std::make_shared<phx::PhoenixDriver>("phoenix", native_))
      .ok();
}

ClusterEnv::~ClusterEnv() {
  standby_node_->Stop();
  standby_node_.reset();
  standby_.reset();
  primary_.reset();
  shipper_.reset();
  std::system(("rm -rf " + primary_dir_ + " " + standby_dir_).c_str());
}

bool ClusterEnv::WaitCaughtUp(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (standby_node_->applied_lsn() == shipper_->end_lsn()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return standby_node_->applied_lsn() == shipper_->end_lsn();
}

common::Result<odbc::ConnectionPtr> ClusterEnv::Connect(
    const std::string& driver, const std::string& extra) {
  std::string conn_str = "DRIVER=" + driver + ";UID=bench";
  if (!extra.empty()) conn_str += ";" + extra;
  return dm_.Connect(conn_str);
}

void ApplyObsFlags(const Flags& flags) {
  if (flags.GetBool("list-fault-points", false)) {
    // Discovery aid for PHOENIX_FAULTS specs: every armable point and where
    // it sits in the stack.
    for (const fault::FaultPointInfo& info : fault::FaultPointCatalog()) {
      std::printf("%-24s  %s\n", info.name, info.description);
    }
    std::exit(0);
  }
  std::string obs_mode = flags.GetString("obs", "on");
  bool obs_on =
      !(obs_mode == "off" || obs_mode == "0" || obs_mode == "false");
  obs::SetEnabled(obs_on);
  std::string trace_mode = flags.GetString("trace", "on");
  bool trace_on =
      !(trace_mode == "off" || trace_mode == "0" || trace_mode == "false");
  obs::SetTraceEventsEnabled(trace_on);
}

bool WriteJsonIfRequested(const Flags& flags, const std::string& bench_name,
                          const obs::Metadata& config) {
  std::string path = flags.GetString("json", "");
  if (path.empty()) return false;
  obs::Metadata meta;
  meta.emplace_back("bench", bench_name);
#if defined(PHX_GIT_SHA)
  meta.emplace_back("git_sha", PHX_GIT_SHA);
#endif
  std::time_t now = std::time(nullptr);
  char ts[32] = "";
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  meta.emplace_back("timestamp_utc", ts);
  for (const auto& kv : config) meta.push_back(kv);
  if (!obs::WriteJsonFile(path, obs::Registry::Global(), meta)) {
    std::fprintf(stderr, "warning: failed to write obs json to %s\n",
                 path.c_str());
    return false;
  }
  std::printf("obs json written to %s\n", path.c_str());
  return true;
}

common::Result<double> TimeStatement(odbc::Connection* conn,
                                     const std::string& sql,
                                     int64_t* rows_out) {
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
  common::Stopwatch watch;
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));
  int64_t rows = stmt->RowCount();
  if (stmt->HasResultSet()) {
    rows = 0;
    common::Row row;
    while (true) {
      PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
      if (!more) break;
      ++rows;
    }
  }
  double elapsed = watch.ElapsedSeconds();
  PHX_RETURN_IF_ERROR(stmt->CloseCursor());
  if (rows_out != nullptr) *rows_out = rows;
  return elapsed;
}

void PrintTableHeader(const std::vector<std::string>& columns,
                      const std::vector<int>& widths) {
  PrintTableRow(columns, widths);
  int total = 0;
  for (int w : widths) total += w + 2;
  std::string rule(static_cast<size_t>(total), '-');
  std::printf("%s\n", rule.c_str());
}

void PrintTableRow(const std::vector<std::string>& cells,
                   const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s  ", width, cells[i].c_str());
  }
  std::printf("\n");
}

std::string FormatSeconds(double seconds, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, seconds);
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ratio);
  return buf;
}

}  // namespace phoenix::bench
