// Result-delivery fast-path sweep: batch size x prefetch on/off, native and
// Phoenix drivers, over one forward-only scan.
//
// Measures elapsed seconds and wire round trips per configuration — the
// round-trip economics behind the execute-time piggyback and the pipelined
// read-ahead. With prefetch off and batch 1 the numbers reproduce the
// classic row-at-a-time protocol (1 execute + 1 fetch per row).
//
// Flags: --rows=5000  --runs=1  --json=PATH  --obs=on|off  --trace=on|off

#include <cstdio>

#include "bench_util.h"

namespace phoenix::bench {
namespace {

constexpr uint64_t kBatches[] = {1, 16, 64, 256};

uint64_t InprocRoundTrips() {
  static obs::Counter* const trips =
      obs::Registry::Global().counter("wire.inproc.round_trips");
  return trips->Value();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const int64_t rows = flags.GetInt("rows", 5000);
  const int runs = static_cast<int>(flags.GetInt("runs", 1));

  std::printf(
      "=== Result-delivery sweep: %lld rows, batch x prefetch, %d run%s "
      "===\n",
      static_cast<long long>(rows), runs, runs == 1 ? "" : "s");

  BenchEnv env;
  {
    auto setup = env.Connect("native");
    if (!setup.ok()) {
      std::fprintf(stderr, "connect: %s\n",
                   setup.status().ToString().c_str());
      return 1;
    }
    auto stmt = setup.value()->CreateStatement();
    if (!stmt.ok()) return 1;
    auto st = stmt.value()->ExecDirect(
        "CREATE TABLE fb (id INTEGER PRIMARY KEY, v VARCHAR)");
    if (!st.ok()) {
      std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
      return 1;
    }
    for (int64_t base = 1; base <= rows; base += 500) {
      std::string insert = "INSERT INTO fb VALUES ";
      for (int64_t id = base; id < base + 500 && id <= rows; ++id) {
        if (id > base) insert += ",";
        insert += "(" + std::to_string(id) + ",'v" + std::to_string(id) +
                  "')";
      }
      st = stmt.value()->ExecDirect(insert);
      if (!st.ok()) {
        std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  // Loading is setup, not measurement.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  const std::vector<int> widths = {9, 9, 7, 9, 11, 13, 11};
  PrintTableHeader({"Driver", "Prefetch", "Batch", "Rows", "Seconds",
                    "Round trips", "Trips/row"},
                   widths);

  const char* drivers[2] = {"native", "phoenix"};
  const std::string query = "SELECT id, v FROM fb ORDER BY id";
  for (const char* driver : drivers) {
    for (int prefetch = 1; prefetch >= 0; --prefetch) {
      for (uint64_t batch : kBatches) {
        std::string extra = "PHOENIX_FETCH_BATCH=" + std::to_string(batch);
        if (prefetch == 0) extra += ";PHOENIX_PREFETCH=0";
        double seconds = 0;
        uint64_t trips = 0;
        int64_t fetched = 0;
        for (int run = 0; run < runs; ++run) {
          auto conn = env.Connect(driver, extra);
          if (!conn.ok()) {
            std::fprintf(stderr, "connect(%s): %s\n", driver,
                         conn.status().ToString().c_str());
            return 1;
          }
          uint64_t before = InprocRoundTrips();
          auto elapsed = TimeStatement(conn.value().get(), query, &fetched);
          if (!elapsed.ok()) {
            std::fprintf(stderr, "%s b=%llu: %s\n", driver,
                         static_cast<unsigned long long>(batch),
                         elapsed.status().ToString().c_str());
            return 1;
          }
          seconds += *elapsed;
          trips += InprocRoundTrips() - before;
        }
        seconds /= runs;
        trips /= static_cast<uint64_t>(runs);
        if (obs::Enabled()) {
          // Per-configuration round trips land in the --json dump.
          std::string counter_name = std::string("bench.fetch.") + driver +
                                     (prefetch ? ".fastpath" : ".legacy") +
                                     ".b" + std::to_string(batch) +
                                     ".round_trips";
          obs::Registry::Global().counter(counter_name)->Add(trips);
        }
        char trips_per_row[32];
        std::snprintf(trips_per_row, sizeof(trips_per_row), "%.4f",
                      fetched > 0 ? static_cast<double>(trips) /
                                        static_cast<double>(fetched)
                                  : 0.0);
        PrintTableRow({driver, prefetch ? "on" : "off",
                       std::to_string(batch), std::to_string(fetched),
                       FormatSeconds(seconds), std::to_string(trips),
                       trips_per_row},
                      widths);
      }
    }
  }

  std::printf(
      "\nLegacy batch-1 needs 1 execute + N fetch trips; the fast path "
      "piggybacks batch 1 on the execute and overlaps the rest.\n");
  WriteJsonIfRequested(flags, "bench_fetch",
                       {{"rows", std::to_string(rows)},
                        {"runs", std::to_string(runs)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
