// Reproduces paper Figure 6 and the Section 3.5 measurements: where the
// time goes when Phoenix persists a result set.
//
//   * Figure 6: elapsed time to execute Q11 and (for Phoenix) load its
//     result into the persistent table, across result sizes — native vs
//     Phoenix ("less than a 10% response time hit").
//   * Step breakdown: parse, metadata probe (WHERE 0=1), CREATE TABLE,
//     INSERT-INTO load, reopen (paper: parse .00023 s, metadata .00062 s,
//     create .321 s; dominated by execution + load).
//   * Per-tuple fetch cost, native vs Phoenix (paper: 3.80 ms vs 3.97 ms,
//     <5% overhead).
//   * Ablation (--naive_copy): DESIGN.md D1 — materialize the result by
//     round-tripping rows through the client instead of the server-local
//     INSERT INTO ... SELECT, to show why the paper's one-round-trip load
//     matters.
//
// Flags: --sf=0.02  --points=7  --naive_copy

#include <cstdio>

#include "bench_util.h"
#include "tpc/tpch.h"

namespace phoenix::bench {
namespace {

/// D1 ablation: evaluate the query at the client and ship rows back up —
/// what Phoenix would cost WITHOUT the server-side load procedure.
common::Result<double> NaiveCopyLoad(BenchEnv* env, const std::string& sql,
                                     int64_t* rows_out) {
  PHX_ASSIGN_OR_RETURN(odbc::ConnectionPtr conn, env->Connect("native"));
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
  common::Stopwatch watch;
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));
  common::Schema schema = stmt->ResultSchema();

  PHX_RETURN_IF_ERROR(
      stmt->ExecDirect("DROP TABLE IF EXISTS naive_copy_result"));
  // Statement handles are serially reusable; re-run the query after DDL.
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr ddl, conn->CreateStatement());
  PHX_RETURN_IF_ERROR(ddl->ExecDirect("CREATE TABLE naive_copy_result " +
                                      schema.ToDdlColumnList()));
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(sql));

  // Fetch every row to the client, then insert it back — two network
  // traversals of the data plus per-batch round trips.
  int64_t rows = 0;
  while (true) {
    PHX_ASSIGN_OR_RETURN(std::vector<common::Row> block,
                         stmt->FetchBlock(64));
    if (block.empty()) break;
    std::string insert = "INSERT INTO naive_copy_result VALUES ";
    for (size_t i = 0; i < block.size(); ++i) {
      if (i > 0) insert += ",";
      insert += "(";
      for (size_t c = 0; c < block[i].size(); ++c) {
        if (c > 0) insert += ",";
        insert += block[i][c].ToSqlLiteral();
      }
      insert += ")";
    }
    PHX_RETURN_IF_ERROR(ddl->ExecDirect(insert));
    rows += static_cast<int64_t>(block.size());
  }
  *rows_out = rows;
  double elapsed = watch.ElapsedSeconds();
  ddl->ExecDirect("DROP TABLE IF EXISTS naive_copy_result").ok();
  return elapsed;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const double sf = flags.GetDouble("sf", 0.02);
  const int points = static_cast<int>(flags.GetInt("points", 7));
  const bool naive_copy = flags.GetBool("naive_copy", false);

  BenchEnv env;
  tpc::TpchConfig config;
  config.scale_factor = sf;
  tpc::TpchGenerator generator(config);
  auto load = generator.Load(env.server());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  // Data generation is setup, not measurement — start the obs dump clean.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  std::printf(
      "=== Figure 6: Q11 execute/load time, native vs Phoenix "
      "(SF %.3f) ===\n",
      sf);
  std::vector<int> widths = {12, 12, 13, 8};
  std::vector<std::string> header = {"Result size", "Native (s)",
                                     "Phoenix (s)", "Ratio"};
  if (naive_copy) {
    widths.push_back(16);
    header.push_back("Naive copy (s)");
  }
  PrintTableHeader(header, widths);

  std::vector<double> fractions;
  double fraction = 0.05 / sf * 0.01;
  for (int i = 0; i < points; ++i) {
    fractions.push_back(fraction);
    fraction /= 2.5;
  }
  fractions.push_back(0.0);

  phx::PhoenixConnection* last_phoenix_conn = nullptr;
  odbc::ConnectionPtr phoenix_conn_holder;

  for (double f : fractions) {
    std::string sql = tpc::TpchQuery(11, f);
    int64_t native_rows = 0;

    // Native: execute + drain.
    auto native_conn = env.Connect("native");
    if (!native_conn.ok()) return 1;
    auto native_time =
        TimeStatement(native_conn.value().get(), sql, &native_rows);
    if (!native_time.ok()) {
      std::fprintf(stderr, "native: %s\n",
                   native_time.status().ToString().c_str());
      return 1;
    }

    // Phoenix: execute (probe+create+load+reopen) + drain.
    auto phoenix_conn = env.Connect("phoenix");
    if (!phoenix_conn.ok()) return 1;
    int64_t phoenix_rows = 0;
    auto phoenix_time =
        TimeStatement(phoenix_conn.value().get(), sql, &phoenix_rows);
    if (!phoenix_time.ok()) {
      std::fprintf(stderr, "phoenix: %s\n",
                   phoenix_time.status().ToString().c_str());
      return 1;
    }

    std::vector<std::string> row = {
        std::to_string(native_rows), FormatSeconds(*native_time),
        FormatSeconds(*phoenix_time),
        FormatRatio(*native_time > 0 ? *phoenix_time / *native_time : 0)};
    if (naive_copy) {
      int64_t copy_rows = 0;
      auto copy_time = NaiveCopyLoad(&env, sql, &copy_rows);
      row.push_back(copy_time.ok() ? FormatSeconds(*copy_time) : "err");
    }
    PrintTableRow(row, widths);

    last_phoenix_conn =
        static_cast<phx::PhoenixConnection*>(phoenix_conn.value().get());
    phoenix_conn_holder = std::move(phoenix_conn).value();
  }

  // Step breakdown from the last Phoenix connection (per-statement
  // averages across this run's statements).
  if (last_phoenix_conn != nullptr) {
    const phx::PhoenixStats& stats = last_phoenix_conn->stats();
    std::printf(
        "\n=== Section 3.5 step breakdown (averages, last connection) "
        "===\n");
    const std::vector<int> breakdown_widths = {26, 14};
    PrintTableHeader({"Step", "Avg (s)"}, breakdown_widths);
    PrintTableRow({"parse / classify",
                   FormatSeconds(stats.parse.AverageSeconds(), 6)},
                  breakdown_widths);
    PrintTableRow(
        {"metadata probe (0=1)",
         FormatSeconds(stats.metadata_probe.AverageSeconds(), 6)},
        breakdown_widths);
    PrintTableRow({"create persistent table",
                   FormatSeconds(stats.create_table.AverageSeconds(), 6)},
                  breakdown_widths);
    PrintTableRow({"execute + load result",
                   FormatSeconds(stats.load_result.AverageSeconds(), 6)},
                  breakdown_widths);
    PrintTableRow({"reopen (SELECT * FROM T)",
                   FormatSeconds(stats.reopen.AverageSeconds(), 6)},
                  breakdown_widths);
    std::printf(
        "Paper: parse .00023 s, metadata .00062 s, create table .321 s — "
        "dominated by execute+load.\n");
  }

  // Per-tuple fetch cost comparison on a mid-size result.
  {
    std::string sql = tpc::TpchQuery(11, 0.0);
    auto native_conn = env.Connect("native");
    auto phoenix_conn = env.Connect("phoenix");
    if (!native_conn.ok() || !phoenix_conn.ok()) return 1;
    double per_tuple[2] = {0, 0};
    odbc::Connection* conns[2] = {native_conn.value().get(),
                                  phoenix_conn.value().get()};
    for (int d = 0; d < 2; ++d) {
      auto stmt = conns[d]->CreateStatement();
      if (!stmt.ok() || !stmt.value()->ExecDirect(sql).ok()) return 1;
      common::Row row;
      common::Stopwatch watch;
      int64_t fetched = 0;
      while (stmt.value()->Fetch(&row).value()) ++fetched;
      per_tuple[d] = fetched > 0 ? watch.ElapsedSeconds() /
                                       static_cast<double>(fetched)
                                 : 0;
    }
    std::printf(
        "\nPer-tuple fetch: native %.5f s, Phoenix %.5f s (ratio %.3f; "
        "paper: .00380 vs .00397, <5%% overhead)\n",
        per_tuple[0], per_tuple[1],
        per_tuple[0] > 0 ? per_tuple[1] / per_tuple[0] : 0);
  }
  WriteJsonIfRequested(flags, "bench_q11_overheads",
                       {{"sf", FormatSeconds(sf, 3)},
                        {"points", std::to_string(points)},
                        {"naive_copy", naive_copy ? "true" : "false"}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
