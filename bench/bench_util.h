#ifndef PHOENIX_BENCH_BENCH_UTIL_H_
#define PHOENIX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "engine/server.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "odbc/driver_manager.h"
#include "odbc/native_driver.h"
#include "phoenix/phoenix_driver.h"
#include "repl/log_shipper.h"
#include "repl/standby.h"
#include "wire/in_process.h"

namespace phoenix::bench {

/// Minimal --flag=value parser shared by all bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  double GetDouble(const std::string& name, double fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// A server + driver-manager environment with the paper's network model
/// (100 Mbit LAN, ~0.2 ms RTT) on a fresh data directory.
class BenchEnv {
 public:
  explicit BenchEnv(wire::NetworkModel model = DefaultNetwork(),
                    engine::ServerOptions options = engine::ServerOptions());
  ~BenchEnv();

  static wire::NetworkModel DefaultNetwork() {
    return wire::NetworkModel{/*round_trip_micros=*/200,
                              /*bytes_per_second=*/12'500'000};
  }

  engine::SimulatedServer* server() { return server_.get(); }
  odbc::DriverManager& dm() { return dm_; }
  const std::string& data_dir() const { return data_dir_; }

  /// Connects with "DRIVER=<driver>;UID=bench;<extra>".
  common::Result<odbc::ConnectionPtr> Connect(const std::string& driver,
                                              const std::string& extra = "");

 private:
  std::string data_dir_;
  std::unique_ptr<engine::SimulatedServer> server_;
  odbc::DriverManager dm_;
  odbc::DriverPtr native_;
};

/// A warm-standby pair on fresh data directories: a primary with an attached
/// log shipper, a standby applying the stream, and a driver manager whose
/// transport factory routes by the SERVER= attribute ("primary"/"standby").
/// Used by the failover arms of bench_recovery and bench_chaos.
class ClusterEnv {
 public:
  explicit ClusterEnv(engine::ServerOptions primary_options,
                      wire::NetworkModel model = wire::NetworkModel::None());
  ~ClusterEnv();

  engine::SimulatedServer* primary() { return primary_.get(); }
  engine::SimulatedServer* standby() { return standby_.get(); }
  repl::LogShipper* shipper() { return shipper_.get(); }
  repl::StandbyNode* node() { return standby_node_.get(); }
  odbc::DriverManager& dm() { return dm_; }

  /// Blocks until the standby's applied LSN reaches the ship stream's end.
  bool WaitCaughtUp(int timeout_ms = 30'000);

  /// Connects with "DRIVER=<driver>;UID=bench;<extra>". Pass SERVER= /
  /// FAILOVER= attributes in `extra` to pick endpoints.
  common::Result<odbc::ConnectionPtr> Connect(const std::string& driver,
                                              const std::string& extra = "");

 private:
  std::string primary_dir_;
  std::string standby_dir_;
  std::unique_ptr<repl::LogShipper> shipper_;
  std::unique_ptr<engine::SimulatedServer> primary_;
  std::unique_ptr<engine::SimulatedServer> standby_;
  odbc::DriverManager dm_;
  odbc::DriverPtr native_;
  std::unique_ptr<repl::StandbyNode> standby_node_;
};

/// Splits a comma-separated flag value ("1,2,4,8") into its elements,
/// skipping empties.
std::vector<std::string> SplitList(const std::string& s);

/// Applies the shared observability flags:
///   --obs=off     disable ALL metric recording (the <1% overhead mode)
///   --trace=off   disable trace-event capture only (histograms stay on)
/// Also handles --list-fault-points: prints the fault-point catalog (for
/// authoring PHOENIX_FAULTS specs) and exits.
void ApplyObsFlags(const Flags& flags);

/// When --json=PATH was given, dumps the obs registry with run metadata
/// (bench name, git sha, UTC timestamp, plus caller config pairs such as
/// scale factor) to PATH. Returns true iff a file was written.
bool WriteJsonIfRequested(const Flags& flags, const std::string& bench_name,
                          const obs::Metadata& config = {});

/// Runs one statement to completion (execute + drain + close) and returns
/// elapsed seconds.
common::Result<double> TimeStatement(odbc::Connection* conn,
                                     const std::string& sql,
                                     int64_t* rows_out = nullptr);

/// Fixed-width table printing (paper-style output).
void PrintTableHeader(const std::vector<std::string>& columns,
                      const std::vector<int>& widths);
void PrintTableRow(const std::vector<std::string>& cells,
                   const std::vector<int>& widths);
std::string FormatSeconds(double seconds, int digits = 3);
std::string FormatRatio(double ratio);

}  // namespace phoenix::bench

#endif  // PHOENIX_BENCH_BENCH_UTIL_H_
