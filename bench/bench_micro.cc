// Microbenchmarks (google-benchmark) for the substrate pieces whose costs
// compose the paper-level results: SQL parsing, the WAL append path, lock
// acquisition, the wire codec, and LIKE matching.

#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "common/strings.h"
#include "engine/lock_manager.h"
#include "engine/wal.h"
#include "sql/parser.h"
#include "tpc/tpch.h"
#include "wire/messages.h"

namespace phoenix {
namespace {

void BM_ParseSimpleSelect(benchmark::State& state) {
  const std::string sql = "SELECT a, b FROM t WHERE id = 42";
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSimpleSelect);

void BM_ParseQ11(benchmark::State& state) {
  const std::string sql = tpc::TpchQuery(11);
  for (auto _ : state) {
    auto stmt = sql::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseQ11);

void BM_ClassifyTokenize(benchmark::State& state) {
  // Phoenix's per-request "one-pass parse".
  const std::string sql = tpc::TpchQuery(3);
  for (auto _ : state) {
    auto tokens = sql::Tokenize(sql);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_ClassifyTokenize);

void BM_WalRecordSerialize(benchmark::State& state) {
  engine::WalRecord record;
  record.type = engine::WalRecordType::kInsert;
  record.txn = 7;
  record.table_name = "lineitem";
  for (int i = 0; i < 16; ++i) {
    record.row.push_back(common::Value::Int(i * 1000));
  }
  for (auto _ : state) {
    auto bytes = record.Serialize();
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_WalRecordSerialize);

void BM_LockAcquireRelease(benchmark::State& state) {
  engine::LockManager lm;
  uint64_t txn = 0;
  for (auto _ : state) {
    ++txn;
    lm.Acquire(txn, "t:orders", engine::LockMode::kIX,
               std::chrono::milliseconds(10))
        .ok();
    lm.Acquire(txn, "r:orders#42", engine::LockMode::kX,
               std::chrono::milliseconds(10))
        .ok();
    lm.ReleaseAll(txn);
  }
}
BENCHMARK(BM_LockAcquireRelease);

void BM_WireRowCodec(benchmark::State& state) {
  wire::Response response;
  response.is_query = true;
  for (int i = 0; i < 64; ++i) {
    response.rows.push_back({common::Value::Int(i),
                             common::Value::String("payload-string"),
                             common::Value::Double(3.14)});
  }
  for (auto _ : state) {
    auto bytes = response.Serialize();
    auto parsed = wire::Response::Deserialize(bytes.data(), bytes.size());
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_WireRowCodec);

void BM_SqlLikeMatch(benchmark::State& state) {
  const std::string text =
      "forest goldenrod chiffon midnight linen seashell";
  for (auto _ : state) {
    bool match = common::SqlLikeMatch(text, "%goldenrod%linen%");
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_SqlLikeMatch);

void BM_RowApproxBytes(benchmark::State& state) {
  common::Row row = {common::Value::Int(5),
                     common::Value::String(std::string(120, 'x')),
                     common::Value::Double(2.5)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::ApproxRowBytes(row));
  }
}
BENCHMARK(BM_RowApproxBytes);

}  // namespace
}  // namespace phoenix

BENCHMARK_MAIN();
