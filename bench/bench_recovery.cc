// Reproduces paper Figures 3 and 4 (and the Section 3.4 numbers): time to
// recover a database session vs. result-set size, split into the two
// recovery phases:
//   * virtual-session recovery (reconnect, option replay, handle re-map) —
//     constant, independent of result size (paper: 0.37 s);
//   * SQL-state recovery (reopen the persistent result and reposition to
//     the interruption point) — grows with result size when repositioning
//     sequences through the result from the CLIENT (Figure 3) and is ~10x
//     cheaper when a stored procedure advances the cursor at the SERVER
//     (Figure 4).
//
// Method per the paper: submit Q11 with varying Fraction, fetch until only
// a few tuples remain unread, crash the server, restart it, and measure the
// recovery that answers the outstanding fetch.
//
// Flags: --sf=0.02  --points=8  --rtt_us=200  --mbps=100
//   (--rtt_us/--mbps sweep the network model: client-side repositioning
//    cost scales with the round-trip time, server-side does not)
//
// Engine-restart MTTR sweep (activated by --rows=N): measures crash →
// recovered wall time at the storage-engine level across the recovery
// matrix — serial vs parallel WAL replay and full vs incremental
// checkpoints with the WAL-bytes background trigger armed. The first
// config (incremental=0, threads=0) is the pre-PR recovery path and the
// speedup baseline.
//
// Flags: --rows=20000   rows bulk-loaded per table before the checkpoint
//        --tables=8     persistent tables
//        --wal_tail=8000  single-row committed txns appended after the
//                         checkpoint (the redo tail replayed at recovery)
//        --threads=0,1,2,4  PHOENIX_RECOVERY_THREADS sweep
//        --incremental=0,1  checkpoint-format sweep
//        --budget=262144  PHOENIX_CHECKPOINT_WAL_BYTES for the incremental
//                         arm (0 disarms the background trigger)

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_util.h"
#include "engine/database.h"
#include "tpc/tpch.h"

namespace phoenix::bench {
namespace {

struct Point {
  int64_t result_size = 0;
  double virtual_session = 0;
  double sql_state = 0;
};

common::Result<Point> MeasureRecovery(BenchEnv* env, const std::string& mode,
                                      double fraction) {
  PHX_ASSIGN_OR_RETURN(
      odbc::ConnectionPtr conn,
      env->Connect("phoenix",
                   "PHOENIX_REPOSITION=" + mode + ";PHOENIX_RETRY_MS=2"));
  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn.get());
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(tpc::TpchQuery(11, fraction)));

  // Count the result (via the persistent table) so we can stop 3 short.
  auto* phoenix_stmt = static_cast<phx::PhoenixStatement*>(stmt.get());
  int64_t total = 0;
  {
    PHX_ASSIGN_OR_RETURN(odbc::ConnectionPtr counter, env->Connect("native"));
    PHX_ASSIGN_OR_RETURN(odbc::StatementPtr count_stmt,
                         counter->CreateStatement());
    PHX_RETURN_IF_ERROR(count_stmt->ExecDirect(
        "SELECT COUNT(*) FROM " + phoenix_stmt->result_table()));
    common::Row row;
    PHX_ASSIGN_OR_RETURN(bool more, count_stmt->Fetch(&row));
    if (more) total = row[0].AsInt();
  }
  if (total < 4) {
    stmt->CloseCursor().ok();
    return common::Status::Aborted("result too small: " +
                                   std::to_string(total));
  }

  // Fetch until near the end of the result set.
  common::Row row;
  for (int64_t i = 0; i < total - 3; ++i) {
    PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
    if (!more) return common::Status::Internal("short result");
  }

  // "Crash" the server, restart it, then issue the outstanding fetch — the
  // recovery happens inside that fetch and is timed by Phoenix.
  env->server()->Crash();
  PHX_RETURN_IF_ERROR(env->server()->Restart());
  PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
  if (!more) return common::Status::Internal("missing tail tuple");

  Point point;
  point.result_size = total;
  point.virtual_session =
      phoenix_conn->last_recovery().virtual_session_seconds;
  point.sql_state = phoenix_conn->last_recovery().sql_state_seconds;
  stmt->CloseCursor().ok();
  return point;
}

// ---------------------------------------------------------------------------
// Engine-restart MTTR sweep (--rows mode)
// ---------------------------------------------------------------------------

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int EngineSweepMain(const Flags& flags) {
  using engine::Database;
  using engine::DatabaseOptions;
  using engine::TablePtr;
  using engine::Transaction;
  using common::Row;
  using common::Value;

  const int64_t rows = flags.GetInt("rows", 20'000);
  const int64_t tables = flags.GetInt("tables", 8);
  const int64_t wal_tail = flags.GetInt("wal_tail", 8'000);
  // Tail writes concentrate on the first --hot tables (default 2): the
  // common skewed-write shape incremental checkpoints exploit — cold
  // tables carry forward by reference instead of being rewritten.
  const int64_t hot =
      std::max<int64_t>(1, std::min(flags.GetInt("hot", 2), tables));
  const int64_t budget = flags.GetInt("budget", 256 * 1024);
  std::vector<std::string> threads_list =
      SplitList(flags.GetString("threads", "0,1,2,4"));
  std::vector<std::string> inc_list =
      SplitList(flags.GetString("incremental", "0,1"));
  const common::Schema schema({{"id", common::ValueType::kInt, false},
                               {"v", common::ValueType::kString, true}});

  std::printf(
      "Engine-restart MTTR sweep: %lld tables x %lld rows, %lld-txn WAL "
      "tail\n(incremental arm runs with the WAL-bytes trigger at %lld "
      "bytes; incremental=0 threads=0 is the pre-PR baseline)\n\n",
      static_cast<long long>(tables), static_cast<long long>(rows),
      static_cast<long long>(wal_tail), static_cast<long long>(budget));
  const std::vector<int> widths = {12, 9, 13, 14, 12, 12, 9};
  PrintTableHeader({"Incremental", "Threads", "Tail (bytes)", "Checkpoints",
                    "Load (s)", "MTTR (s)", "Speedup"},
                   widths);

  std::map<std::string, uint32_t> baseline_digests;
  double baseline_mttr = 0;
  double best_mttr = 0;
  obs::Metadata meta = {
      {"rows", std::to_string(rows)},
      {"tables", std::to_string(tables)},
      {"wal_tail", std::to_string(wal_tail)},
      {"budget", std::to_string(budget)},
      {"hot", std::to_string(hot)},
  };

  int config_index = 0;
  for (const std::string& inc_str : inc_list) {
    for (const std::string& threads_str : threads_list) {
      const int incremental = std::atoi(inc_str.c_str());
      const int threads = std::atoi(threads_str.c_str());
      const std::string dir = "/tmp/phx_bench_recovery_" +
                              std::to_string(::getpid()) + "_" +
                              std::to_string(config_index++);
      std::system(("rm -rf " + dir).c_str());

      DatabaseOptions options;
      options.data_dir = dir;
      options.recovery_threads = threads;
      options.incremental_checkpoints = incremental;
      options.checkpoint_wal_bytes = incremental != 0 ? budget : 0;
      auto opened = Database::Open(options);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      std::unique_ptr<Database> db = std::move(opened).value();

      // Load + full checkpoint, then the redo tail of single-row commits.
      // With the trigger armed the tail keeps getting folded into new
      // checkpoint generations, so the crash finds a short redo tail; the
      // baseline replays all wal_tail transactions.
      const auto load_start = std::chrono::steady_clock::now();
      std::vector<TablePtr> table_ptrs;
      for (int64_t t = 0; t < tables; ++t) {
        const std::string name = "rt" + std::to_string(t);
        Transaction* txn = db->Begin(0);
        if (!db->CreateTable(txn, name, schema, {"id"}, false, false, 0)
                 .ok() ||
            !db->Commit(txn).ok()) {
          std::fprintf(stderr, "create %s failed\n", name.c_str());
          return 1;
        }
        TablePtr table = db->ResolveTable(name, 0).value();
        std::vector<Row> bulk;
        bulk.reserve(rows);
        for (int64_t i = 0; i < rows; ++i) {
          bulk.push_back({Value::Int(i), Value::String("base")});
        }
        txn = db->Begin(0);
        if (!db->InsertBulk(txn, table, std::move(bulk)).ok() ||
            !db->Commit(txn).ok()) {
          std::fprintf(stderr, "load %s failed\n", name.c_str());
          return 1;
        }
        table_ptrs.push_back(std::move(table));
      }
      if (auto st = db->Checkpoint(); !st.ok()) {
        std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
        return 1;
      }
      for (int64_t k = 0; k < wal_tail; ++k) {
        TablePtr& table = table_ptrs[static_cast<size_t>(k % hot)];
        const auto id = static_cast<engine::RowId>((k / hot) % rows);
        Transaction* txn = db->Begin(0);
        if (!db->UpdateRow(txn, table, id,
                           {Value::Int(static_cast<int64_t>(id)),
                            Value::String("tail-" + std::to_string(k))})
                 .ok() ||
            !db->Commit(txn).ok()) {
          std::fprintf(stderr, "tail update failed\n");
          return 1;
        }
      }
      const double load_s = SecondsSince(load_start);

      std::map<std::string, uint32_t> digests;
      for (int64_t t = 0; t < tables; ++t) {
        digests["rt" + std::to_string(t)] =
            table_ptrs[static_cast<size_t>(t)]->ContentDigest();
      }
      table_ptrs.clear();
      const uint64_t tail_bytes = db->wal_durable_bytes();
      const uint64_t checkpoints = db->checkpoint_generation();

      db->CrashVolatile();
      const auto recover_start = std::chrono::steady_clock::now();
      if (auto st = db->Recover(); !st.ok()) {
        std::fprintf(stderr, "recover failed: %s\n", st.ToString().c_str());
        return 1;
      }
      const double mttr = SecondsSince(recover_start);

      for (const auto& [name, digest] : digests) {
        auto table = db->ResolveTable(name, 0);
        if (!table.ok() || table.value()->ContentDigest() != digest) {
          std::fprintf(stderr,
                       "DIGEST MISMATCH after recovery: %s (inc=%d "
                       "threads=%d)\n",
                       name.c_str(), incremental, threads);
          return 1;
        }
      }
      if (baseline_digests.empty()) {
        baseline_digests = digests;
        baseline_mttr = mttr;
      } else if (digests != baseline_digests) {
        std::fprintf(stderr, "cross-config digest mismatch (inc=%d t=%d)\n",
                     incremental, threads);
        return 1;
      }
      best_mttr = mttr;

      const std::string key =
          "inc" + std::to_string(incremental) + "_t" + std::to_string(threads);
      meta.emplace_back("mttr_s_" + key, FormatSeconds(mttr));
      meta.emplace_back("tail_bytes_" + key, std::to_string(tail_bytes));
      PrintTableRow({std::to_string(incremental), std::to_string(threads),
                     std::to_string(tail_bytes), std::to_string(checkpoints),
                     FormatSeconds(load_s), FormatSeconds(mttr),
                     baseline_mttr > 0 ? FormatRatio(baseline_mttr / mttr)
                                       : "1.0x"},
                    widths);

      db.reset();
      std::system(("rm -rf " + dir).c_str());
    }
  }

  if (baseline_mttr > 0 && best_mttr > 0) {
    std::printf(
        "\nLargest config vs pre-PR baseline: %.1fx MTTR reduction "
        "(short incremental redo tail + partitioned replay).\n",
        baseline_mttr / best_mttr);
    meta.emplace_back("speedup_final", FormatRatio(baseline_mttr / best_mttr));
  }
  WriteJsonIfRequested(flags, "bench_recovery_sweep", meta);
  return 0;
}

// ---------------------------------------------------------------------------
// Failover vs restart MTTR (--failover mode)
// ---------------------------------------------------------------------------
//
// Same workload shape as the engine sweep at its largest configuration
// (incremental checkpoints + parallel replay), but measured end to end as a
// client sees it: crash → first answered query. The restart arm pays
// checkpoint load + redo replay on the dead node; the failover arm promotes
// a warm standby that already applied the shipped stream, so its MTTR is
// promotion + reconnect, independent of database size.
//
// Flags: --failover=1 --rows=20000 --tables=8 --wal_tail=8000
//        --threads=4 --incremental=1 --budget=262144 --json=PATH

int FailoverMain(const Flags& flags) {
  using engine::Database;
  using engine::TablePtr;
  using engine::Transaction;
  using common::Row;
  using common::Value;

  const int64_t rows = flags.GetInt("rows", 20'000);
  const int64_t tables = flags.GetInt("tables", 8);
  const int64_t wal_tail = flags.GetInt("wal_tail", 8'000);
  const int64_t hot =
      std::max<int64_t>(1, std::min(flags.GetInt("hot", 2), tables));
  const common::Schema schema({{"id", common::ValueType::kInt, false},
                               {"v", common::ValueType::kString, true}});

  engine::ServerOptions options;
  options.db.recovery_threads =
      static_cast<int>(flags.GetInt("threads", 4));
  options.db.incremental_checkpoints =
      static_cast<int>(flags.GetInt("incremental", 1));
  options.db.checkpoint_wal_bytes =
      options.db.incremental_checkpoints != 0
          ? flags.GetInt("budget", 256 * 1024)
          : 0;
  ClusterEnv env(options);
  Database* db = env.primary()->database();

  std::printf(
      "Failover vs restart MTTR: %lld tables x %lld rows, %lld-txn WAL "
      "tail\n(restart arm runs the largest recovery config: incremental=%d "
      "threads=%d)\n\n",
      static_cast<long long>(tables), static_cast<long long>(rows),
      static_cast<long long>(wal_tail), options.db.incremental_checkpoints,
      options.db.recovery_threads);

  std::vector<TablePtr> table_ptrs;
  for (int64_t t = 0; t < tables; ++t) {
    const std::string name = "rt" + std::to_string(t);
    Transaction* txn = db->Begin(0);
    if (!db->CreateTable(txn, name, schema, {"id"}, false, false, 0).ok() ||
        !db->Commit(txn).ok()) {
      std::fprintf(stderr, "create %s failed\n", name.c_str());
      return 1;
    }
    TablePtr table = db->ResolveTable(name, 0).value();
    std::vector<Row> bulk;
    bulk.reserve(rows);
    for (int64_t i = 0; i < rows; ++i) {
      bulk.push_back({Value::Int(i), Value::String("base")});
    }
    txn = db->Begin(0);
    if (!db->InsertBulk(txn, table, std::move(bulk)).ok() ||
        !db->Commit(txn).ok()) {
      std::fprintf(stderr, "load %s failed\n", name.c_str());
      return 1;
    }
    table_ptrs.push_back(std::move(table));
  }
  if (auto st = db->Checkpoint(); !st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (int64_t k = 0; k < wal_tail; ++k) {
    TablePtr& table = table_ptrs[static_cast<size_t>(k % hot)];
    const auto id = static_cast<engine::RowId>((k / hot) % rows);
    Transaction* txn = db->Begin(0);
    if (!db->UpdateRow(txn, table, id,
                       {Value::Int(static_cast<int64_t>(id)),
                        Value::String("tail-" + std::to_string(k))})
             .ok() ||
        !db->Commit(txn).ok()) {
      std::fprintf(stderr, "tail update failed\n");
      return 1;
    }
  }
  std::map<std::string, uint32_t> digests;
  for (int64_t t = 0; t < tables; ++t) {
    digests["rt" + std::to_string(t)] =
        table_ptrs[static_cast<size_t>(t)]->ContentDigest();
  }
  table_ptrs.clear();
  if (!env.WaitCaughtUp()) {
    std::fprintf(stderr, "standby never caught up\n");
    return 1;
  }

  // A "usable session" means an answered query, not just an accepted TCP
  // connect — both arms pay the same connect + COUNT(*) epilogue.
  auto first_query = [&env](const std::string& server) -> common::Status {
    PHX_ASSIGN_OR_RETURN(odbc::ConnectionPtr conn,
                         env.Connect("native", "SERVER=" + server));
    PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
    PHX_RETURN_IF_ERROR(stmt->ExecDirect("SELECT COUNT(*) FROM rt0"));
    Row row;
    PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
    return more ? common::Status::OK()
                : common::Status::Internal("empty COUNT result");
  };

  // Restart arm: the classic single-node story — wait out the dead node's
  // full recovery.
  env.primary()->Crash();
  const auto restart_start = std::chrono::steady_clock::now();
  if (auto st = env.primary()->Restart(); !st.ok()) {
    std::fprintf(stderr, "restart failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (auto st = first_query("primary"); !st.ok()) {
    std::fprintf(stderr, "post-restart query failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const double restart_mttr = SecondsSince(restart_start);

  // Failover arm: kill the primary for good and promote the warm standby.
  env.primary()->Crash();
  const auto failover_start = std::chrono::steady_clock::now();
  auto promoted = env.node()->Promote(0);
  if (!promoted.ok()) {
    std::fprintf(stderr, "promote failed: %s\n",
                 promoted.status().ToString().c_str());
    return 1;
  }
  if (auto st = first_query("standby"); !st.ok()) {
    std::fprintf(stderr, "post-failover query failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const double failover_mttr = SecondsSince(failover_start);

  // The promoted standby must be byte-for-byte the database the clients
  // were using (committed-only workload, so strict slot-order digests hold).
  for (const auto& [name, digest] : digests) {
    auto table = env.standby()->database()->ResolveTable(name, 0);
    if (!table.ok() || table.value()->ContentDigest() != digest) {
      std::fprintf(stderr, "DIGEST MISMATCH on promoted standby: %s\n",
                   name.c_str());
      return 1;
    }
  }

  const std::vector<int> widths = {10, 12, 12};
  PrintTableHeader({"Arm", "MTTR (s)", "Speedup"}, widths);
  PrintTableRow({"restart", FormatSeconds(restart_mttr), "1.0x"}, widths);
  PrintTableRow({"failover", FormatSeconds(failover_mttr),
                 FormatRatio(restart_mttr / failover_mttr) + "x"},
                widths);
  std::printf("\nFailover MTTR is promotion + reconnect — independent of "
              "checkpoint size and redo-tail length; restart MTTR scales "
              "with both.\n");

  WriteJsonIfRequested(
      flags, "bench_failover_mttr",
      {{"rows", std::to_string(rows)},
       {"tables", std::to_string(tables)},
       {"wal_tail", std::to_string(wal_tail)},
       {"threads", std::to_string(options.db.recovery_threads)},
       {"incremental", std::to_string(options.db.incremental_checkpoints)},
       {"restart_mttr_s", FormatSeconds(restart_mttr, 6)},
       {"failover_mttr_s", FormatSeconds(failover_mttr, 6)},
       {"speedup", FormatRatio(restart_mttr / failover_mttr)},
       {"standby_applied_lsn", std::to_string(env.node()->applied_lsn())},
       {"promoted_epoch", std::to_string(promoted.value())}});
  if (failover_mttr >= restart_mttr) {
    std::fprintf(stderr,
                 "FAIL: failover MTTR did not beat restart MTTR\n");
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  if (flags.GetBool("failover", false)) return FailoverMain(flags);
  if (flags.GetInt("rows", 0) > 0) return EngineSweepMain(flags);
  const double sf = flags.GetDouble("sf", 0.02);
  const int points = static_cast<int>(flags.GetInt("points", 8));

  wire::NetworkModel model;
  model.round_trip_micros =
      static_cast<uint64_t>(flags.GetInt("rtt_us", 200));
  model.bytes_per_second =
      static_cast<uint64_t>(flags.GetDouble("mbps", 100) * 125'000);
  BenchEnv env(model);
  tpc::TpchConfig config;
  config.scale_factor = sf;
  tpc::TpchGenerator generator(config);
  auto load = generator.Load(env.server());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  // Data generation is setup, not measurement — start the obs dump clean.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  // Fraction sweep: 0 yields the full Q11 result; larger fractions shrink
  // it (the paper's x-axis of "somewhat arbitrary looking result sizes").
  std::vector<double> fractions;
  double base = 0.05 / sf * 0.01;  // start small enough to keep a few rows
  for (int i = 0; i < points; ++i) {
    fractions.push_back(base);
    base /= 2.2;
  }
  fractions.push_back(0.0);

  const char* figures[2] = {
      "Figure 3: repositioning at the CLIENT (fetch-and-discard)",
      "Figure 4: repositioning at the SERVER (advance procedure)"};
  const char* modes[2] = {"client", "server"};

  double sql_state_totals[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    std::printf("=== %s ===\n", figures[m]);
    const std::vector<int> widths = {12, 20, 18};
    PrintTableHeader({"Result size", "Virtual session (s)", "SQL state (s)"},
                     widths);
    for (double fraction : fractions) {
      auto point = MeasureRecovery(&env, modes[m], fraction);
      if (!point.ok()) {
        if (point.status().code() == common::StatusCode::kAborted) {
          continue;  // fraction produced a tiny result — skip the point
        }
        std::fprintf(stderr, "point failed: %s\n",
                     point.status().ToString().c_str());
        return 1;
      }
      PrintTableRow({std::to_string(point->result_size),
                     FormatSeconds(point->virtual_session),
                     FormatSeconds(point->sql_state)},
                    widths);
      sql_state_totals[m] += point->sql_state;
    }
    std::printf("\n");
  }

  if (sql_state_totals[1] > 0) {
    std::printf(
        "SQL-state recovery, client/server repositioning cost ratio: "
        "%.1fx (paper: ~10x for larger results)\n",
        sql_state_totals[0] / sql_state_totals[1]);
  }
  std::printf(
      "Virtual-session recovery is constant w.r.t. result size "
      "(paper: 0.37 s on year-2000 hardware).\n");
  WriteJsonIfRequested(
      flags, "bench_recovery",
      {{"sf", FormatSeconds(sf, 3)},
       {"points", std::to_string(points)},
       {"rtt_us", std::to_string(model.round_trip_micros)},
       {"bytes_per_second", std::to_string(model.bytes_per_second)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
