// Reproduces paper Figures 3 and 4 (and the Section 3.4 numbers): time to
// recover a database session vs. result-set size, split into the two
// recovery phases:
//   * virtual-session recovery (reconnect, option replay, handle re-map) —
//     constant, independent of result size (paper: 0.37 s);
//   * SQL-state recovery (reopen the persistent result and reposition to
//     the interruption point) — grows with result size when repositioning
//     sequences through the result from the CLIENT (Figure 3) and is ~10x
//     cheaper when a stored procedure advances the cursor at the SERVER
//     (Figure 4).
//
// Method per the paper: submit Q11 with varying Fraction, fetch until only
// a few tuples remain unread, crash the server, restart it, and measure the
// recovery that answers the outstanding fetch.
//
// Flags: --sf=0.02  --points=8  --rtt_us=200  --mbps=100
//   (--rtt_us/--mbps sweep the network model: client-side repositioning
//    cost scales with the round-trip time, server-side does not)

#include <cstdio>

#include "bench_util.h"
#include "tpc/tpch.h"

namespace phoenix::bench {
namespace {

struct Point {
  int64_t result_size = 0;
  double virtual_session = 0;
  double sql_state = 0;
};

common::Result<Point> MeasureRecovery(BenchEnv* env, const std::string& mode,
                                      double fraction) {
  PHX_ASSIGN_OR_RETURN(
      odbc::ConnectionPtr conn,
      env->Connect("phoenix",
                   "PHOENIX_REPOSITION=" + mode + ";PHOENIX_RETRY_MS=2"));
  auto* phoenix_conn = static_cast<phx::PhoenixConnection*>(conn.get());
  PHX_ASSIGN_OR_RETURN(odbc::StatementPtr stmt, conn->CreateStatement());
  PHX_RETURN_IF_ERROR(stmt->ExecDirect(tpc::TpchQuery(11, fraction)));

  // Count the result (via the persistent table) so we can stop 3 short.
  auto* phoenix_stmt = static_cast<phx::PhoenixStatement*>(stmt.get());
  int64_t total = 0;
  {
    PHX_ASSIGN_OR_RETURN(odbc::ConnectionPtr counter, env->Connect("native"));
    PHX_ASSIGN_OR_RETURN(odbc::StatementPtr count_stmt,
                         counter->CreateStatement());
    PHX_RETURN_IF_ERROR(count_stmt->ExecDirect(
        "SELECT COUNT(*) FROM " + phoenix_stmt->result_table()));
    common::Row row;
    PHX_ASSIGN_OR_RETURN(bool more, count_stmt->Fetch(&row));
    if (more) total = row[0].AsInt();
  }
  if (total < 4) {
    stmt->CloseCursor().ok();
    return common::Status::Aborted("result too small: " +
                                   std::to_string(total));
  }

  // Fetch until near the end of the result set.
  common::Row row;
  for (int64_t i = 0; i < total - 3; ++i) {
    PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
    if (!more) return common::Status::Internal("short result");
  }

  // "Crash" the server, restart it, then issue the outstanding fetch — the
  // recovery happens inside that fetch and is timed by Phoenix.
  env->server()->Crash();
  PHX_RETURN_IF_ERROR(env->server()->Restart());
  PHX_ASSIGN_OR_RETURN(bool more, stmt->Fetch(&row));
  if (!more) return common::Status::Internal("missing tail tuple");

  Point point;
  point.result_size = total;
  point.virtual_session =
      phoenix_conn->last_recovery().virtual_session_seconds;
  point.sql_state = phoenix_conn->last_recovery().sql_state_seconds;
  stmt->CloseCursor().ok();
  return point;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  const double sf = flags.GetDouble("sf", 0.02);
  const int points = static_cast<int>(flags.GetInt("points", 8));

  wire::NetworkModel model;
  model.round_trip_micros =
      static_cast<uint64_t>(flags.GetInt("rtt_us", 200));
  model.bytes_per_second =
      static_cast<uint64_t>(flags.GetDouble("mbps", 100) * 125'000);
  BenchEnv env(model);
  tpc::TpchConfig config;
  config.scale_factor = sf;
  tpc::TpchGenerator generator(config);
  auto load = generator.Load(env.server());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  // Data generation is setup, not measurement — start the obs dump clean.
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();

  // Fraction sweep: 0 yields the full Q11 result; larger fractions shrink
  // it (the paper's x-axis of "somewhat arbitrary looking result sizes").
  std::vector<double> fractions;
  double base = 0.05 / sf * 0.01;  // start small enough to keep a few rows
  for (int i = 0; i < points; ++i) {
    fractions.push_back(base);
    base /= 2.2;
  }
  fractions.push_back(0.0);

  const char* figures[2] = {
      "Figure 3: repositioning at the CLIENT (fetch-and-discard)",
      "Figure 4: repositioning at the SERVER (advance procedure)"};
  const char* modes[2] = {"client", "server"};

  double sql_state_totals[2] = {0, 0};
  for (int m = 0; m < 2; ++m) {
    std::printf("=== %s ===\n", figures[m]);
    const std::vector<int> widths = {12, 20, 18};
    PrintTableHeader({"Result size", "Virtual session (s)", "SQL state (s)"},
                     widths);
    for (double fraction : fractions) {
      auto point = MeasureRecovery(&env, modes[m], fraction);
      if (!point.ok()) {
        if (point.status().code() == common::StatusCode::kAborted) {
          continue;  // fraction produced a tiny result — skip the point
        }
        std::fprintf(stderr, "point failed: %s\n",
                     point.status().ToString().c_str());
        return 1;
      }
      PrintTableRow({std::to_string(point->result_size),
                     FormatSeconds(point->virtual_session),
                     FormatSeconds(point->sql_state)},
                    widths);
      sql_state_totals[m] += point->sql_state;
    }
    std::printf("\n");
  }

  if (sql_state_totals[1] > 0) {
    std::printf(
        "SQL-state recovery, client/server repositioning cost ratio: "
        "%.1fx (paper: ~10x for larger results)\n",
        sql_state_totals[0] / sql_state_totals[1]);
  }
  std::printf(
      "Virtual-session recovery is constant w.r.t. result size "
      "(paper: 0.37 s on year-2000 hardware).\n");
  WriteJsonIfRequested(
      flags, "bench_recovery",
      {{"sf", FormatSeconds(sf, 3)},
       {"points", std::to_string(points)},
       {"rtt_us", std::to_string(model.round_trip_micros)},
       {"bytes_per_second", std::to_string(model.bytes_per_second)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
