// Reproduces paper Table 4: TPC-C throughput under (1) native ODBC,
// (2) Phoenix/ODBC, (3) Phoenix/ODBC with client result caching.
//
// Paper result: 391 / 327 / 391 TPM-C with CPU-per-transaction ratios
// 1 / 1.27 / 1 — persisting small OLTP result sets on the server is the
// overhead, and the client cache eliminates it entirely. We report TPM-C
// (new-order commits per minute), total transaction rate, a CPU-per-txn
// ratio from getrusage, and WAL bytes as the disk-traffic proxy.
//
// Flags: --warehouses=5 --users=8 --seconds=10 --warmup=2 --cache=262144
//        --result_cache=BYTES adds a fourth experiment with the
//        cross-statement result cache (DESIGN.md §16); its Trips/txn column
//        shows the repeated reads (stock-level's district probe is the hot
//        one) answered client-side.
//        --sync=none|flush|sync   (DESIGN.md ablation D4: WAL durability —
//        `sync` adds fdatasync per commit, approximating the paper's
//        disk-bound server)
//        --users accepts a comma list ("1,4,8,16") to sweep the terminal
//        count; --group_commit=0 disables WAL group commit (the serialized
//        one-force-per-commit path) for before/after comparisons.
//        --pipeline=1 flushes each transaction body as one or two wire
//        bundles (DESIGN.md §19); the off default is the trips/txn + p50/p99
//        comparison baseline.
//        --shards accepts a comma list ("1,2,4") to sweep the engine shard
//        count (DESIGN.md §20): warehouse partitioning keeps all five bodies
//        single-shard, so throughput should scale while trips/txn holds.
//        --shards=1 is the unsharded baseline (coordinator dark).

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "tpc/tpcc.h"

namespace phoenix::bench {
namespace {

double CpuSeconds() {
  struct rusage usage;
  ::getrusage(RUSAGE_SELF, &usage);
  auto to_seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_seconds(usage.ru_utime) + to_seconds(usage.ru_stime);
}

struct ExperimentResult {
  double tpmc = 0;          // new-order transactions per minute
  double total_tpm = 0;     // all transaction types per minute
  double cpu_per_txn = 0;   // CPU seconds per committed transaction
  uint64_t aborts = 0;      // retried aborts (deadlock timeouts)
  uint64_t wal_bytes = 0;
  // The bench is time-bound, so raw round-trip totals scale with throughput
  // and are incomparable across runs; trips per committed transaction is the
  // normalized delivery-cost metric.
  uint64_t round_trips = 0;  // wire round trips during the measured window
  uint64_t committed = 0;    // committed transactions in the same window
  double p50_ms = 0;         // per-transaction latency, measured window only
  double p99_ms = 0;
};

uint64_t InprocRoundTrips() {
  static obs::Counter* const trips =
      obs::Registry::Global().counter("wire.inproc.round_trips");
  return trips->Value();
}

uint64_t TotalWalBytes(engine::SimulatedServer* server) {
  uint64_t total = 0;
  for (int s = 0; s < server->shard_count(); ++s) {
    total += server->shard_db(s)->wal_bytes_written();
  }
  return total;
}

common::Result<ExperimentResult> RunExperiment(
    const tpc::TpccConfig& config, const std::string& driver,
    const std::string& extra, int users, double warmup_seconds,
    double measure_seconds, engine::WalSyncMode sync_mode,
    int lock_timeout_ms, bool group_commit, bool pipeline, int shards) {
  engine::ServerOptions options;
  // Short lock waits make deadlock aborts cheap; with zero-think-time
  // terminals the abort-retry path is hot, and long waits would turn the
  // measurement into a lock-queueing benchmark instead of a driver one.
  options.db.lock_timeout = std::chrono::milliseconds(lock_timeout_ms);
  options.db.sync_mode = sync_mode;
  options.db.group_commit = group_commit ? 1 : 0;
  options.shards = shards;
  BenchEnv env(BenchEnv::DefaultNetwork(), options);
  tpc::TpccGenerator generator(config);
  PHX_RETURN_IF_ERROR(generator.Load(env.server()));

  std::atomic<bool> measuring{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed_by_type[5];
  std::atomic<uint64_t> aborted{0};
  for (auto& c : committed_by_type) c.store(0);

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int u = 0; u < users; ++u) {
    workers.emplace_back([&, u] {
      auto conn = env.Connect(driver, extra);
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      tpc::TpccClient client(conn.value().get(), config,
                             /*seed=*/1000 + static_cast<uint64_t>(u),
                             pipeline);
      tpc::TpccClientStats last{};
      obs::Histogram* latency =
          obs::Registry::Global().histogram("bench.tpcc.txn_ns");
      while (!stop.load(std::memory_order_relaxed)) {
        auto start = std::chrono::steady_clock::now();
        if (!client.RunOne().ok()) {
          failures.fetch_add(1);
          return;
        }
        if (measuring.load(std::memory_order_relaxed)) {
          latency->Record(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
          const auto& now = client.stats();
          for (size_t t = 0; t < 5; ++t) {
            committed_by_type[t].fetch_add(now.committed[t] -
                                           last.committed[t]);
            aborted.fetch_add(now.aborted[t] - last.aborted[t]);
          }
          last = now;
        } else {
          last = client.stats();
        }
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(warmup_seconds * 1000)));
  uint64_t wal_before = TotalWalBytes(env.server());
  double cpu_before = CpuSeconds();
  // Discard warm-up observability data so --json covers only the measured
  // interval (cached metric pointers stay valid across the reset).
  obs::Registry::Global().ResetMetrics();
  obs::ClearTraceEvents();
  uint64_t trips_before = InprocRoundTrips();
  common::Stopwatch interval;
  measuring.store(true);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(measure_seconds * 1000)));
  measuring.store(false);
  obs::HistogramSnapshot latency_snap =
      obs::Registry::Global().histogram("bench.tpcc.txn_ns")->Snapshot();
  uint64_t trips_used = InprocRoundTrips() - trips_before;
  double elapsed = interval.ElapsedSeconds();
  double cpu_used = CpuSeconds() - cpu_before;
  uint64_t wal_used = TotalWalBytes(env.server()) - wal_before;
  stop.store(true);
  for (std::thread& t : workers) t.join();

  if (failures.load() > 0) {
    return common::Status::Internal(std::to_string(failures.load()) +
                                    " clients failed");
  }

  uint64_t new_orders = committed_by_type[0].load();
  uint64_t total = 0;
  for (const auto& c : committed_by_type) total += c.load();

  ExperimentResult result;
  result.tpmc = static_cast<double>(new_orders) * 60.0 / elapsed;
  result.total_tpm = static_cast<double>(total) * 60.0 / elapsed;
  result.cpu_per_txn =
      total > 0 ? cpu_used / static_cast<double>(total) : 0;
  result.aborts = aborted.load();
  result.wal_bytes = wal_used;
  result.round_trips = trips_used;
  result.committed = total;
  result.p50_ms = latency_snap.Quantile(0.5) / 1e6;
  result.p99_ms = latency_snap.Quantile(0.99) / 1e6;
  return result;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ApplyObsFlags(flags);
  tpc::TpccConfig config;
  config.warehouses = static_cast<int>(flags.GetInt("warehouses", 5));
  std::vector<std::string> users_list =
      SplitList(flags.GetString("users", "8"));
  std::vector<std::string> shards_list =
      SplitList(flags.GetString("shards", "1"));
  const double seconds = flags.GetDouble("seconds", 10);
  const double warmup = flags.GetDouble("warmup", 2);
  const int64_t cache = flags.GetInt("cache", 262144);
  const int64_t result_cache = flags.GetInt("result_cache", 0);
  const int lock_timeout_ms =
      static_cast<int>(flags.GetInt("lock_timeout_ms", 50));
  const bool group_commit = flags.GetBool("group_commit", true);
  // --pipeline: statement-pipelined transaction bodies (one or two wire
  // bundles per transaction). Off by default so the classic per-statement
  // trip counts stay the comparison baseline; with PHOENIX_PIPELINE=0 in
  // the environment the clients probe, fail, and fall back — reproducing
  // the baseline numbers exactly even when the flag is set.
  const bool pipeline = flags.GetBool("pipeline", false);
  std::string sync = flags.GetString("sync", "flush");
  engine::WalSyncMode sync_mode = engine::WalSyncMode::kFlush;
  if (sync == "none") sync_mode = engine::WalSyncMode::kNone;
  if (sync == "sync") sync_mode = engine::WalSyncMode::kSync;

  struct Experiment {
    const char* label;
    const char* tag;  // slug for obs counters in the --json dump
    const char* driver;
    std::string extra;
  };
  std::vector<Experiment> experiments = {
      {"1 Native ODBC", "native", "native", ""},
      {"2 Phoenix/ODBC", "phoenix", "phoenix", ""},
      {"3 Phoenix/ODBC w/ client caching", "phoenix_cache", "phoenix",
       "PHOENIX_CACHE=" + std::to_string(cache)},
  };
  if (result_cache > 0) {
    experiments.push_back(
        {"4 Phoenix/ODBC w/ result cache", "phoenix_rcache", "phoenix",
         "PHOENIX_CACHE=" + std::to_string(cache) +
             ";PHOENIX_RESULT_CACHE=" + std::to_string(result_cache)});
  }

  // Republished metric names carry the user count / shard count only when
  // sweeping, so a plain single-point run keeps the original
  // "bench.tpcc.<tag>" names.
  const bool sweeping = users_list.size() > 1;
  const bool shard_sweeping = shards_list.size() > 1;
  struct Republish {
    std::string prefix;
    uint64_t round_trips;
    uint64_t committed;
    uint64_t p50_us;
    uint64_t p99_us;
  };
  std::vector<Republish> republish;

  for (const std::string& shards_str : shards_list) {
  const int shards =
      static_cast<int>(std::strtol(shards_str.c_str(), nullptr, 10));
  if (shards <= 0) continue;
  for (const std::string& users_str : users_list) {
    const int users =
        static_cast<int>(std::strtol(users_str.c_str(), nullptr, 10));
    if (users <= 0) continue;
    std::printf(
        "=== Table 4: TPC-C (%d warehouses, %d users, %d shard%s, %.0fs "
        "measured after %.0fs warmup, group commit %s, pipeline %s) ===\n",
        config.warehouses, users, shards, shards == 1 ? "" : "s", seconds,
        warmup, group_commit ? "on" : "off", pipeline ? "on" : "off");

    std::vector<ExperimentResult> results;
    for (const Experiment& experiment : experiments) {
      auto result = RunExperiment(config, experiment.driver, experiment.extra,
                                  users, warmup, seconds, sync_mode,
                                  lock_timeout_ms, group_commit, pipeline,
                                  shards);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", experiment.label,
                     result.status().ToString().c_str());
        return 1;
      }
      results.push_back(*result);
    }

    const std::vector<int> widths = {34, 10, 11, 11, 11, 9, 9, 9, 12};
    PrintTableHeader(
        {"Experiment", "TPM-C", "Total TPM", "CPU ratio", "Trips/txn",
         "p50 ms", "p99 ms", "Aborts", "WAL MB/min"},
        widths);
    double native_cpu = results[0].cpu_per_txn;
    for (size_t i = 0; i < experiments.size(); ++i) {
      char tpmc[32], total[32], trips[32], p50[32], p99[32], wal[32];
      std::snprintf(tpmc, sizeof(tpmc), "%.0f", results[i].tpmc);
      std::snprintf(total, sizeof(total), "%.0f", results[i].total_tpm);
      std::snprintf(trips, sizeof(trips), "%.2f",
                    results[i].committed > 0
                        ? static_cast<double>(results[i].round_trips) /
                              static_cast<double>(results[i].committed)
                        : 0.0);
      std::snprintf(p50, sizeof(p50), "%.2f", results[i].p50_ms);
      std::snprintf(p99, sizeof(p99), "%.2f", results[i].p99_ms);
      std::snprintf(wal, sizeof(wal), "%.1f",
                    static_cast<double>(results[i].wal_bytes) / 1e6 * 60.0 /
                        seconds);
      PrintTableRow(
          {experiments[i].label, tpmc, total,
           FormatRatio(native_cpu > 0 ? results[i].cpu_per_txn / native_cpu
                                      : 0),
           trips, p50, p99, std::to_string(results[i].aborts), wal},
          widths);
      republish.push_back(
          {std::string("bench.tpcc.") +
               (shard_sweeping ? "s" + shards_str + "." : "") +
               (sweeping ? "u" + users_str + "." : "") + experiments[i].tag,
           results[i].round_trips, results[i].committed,
           static_cast<uint64_t>(results[i].p50_ms * 1000),
           static_cast<uint64_t>(results[i].p99_ms * 1000)});
    }
    std::printf("\n");
  }
  }

  // Each RunExperiment resets the registry at the start of its measured
  // window, so republish the per-experiment delivery numbers now: the --json
  // dump then carries throughput-normalized round-trip costs that stay
  // comparable across runs. trips_per_ktxn = round trips per 1000 committed
  // transactions (integer counters; 3 decimal digits of precision).
  for (const Republish& r : republish) {
    obs::Registry::Global().counter(r.prefix + ".round_trips")
        ->Add(r.round_trips);
    obs::Registry::Global().counter(r.prefix + ".committed_txns")
        ->Add(r.committed);
    if (r.committed > 0) {
      obs::Registry::Global().counter(r.prefix + ".trips_per_ktxn")
          ->Add(r.round_trips * 1000 / r.committed);
    }
    obs::Registry::Global().counter(r.prefix + ".txn_p50_us")->Add(r.p50_us);
    obs::Registry::Global().counter(r.prefix + ".txn_p99_us")->Add(r.p99_us);
  }
  std::printf(
      "Paper reference (5 warehouses, 32 users, disk-bound): "
      "391 / 327 / 391 TPM-C, CPU ratio 1 / 1.27 / 1.\n");
  WriteJsonIfRequested(
      flags, "bench_tpcc",
      {{"warehouses", std::to_string(config.warehouses)},
       {"users", flags.GetString("users", "8")},
       {"seconds", FormatSeconds(seconds, 1)},
       {"sync", sync},
       {"group_commit", group_commit ? "1" : "0"},
       {"pipeline", pipeline ? "1" : "0"},
       {"shards", flags.GetString("shards", "1")},
       {"cache_bytes", std::to_string(cache)},
       {"result_cache_bytes", std::to_string(result_cache)}});
  return 0;
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) { return phoenix::bench::Main(argc, argv); }
